//! # qbf-bench
//!
//! The benchmark harness regenerating the tables and figures of
//! *“Quantifier structure in search based procedures for QBFs”* (§VII):
//! Table I and Figures 2–7, plus the ablations called out in `DESIGN.md`.
//!
//! Run `cargo run --release -p qbf-bench --bin repro -- all` for the full
//! small-scale regeneration, or individual subcommands (`table1`, `fig2` …
//! `fig7`, `ablate-score`, `ablate-learning`, `ablate-miniscope`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod experiments;
pub mod json;
pub mod runner;
pub mod stat;
pub mod suites;
pub mod telemetry;
