//! `repro` — regenerates the tables and figures of the paper.
//!
//! ```text
//! repro [--scale small|paper] [--out DIR] <command>
//!
//! commands:
//!   fig2              search tree of Q-DLL on the running example (Fig. 2)
//!   table1            all rows of Table I
//!   fig3              NCF medians: QUBE(TO)* vs QUBE(PO)
//!   fig4              FPV scatter
//!   fig5              DIA scatter
//!   fig6              counter/semaphore scaling curves
//!   fig7              PROB + FIXED scatter (after miniscoping)
//!   instances         dump the suite instances as .qtree/.qdimacs files
//!   ablate-score      PO heuristic: tree score vs level score
//!   ablate-learning   learning on/off on DIA (PO)
//!   ablate-miniscope  single-clause-scope elimination effect
//!   all               everything above
//! ```

use std::fs;
use std::path::PathBuf;

use qbf_bench::experiments::{
    self, dia_suite_result, fig2, fixed_result, fpv_result, ncf_result, prob_result,
    render_curves, render_medians, SuiteResult,
};
use qbf_bench::runner::{ascii_scatter, pairs_to_csv, TableRow};
use qbf_bench::suites::Scale;

struct Args {
    scale: Scale,
    out: PathBuf,
    command: String,
}

fn parse_args() -> Args {
    let mut scale = Scale::Small;
    let mut out = PathBuf::from("target/repro");
    let mut command = String::from("all");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "paper" => Scale::Paper,
                    "small" => Scale::Small,
                    other => {
                        eprintln!("unknown scale `{other}`, using small");
                        Scale::Small
                    }
                };
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| "target/repro".into()));
            }
            "--help" | "-h" => {
                println!("repro [--scale small|paper] [--out DIR] <command>");
                println!("commands: fig2 table1 fig3 fig4 fig5 fig6 fig7 instances");
                println!("          ablate-score ablate-learning ablate-miniscope all");
                println!("env: QBF_REPRO_SEEDS=N overrides instances per setting");
                std::process::exit(0);
            }
            cmd => command = cmd.to_string(),
        }
    }
    Args {
        scale,
        out,
        command,
    }
}

fn save(out: &PathBuf, name: &str, content: &str) {
    fs::create_dir_all(out).expect("create output dir");
    let path = out.join(name);
    fs::write(&path, content).expect("write output file");
    println!("[saved {}]", path.display());
}

fn print_table_rows(name: &str, rows: &[(String, TableRow)]) {
    println!("--- {name} ---");
    println!("{:40} {}", "strategy", TableRow::header());
    for (label, row) in rows {
        println!("{label:40} {}", row.render());
    }
    println!();
}

fn suite_outputs(out: &PathBuf, result: &SuiteResult, stem: &str) {
    print_table_rows(&result.name, &result.rows);
    save(out, &format!("{stem}.csv"), &pairs_to_csv(&result.pairs));
    if !result.medians.is_empty() {
        save(out, &format!("{stem}_medians.txt"), &render_medians(result));
    }
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let out = &args.out;
    let run_all = args.command == "all";
    let is = |c: &str| run_all || args.command == c;
    let only = |c: &str| !run_all && args.command == c;

    if is("fig2") {
        let text = fig2();
        println!("{text}");
        save(out, "fig2.txt", &text);
    }
    let mut ncf: Option<SuiteResult> = None;
    if is("table1") || is("fig3") {
        println!("running NCF suite (4 strategies × instances)…");
        ncf = Some(ncf_result(scale));
    }
    if is("table1") {
        let ncf_res = ncf.as_ref().expect("computed above");
        suite_outputs(out, ncf_res, "table1_ncf");
        println!("running FPV suite…");
        let fpv = fpv_result(scale);
        suite_outputs(out, &fpv, "table1_fpv");
        save(out, "fig4.csv", &pairs_to_csv(&fpv.pairs));
        println!("Fig. 4 scatter (FPV):\n{}", ascii_scatter(&fpv.pairs, 60, 20));
        println!("running DIA suite…");
        let (dia, curves) = dia_suite_result(scale);
        suite_outputs(out, &dia, "table1_dia");
        save(out, "fig5.csv", &pairs_to_csv(&dia.pairs));
        println!("Fig. 5 scatter (DIA):\n{}", ascii_scatter(&dia.pairs, 60, 20));
        save(out, "fig6.txt", &render_curves(&curves));
        println!("running PROB suite…");
        let prob = prob_result(scale);
        suite_outputs(out, &prob, "table1_prob");
        println!("running FIXED suite…");
        let fixed = fixed_result(scale);
        suite_outputs(out, &fixed, "table1_fixed");
        let mut fig7 = prob.pairs.clone();
        fig7.extend(fixed.pairs.iter().cloned());
        save(out, "fig7.csv", &pairs_to_csv(&fig7));
        println!(
            "Fig. 7 scatter (PROB+FIXED):\n{}",
            ascii_scatter(&fig7, 60, 20)
        );
    }
    if is("fig3") {
        let ncf_res = ncf.get_or_insert_with(|| ncf_result(scale));
        let text = render_medians(ncf_res);
        println!("Fig. 3 medians (PO vs best-of-4-strategies TO*):\n{text}");
        save(out, "fig3_medians.txt", &text);
        save(out, "fig3.csv", &pairs_to_csv(&ncf_res.pairs));
    }
    if only("fig4") {
        let fpv = fpv_result(scale);
        save(out, "fig4.csv", &pairs_to_csv(&fpv.pairs));
        println!("{}", ascii_scatter(&fpv.pairs, 60, 20));
        print_table_rows("FPV", &fpv.rows);
    }
    if only("fig5") {
        let (dia, _) = dia_suite_result(scale);
        save(out, "fig5.csv", &pairs_to_csv(&dia.pairs));
        println!("{}", ascii_scatter(&dia.pairs, 60, 20));
        print_table_rows("DIA", &dia.rows);
    }
    if only("fig6") {
        let (_, curves) = dia_suite_result(scale);
        let text = render_curves(&curves);
        println!("{text}");
        save(out, "fig6.txt", &text);
    }
    if only("fig7") {
        let prob = prob_result(scale);
        let fixed = fixed_result(scale);
        let mut pairs = prob.pairs.clone();
        pairs.extend(fixed.pairs.iter().cloned());
        save(out, "fig7.csv", &pairs_to_csv(&pairs));
        println!("{}", ascii_scatter(&pairs, 60, 20));
        print_table_rows("PROB", &prob.rows);
        print_table_rows("FIXED", &fixed.rows);
    }
    if args.command == "instances" {
        use qbf_core::io::{qdimacs, qtree};
        let dir = out.join("instances");
        fs::create_dir_all(&dir).expect("create instance dir");
        let mut count = 0usize;
        for (suite, instances) in [
            ("ncf", qbf_bench::suites::ncf_suite(scale)),
            ("fpv", qbf_bench::suites::fpv_suite(scale)),
            ("prob", qbf_bench::suites::prob_suite(scale)),
            ("fixed", qbf_bench::suites::fixed_suite(scale)),
        ] {
            for (i, inst) in instances.iter().enumerate() {
                let base = dir.join(format!("{suite}_{i:03}"));
                fs::write(base.with_extension("qtree"), qtree::write(&inst.po))
                    .expect("write qtree");
                if let Some((_, to)) = inst.to.first() {
                    fs::write(base.with_extension("qdimacs"), qdimacs::write(to))
                        .expect("write qdimacs");
                }
                count += 1;
            }
        }
        println!("wrote {count} instance pairs under {}", dir.display());
    }
    if is("ablate-score") {
        println!("ablation: PO heuristic tree score vs plain level score on NCF…");
        let rows = experiments::ablate_score(scale);
        print_table_rows("ablate-score", &rows);
    }
    if is("ablate-learning") {
        println!("ablation: learning on/off for PO on DIA probes…");
        let rows = experiments::ablate_learning(scale);
        print_table_rows("ablate-learning", &rows);
    }
    if is("ablate-miniscope") {
        let text = experiments::ablate_miniscope(scale);
        println!("{text}");
    }
    println!("done (scale {scale:?}).");
}
