//! `repro` — regenerates the tables and figures of the paper.
//!
//! ```text
//! repro [--scale small|paper] [--out DIR] [--bench-out FILE]
//!       [--jobs N] [--portfolio N] [--engine E] <command>
//!
//! commands:
//!   fig2              search tree of Q-DLL on the running example (Fig. 2)
//!   table1            all rows of Table I (+ BENCH_qbf.json + telemetry)
//!   fig3              NCF medians: QUBE(TO)* vs QUBE(PO)
//!   fig4              FPV scatter
//!   fig5              DIA scatter
//!   fig6              counter/semaphore scaling curves
//!   fig7              PROB + FIXED scatter (after miniscoping)
//!   instances         dump the suite instances as .qtree/.qdimacs files
//!   ablate-score      PO heuristic: tree score vs level score
//!   ablate-learning   learning on/off on DIA (PO)
//!   ablate-miniscope  single-clause-scope elimination effect
//!   bench-smoke       micro suite; asserts BENCH_qbf.json is
//!                     byte-deterministic and parseable (CI gate)
//!   bench-incremental DIA φ1..φk family through one incremental
//!                     session vs cold re-solves; asserts verdict
//!                     agreement, incremental ≤ cold, and a
//!                     byte-deterministic aggregate (CI gate)
//!   bench-portfolio   table1-style sample through the deterministic
//!                     portfolio twice (byte-identical
//!                     BENCH_qbf_portfolio.json) plus a free-running
//!                     wall-clock speedup gate at 4 workers (CI gate)
//!   bench-engines     search (PO + first TO prenexing) vs expansion
//!                     (tree + ordered dependency schemes) head to head,
//!                     twice; asserts verdict agreement and a
//!                     byte-deterministic BENCH_qbf_engines.json
//!                     (CI gate); `--engine` restricts the side
//!   all               everything above except the bench-* gates
//! ```
//!
//! Flag parsing is strict ([`qbf_bench::args`]): malformed or unknown
//! flags and commands exit 2 with a usage message instead of being
//! silently papered over.
//!
//! `table1` (and `all`) additionally write, per suite, a
//! `<stem>_telemetry.jsonl` stream (one record per measured run, full
//! stats) and `<stem>_learned.txt`, and aggregate every suite into the
//! machine-readable `BENCH_qbf.json` (`--bench-out`, default inside
//! `--out`). The aggregate is derived from deterministic assignment
//! counts, so it is byte-identical across runs.

use std::fs;
use std::path::PathBuf;

use qbf_bench::args::{self, Args};
use qbf_bench::experiments::{
    self, dia_suite_result_jobs, fig2, fixed_result_jobs, fpv_result_jobs, ncf_result_jobs,
    prob_result_jobs, render_curves, render_learned, render_medians, SuiteResult,
};
use qbf_bench::runner::{ascii_scatter, pairs_to_csv, TableRow};
use qbf_bench::suites::Scale;
use qbf_bench::{json, stat, telemetry};

fn parse_args() -> Args {
    match args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: error: {e}");
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    }
}

fn save(out: &PathBuf, name: &str, content: &str) {
    fs::create_dir_all(out).expect("create output dir");
    let path = out.join(name);
    fs::write(&path, content).expect("write output file");
    println!("[saved {}]", path.display());
}

fn print_table_rows(name: &str, rows: &[(String, TableRow)]) {
    println!("--- {name} ---");
    println!("{:40} {}", "strategy", TableRow::header());
    for (label, row) in rows {
        println!("{label:40} {}", row.render());
    }
    println!();
}

/// Per-(suite, solver) wall-time percentiles over the suite's telemetry
/// records. A report, not an artifact: wall clock never enters the
/// byte-diffed outputs (see DESIGN.md §2.8).
fn print_latency_percentiles(result: &SuiteResult) {
    let rows: Vec<stat::TelemetryRow> = result.telemetry.iter().map(Into::into).collect();
    print!("{}", stat::render_summaries(&stat::summarize(&rows)));
    println!();
}

fn suite_outputs(out: &PathBuf, result: &SuiteResult, stem: &str) {
    print_table_rows(&result.name, &result.rows);
    print_latency_percentiles(result);
    save(out, &format!("{stem}.csv"), &pairs_to_csv(&result.pairs));
    if !result.medians.is_empty() {
        save(out, &format!("{stem}_medians.txt"), &render_medians(result));
    }
    save(
        out,
        &format!("{stem}_telemetry.jsonl"),
        &telemetry::records_to_jsonl(&result.telemetry),
    );
    save(out, &format!("{stem}_learned.txt"), &render_learned(result));
}

fn main() {
    let args = parse_args();
    if args.command == "help" {
        println!("{}", args::USAGE);
        return;
    }
    let scale = args.scale;
    let out = &args.out;
    let run_all = args.command == "all";
    let is = |c: &str| run_all || args.command == c;
    let only = |c: &str| !run_all && args.command == c;

    if is("fig2") {
        let text = fig2();
        println!("{text}");
        save(out, "fig2.txt", &text);
    }
    let mut ncf: Option<SuiteResult> = None;
    if is("table1") || is("fig3") {
        println!("running NCF suite (4 strategies × instances)…");
        ncf = Some(ncf_result_jobs(scale, args.jobs));
    }
    if is("table1") {
        let ncf_res = ncf.as_ref().expect("computed above");
        suite_outputs(out, ncf_res, "table1_ncf");
        println!("running FPV suite…");
        let fpv = fpv_result_jobs(scale, args.jobs);
        suite_outputs(out, &fpv, "table1_fpv");
        save(out, "fig4.csv", &pairs_to_csv(&fpv.pairs));
        println!("Fig. 4 scatter (FPV):\n{}", ascii_scatter(&fpv.pairs, 60, 20));
        println!("running DIA suite…");
        let (dia, curves) = dia_suite_result_jobs(scale, args.jobs);
        suite_outputs(out, &dia, "table1_dia");
        save(out, "fig5.csv", &pairs_to_csv(&dia.pairs));
        println!("Fig. 5 scatter (DIA):\n{}", ascii_scatter(&dia.pairs, 60, 20));
        save(out, "fig6.txt", &render_curves(&curves));
        println!("running PROB suite…");
        let prob = prob_result_jobs(scale, args.jobs);
        suite_outputs(out, &prob, "table1_prob");
        println!("running FIXED suite…");
        let fixed = fixed_result_jobs(scale, args.jobs);
        suite_outputs(out, &fixed, "table1_fixed");
        let mut fig7 = prob.pairs.clone();
        fig7.extend(fixed.pairs.iter().cloned());
        save(out, "fig7.csv", &pairs_to_csv(&fig7));
        println!(
            "Fig. 7 scatter (PROB+FIXED):\n{}",
            ascii_scatter(&fig7, 60, 20)
        );
        // Aggregate every suite into the machine-readable, deterministic
        // BENCH_qbf.json (validated by the in-tree JSON reader).
        let all_results = [ncf_res.clone(), fpv, dia, prob, fixed];
        let doc = telemetry::bench_json(&all_results);
        json::parse(&doc).expect("BENCH_qbf.json must parse");
        match &args.bench_out {
            Some(path) => {
                fs::write(path, &doc).expect("write bench-out file");
                println!("[saved {}]", path.display());
            }
            None => save(out, "BENCH_qbf.json", &doc),
        }
    }
    if is("fig3") {
        let ncf_res = ncf.get_or_insert_with(|| ncf_result_jobs(scale, args.jobs));
        let text = render_medians(ncf_res);
        println!("Fig. 3 medians (PO vs best-of-4-strategies TO*):\n{text}");
        save(out, "fig3_medians.txt", &text);
        save(out, "fig3.csv", &pairs_to_csv(&ncf_res.pairs));
    }
    if only("fig4") {
        let fpv = fpv_result_jobs(scale, args.jobs);
        save(out, "fig4.csv", &pairs_to_csv(&fpv.pairs));
        println!("{}", ascii_scatter(&fpv.pairs, 60, 20));
        print_table_rows("FPV", &fpv.rows);
    }
    if only("fig5") {
        let (dia, _) = dia_suite_result_jobs(scale, args.jobs);
        save(out, "fig5.csv", &pairs_to_csv(&dia.pairs));
        println!("{}", ascii_scatter(&dia.pairs, 60, 20));
        print_table_rows("DIA", &dia.rows);
    }
    if only("fig6") {
        let (_, curves) = dia_suite_result_jobs(scale, args.jobs);
        let text = render_curves(&curves);
        println!("{text}");
        save(out, "fig6.txt", &text);
    }
    if only("fig7") {
        let prob = prob_result_jobs(scale, args.jobs);
        let fixed = fixed_result_jobs(scale, args.jobs);
        let mut pairs = prob.pairs.clone();
        pairs.extend(fixed.pairs.iter().cloned());
        save(out, "fig7.csv", &pairs_to_csv(&pairs));
        println!("{}", ascii_scatter(&pairs, 60, 20));
        print_table_rows("PROB", &prob.rows);
        print_table_rows("FIXED", &fixed.rows);
    }
    if args.command == "instances" {
        use qbf_core::io::{qdimacs, qtree};
        let dir = out.join("instances");
        fs::create_dir_all(&dir).expect("create instance dir");
        let mut count = 0usize;
        for (suite, instances) in [
            ("ncf", qbf_bench::suites::ncf_suite(scale)),
            ("fpv", qbf_bench::suites::fpv_suite(scale)),
            ("prob", qbf_bench::suites::prob_suite(scale)),
            ("fixed", qbf_bench::suites::fixed_suite(scale)),
        ] {
            for (i, inst) in instances.iter().enumerate() {
                let base = dir.join(format!("{suite}_{i:03}"));
                fs::write(base.with_extension("qtree"), qtree::write(&inst.po))
                    .expect("write qtree");
                if let Some((_, to)) = inst.to.first() {
                    fs::write(base.with_extension("qdimacs"), qdimacs::write(to))
                        .expect("write qdimacs");
                }
                count += 1;
            }
        }
        println!("wrote {count} instance pairs under {}", dir.display());
    }
    if is("ablate-score") {
        println!("ablation: PO heuristic tree score vs plain level score on NCF…");
        let rows = experiments::ablate_score(scale);
        print_table_rows("ablate-score", &rows);
    }
    if is("ablate-learning") {
        println!("ablation: learning on/off for PO on DIA probes…");
        let rows = experiments::ablate_learning(scale);
        print_table_rows("ablate-learning", &rows);
    }
    if is("ablate-miniscope") {
        let text = experiments::ablate_miniscope(scale);
        println!("{text}");
    }
    if args.command == "bench-smoke" {
        bench_smoke(&args);
    }
    if args.command == "bench-incremental" {
        bench_incremental(&args);
    }
    if args.command == "bench-portfolio" {
        bench_portfolio(&args);
    }
    if args.command == "bench-engines" {
        bench_engines(&args);
    }
    println!("done (scale {scale:?}).");
}

/// `bench-smoke`: runs a micro NCF suite twice, asserts the aggregated
/// `BENCH_qbf.json` is byte-identical across the two runs, validates it
/// with the in-tree JSON reader, and writes the artifacts. This is the CI
/// gate for the telemetry pipeline's determinism contract.
fn bench_smoke(args: &Args) {
    use qbf_bench::experiments::run_suite_jobs;
    use qbf_bench::json::Json;
    use qbf_bench::suites::SuiteInstance;
    use qbf_prenex::Strategy;
    use std::time::Duration;

    let make_suite = || -> Vec<SuiteInstance> {
        let params = qbf_gen::NcfParams {
            dep: 6,
            var: 4,
            cls_ratio: 3,
            lpc: 5,
        };
        (0..4u64)
            .map(|seed| {
                let po = qbf_gen::ncf(&params, seed);
                let to = Strategy::ALL
                    .iter()
                    .map(|&s| (s, qbf_prenex::prenex(&po, s)))
                    .collect();
                SuiteInstance {
                    label: format!("smoke#{seed}"),
                    group: "smoke".to_string(),
                    po,
                    to,
                }
            })
            .collect()
    };
    let run_once = || {
        let result = run_suite_jobs(
            "SMOKE",
            &make_suite(),
            100_000,
            Duration::from_millis(5),
            args.jobs,
        );
        let doc = telemetry::bench_json(std::slice::from_ref(&result));
        (doc, result)
    };
    println!("bench-smoke: running the micro suite twice (jobs {})…", args.jobs);
    let (doc1, result1) = run_once();
    let (doc2, _) = run_once();
    assert_eq!(
        doc1, doc2,
        "BENCH_qbf.json must be byte-identical across runs"
    );
    let parsed = json::parse(&doc1).expect("BENCH_qbf.json must parse");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some(telemetry::BENCH_SCHEMA),
        "schema tag"
    );
    let suites = parsed
        .get("suites")
        .and_then(Json::as_array)
        .expect("suites array");
    assert_eq!(suites.len(), 1);
    let suite = &suites[0];
    assert_eq!(suite.get("name").and_then(Json::as_str), Some("SMOKE"));
    let instances = suite
        .get("instances")
        .and_then(Json::as_u64)
        .expect("instances count");
    let row = suite.get("row_by_assignments").expect("deterministic row");
    let total: u64 = ["to_slower", "to_faster", "ties"]
        .iter()
        .map(|k| row.get(k).and_then(Json::as_u64).expect("row column"))
        .sum();
    assert_eq!(total, instances, "row columns must partition the suite");
    let po_runs = suite
        .get("po")
        .and_then(|p| p.get("runs"))
        .and_then(Json::as_u64);
    assert_eq!(po_runs, Some(instances), "one PO run per instance");
    save(&args.out, "BENCH_qbf_smoke.json", &doc1);
    // Wall-clock telemetry for the smoke runs (the JSON aggregate keeps
    // only deterministic counts): one record per measured run, used to
    // track solver throughput across commits.
    save(
        &args.out,
        "BENCH_qbf_smoke_telemetry.jsonl",
        &telemetry::records_to_jsonl(&result1.telemetry),
    );
    println!(
        "bench-smoke: ok ({} instances, {} bytes, byte-deterministic)",
        instances,
        doc1.len()
    );
}

/// `bench-incremental`: solves DIA φ1..φk families through one
/// long-lived incremental session (union universe, push/add/solve×2/pop
/// per probe) and cold (a fresh solver per query on the equivalent
/// formula), twice. Asserts the verdicts agree, the incremental totals
/// never exceed the cold totals, and the aggregate JSON is
/// byte-identical across the two passes. The artifact is saved as
/// `BENCH_qbf_incremental.json` — `BENCH_qbf.json` and the one-shot
/// suites are untouched (incrementality is strictly opt-in).
fn bench_incremental(args: &Args) {
    use qbf_core::solver::{Solver, SolverConfig};
    use qbf_models::{counter, diameter_sequence, run_diameter_incremental, DiameterForm};

    let max_n: u32 = match args.scale {
        Scale::Paper => 6,
        Scale::Small => 4,
    };
    let settings = [
        ("counter2", 2usize, DiameterForm::Tree, SolverConfig::partial_order()),
        ("counter2", 2, DiameterForm::Prenex, SolverConfig::total_order()),
        ("counter3", 3, DiameterForm::Tree, SolverConfig::partial_order()),
    ];
    let run_once = || {
        let mut doc = format!("{{\"schema\":\"qbf-bench-incremental/1\",\"max_n\":{max_n},\"suites\":[");
        for (i, (name, bits, form, config)) in settings.iter().enumerate() {
            let seq = diameter_sequence(&counter(*bits), *form, max_n);
            let run = run_diameter_incremental(&seq, config, 2);
            let mut cold_assignments = 0u64;
            let mut cold_backtracks = 0u64;
            let mut verdicts = Vec::new();
            for r in &run.results {
                let mut value = None;
                for _ in 0..2 {
                    let out = Solver::new(&r.equivalent, config.clone()).solve();
                    cold_assignments += out.stats.assignments();
                    cold_backtracks += out.stats.backjumps + out.stats.chrono_backtracks;
                    value = out.value();
                }
                let value = value.expect("no budget configured");
                for o in &r.outcomes {
                    assert_eq!(
                        o.value(),
                        Some(value),
                        "bench-incremental: {name} {form:?} n={} verdict diverges",
                        r.n
                    );
                }
                verdicts.push(if value { "1" } else { "0" });
            }
            let inc_assignments = run.total_assignments();
            let inc_backtracks = run.total_backtracks();
            assert!(
                inc_assignments <= cold_assignments && inc_backtracks <= cold_backtracks,
                "bench-incremental: {name} {form:?}: incremental ({inc_assignments} asg, \
                 {inc_backtracks} bt) worse than cold ({cold_assignments} asg, {cold_backtracks} bt)"
            );
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!(
                "{{\"model\":\"{name}\",\"form\":\"{form:?}\",\"probes\":{},\
                 \"verdicts\":[{}],\
                 \"incremental\":{{\"assignments\":{inc_assignments},\"backtracks\":{inc_backtracks}}},\
                 \"cold\":{{\"assignments\":{cold_assignments},\"backtracks\":{cold_backtracks}}}}}",
                run.results.len(),
                verdicts.join(",")
            ));
        }
        doc.push_str("]}");
        doc
    };
    println!("bench-incremental: DIA sequences, incremental vs cold, twice…");
    let doc1 = run_once();
    let doc2 = run_once();
    assert_eq!(
        doc1, doc2,
        "BENCH_qbf_incremental.json must be byte-identical across runs"
    );
    json::parse(&doc1).expect("BENCH_qbf_incremental.json must parse");
    save(&args.out, "BENCH_qbf_incremental.json", &doc1);
    println!(
        "bench-incremental: ok ({} settings, {} bytes, byte-deterministic, incremental ≤ cold)",
        settings.len(),
        doc1.len()
    );
}

/// `bench-engines`: the search engine (QDPLL on PO, plus the first TO
/// prenexing) and the expansion engine (dual abstraction refinement
/// under the tree and ordered dependency schemes) head to head over a
/// table1-style sample, twice.
///
/// Verdicts must agree wherever two engines both conclude, and the
/// aggregate `BENCH_qbf_engines.json` must be byte-identical across the
/// two in-process passes — both sides count work in deterministic units
/// (assignments for search, SAT decisions+propagations for expansion),
/// never wall time. `--engine search|expand` restricts the measured
/// side; the default `both` is the only mode with a cross-engine
/// agreement oracle.
fn bench_engines(args: &Args) {
    use qbf_bench::args::EngineChoice;
    use qbf_bench::json::Json;
    use qbf_bench::suites;
    use qbf_core::solver::Solver;
    use qbf_core::Qbf;
    use qbf_expand::{DepScheme, ExpandConfig};
    use qbf_prenex::Strategy;

    let scale = args.scale;
    let budget = scale.budget();
    let choice = args.engine;
    let run_search = choice != EngineChoice::Expand;
    let run_expand = choice != EngineChoice::Search;

    let mut sample: Vec<(&'static str, String, Qbf)> = Vec::new();
    for inst in suites::ncf_suite(scale).into_iter().take(5) {
        sample.push(("NCF", inst.label, inst.po));
    }
    for inst in suites::fpv_suite(scale).into_iter().take(3) {
        sample.push(("FPV", inst.label, inst.po));
    }
    for inst in suites::prob_suite(scale).into_iter().take(3) {
        sample.push(("PROB", inst.label, inst.po));
    }
    for inst in suites::fixed_suite(scale).into_iter().take(2) {
        sample.push(("FIXED", inst.label, inst.po));
    }
    println!(
        "bench-engines: {:?} on {} instances, twice…",
        choice,
        sample.len()
    );

    let verdict_json = |v: Option<bool>| match v {
        Some(true) => "true".to_string(),
        Some(false) => "false".to_string(),
        None => "null".to_string(),
    };
    let pass = || -> String {
        let mut runs = String::new();
        let (mut agreements, mut concluded) = (0u64, 0u64);
        for (i, (suite, label, po)) in sample.iter().enumerate() {
            let mut verdicts: Vec<Option<bool>> = Vec::new();
            let mut fields = String::new();
            if run_search {
                let po_out = Solver::new(po, suites::po_config(budget)).solve();
                let to_qbf = qbf_prenex::prenex(po, Strategy::ALL[0]);
                let to_out = Solver::new(&to_qbf, suites::to_config(budget)).solve();
                fields.push_str(&format!(
                    "\"search_po\":{{\"value\":{},\"assignments\":{}}},\
                     \"search_to\":{{\"value\":{},\"assignments\":{}}}",
                    verdict_json(po_out.value()),
                    po_out.stats.assignments(),
                    verdict_json(to_out.value()),
                    to_out.stats.assignments()
                ));
                verdicts.push(po_out.value());
                verdicts.push(to_out.value());
            }
            if run_expand {
                for (key, scheme) in
                    [("expand_tree", DepScheme::Tree), ("expand_ordered", DepScheme::Ordered)]
                {
                    let mut config = match scheme {
                        DepScheme::Tree => ExpandConfig::tree(),
                        DepScheme::Ordered => ExpandConfig::ordered(),
                    };
                    config.step_limit = Some(budget);
                    let out = qbf_expand::solve(po, config);
                    let cost = out.stats.sat_decisions + out.stats.sat_propagations;
                    if !fields.is_empty() {
                        fields.push(',');
                    }
                    fields.push_str(&format!(
                        "\"{key}\":{{\"value\":{},\"cost\":{cost},\"rounds\":{}}}",
                        verdict_json(out.value),
                        out.stats.rounds
                    ));
                    verdicts.push(out.value);
                }
            }
            // Cross-engine oracle: every pair of concluded verdicts on
            // the same instance must agree.
            let settled: Vec<bool> = verdicts.iter().filter_map(|&v| v).collect();
            assert!(
                settled.windows(2).all(|w| w[0] == w[1]),
                "bench-engines: engines disagree on {suite} {label}: {verdicts:?}"
            );
            if !settled.is_empty() {
                concluded += 1;
                if settled.len() == verdicts.len() {
                    agreements += 1;
                }
            }
            if i > 0 {
                runs.push(',');
            }
            runs.push_str(&format!(
                "\n    {{\"suite\":\"{suite}\",\"label\":\"{}\",{fields}}}",
                json::escape(label)
            ));
        }
        format!(
            "{{\n  \"schema\": \"qbf-bench-engines/1\",\n  \"engine\": \"{}\",\n  \"budget\": {budget},\n  \"instances\": {},\n  \"concluded\": {concluded},\n  \"fully_concluded\": {agreements},\n  \"runs\": [{runs}\n  ]\n}}\n",
            match choice {
                EngineChoice::Search => "search",
                EngineChoice::Expand => "expand",
                EngineChoice::Both => "both",
            },
            sample.len()
        )
    };
    let doc1 = pass();
    let doc2 = pass();
    assert_eq!(
        doc1, doc2,
        "BENCH_qbf_engines.json must be byte-identical across runs"
    );
    let parsed = json::parse(&doc1).expect("BENCH_qbf_engines.json must parse");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("qbf-bench-engines/1"),
        "schema tag"
    );
    assert_eq!(
        parsed.get("runs").and_then(Json::as_array).map(<[Json]>::len),
        Some(sample.len()),
        "one run record per instance"
    );
    save(&args.out, "BENCH_qbf_engines.json", &doc1);
    println!(
        "bench-engines: ok ({} instances, {} bytes, byte-deterministic)",
        sample.len(),
        doc1.len()
    );
}

/// `bench-portfolio`: a table1-style sample (NCF + FPV + PROB + FIXED)
/// through the in-instance portfolio, twice.
///
/// Deterministic half (always runs): every instance goes through the
/// fixed 8-variant deterministic roster; the aggregate
/// `BENCH_qbf_portfolio.json` (verdict counts, wins per roster slot,
/// winner/PO-baseline assignment counts, sharing totals — no wall
/// times) must be byte-identical across the two passes, for any
/// `--portfolio` thread count.
///
/// Free-running half (the wall-clock gate): with ≥ 4 hardware threads,
/// races the 4-variant free roster per instance and compares against
/// solving the same four variants sequentially — the cost of a
/// portfolio when the winning variant is unknown a priori. The summed
/// speedup must reach `QBF_PORTFOLIO_MIN_SPEEDUP` (default 1.5; 0
/// disables). On smaller machines the gate is skipped with a warning,
/// since a race without parallelism measures scheduler noise.
fn bench_portfolio(args: &Args) {
    use qbf_bench::suites;
    use qbf_core::portfolio::{self, PortfolioOptions};
    use qbf_core::solver::Solver;
    use qbf_core::Qbf;
    use qbf_prenex::portfolio::{roster, DETERMINISTIC_ROSTER};
    use std::time::{Duration, Instant};

    let scale = args.scale;
    let base = suites::po_config(scale.budget());
    let mut sample: Vec<(&'static str, String, Qbf)> = Vec::new();
    for inst in suites::ncf_suite(scale).into_iter().take(6) {
        sample.push(("NCF", inst.label, inst.po));
    }
    for inst in suites::fpv_suite(scale).into_iter().take(4) {
        sample.push(("FPV", inst.label, inst.po));
    }
    for inst in suites::prob_suite(scale).into_iter().take(4) {
        sample.push(("PROB", inst.label, inst.po));
    }
    for inst in suites::fixed_suite(scale).into_iter().take(2) {
        sample.push(("FIXED", inst.label, inst.po));
    }
    println!(
        "bench-portfolio: deterministic roster on {} instances, twice (threads {})…",
        sample.len(),
        args.portfolio
    );

    // One deterministic pass over the sample, producing the aggregate
    // document.
    let det_pass = || -> String {
        let labels: Vec<String> = roster(&sample[0].2, args.portfolio, true, &base)
            .iter()
            .map(|v| v.label.clone())
            .collect();
        let mut wins = vec![0u64; labels.len()];
        let (mut sat, mut unsat, mut unknown) = (0u64, 0u64, 0u64);
        let (mut exported, mut imported, mut discarded) = (0u64, 0u64, 0u64);
        let mut runs = String::new();
        for (i, (suite, label, po)) in sample.iter().enumerate() {
            let vars = roster(po, args.portfolio, true, &base);
            let opts = PortfolioOptions {
                threads: args.portfolio,
                deterministic: true,
                ..PortfolioOptions::default()
            };
            let out = portfolio::solve(&vars, &opts);
            match out.value {
                Some(true) => sat += 1,
                Some(false) => unsat += 1,
                None => unknown += 1,
            }
            if let Some(w) = out.winner {
                wins[w] += 1;
            }
            for w in &out.workers {
                exported += w.exported;
                imported += w.imported;
                discarded += w.discarded;
            }
            // The PO-alone baseline every portfolio row is compared to.
            let po_out = Solver::new(po, base.clone()).solve();
            if i > 0 {
                runs.push(',');
            }
            runs.push_str(&format!(
                "\n    {{\"suite\":\"{suite}\",\"label\":\"{}\",\"value\":{},\"winner\":{},\"winner_assignments\":{},\"po_assignments\":{}}}",
                json::escape(label),
                match out.value {
                    Some(true) => "true".to_string(),
                    Some(false) => "false".to_string(),
                    None => "null".to_string(),
                },
                match out.winner {
                    Some(w) => format!("\"{}\"", json::escape(&out.workers[w].label)),
                    None => "null".to_string(),
                },
                match out.winner {
                    Some(w) => out.workers[w].stats.assignments().to_string(),
                    None => "null".to_string(),
                },
                po_out.stats.assignments()
            ));
        }
        let wins_json = labels
            .iter()
            .zip(&wins)
            .map(|(l, w)| format!("{{\"label\":\"{}\",\"wins\":{w}}}", json::escape(l)))
            .collect::<Vec<_>>()
            .join(",");
        let doc = format!(
            "{{\n  \"schema\": \"qbf-bench-portfolio/1\",\n  \"roster\": {DETERMINISTIC_ROSTER},\n  \"share_len\": 4,\n  \"epoch\": 2048,\n  \"instances\": {},\n  \"verdicts\": {{\"sat\":{sat},\"unsat\":{unsat},\"unknown\":{unknown}}},\n  \"sharing\": {{\"exported\":{exported},\"imported\":{imported},\"discarded\":{discarded}}},\n  \"wins_by_worker\": [{wins_json}],\n  \"runs\": [{runs}\n  ]\n}}\n",
            sample.len()
        );
        doc
    };
    let doc1 = det_pass();
    let doc2 = det_pass();
    assert_eq!(
        doc1, doc2,
        "BENCH_qbf_portfolio.json must be byte-identical across runs"
    );
    let parsed = json::parse(&doc1).expect("BENCH_qbf_portfolio.json must parse");
    assert_eq!(
        parsed.get("schema").and_then(qbf_bench::json::Json::as_str),
        Some("qbf-bench-portfolio/1"),
        "schema tag"
    );
    save(&args.out, "BENCH_qbf_portfolio.json", &doc1);
    println!(
        "bench-portfolio: deterministic half ok ({} instances, {} bytes, byte-deterministic)",
        sample.len(),
        doc1.len()
    );

    // Free-running wall-clock gate.
    let min_speedup: f64 = std::env::var("QBF_PORTFOLIO_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if min_speedup <= 0.0 {
        println!("bench-portfolio: wall-clock gate disabled (QBF_PORTFOLIO_MIN_SPEEDUP=0)");
        return;
    }
    if cores < 4 {
        println!(
            "bench-portfolio: WARNING: {cores} hardware thread(s) < 4, skipping the \
             free-running wall-clock gate (a race without parallelism measures scheduler noise)"
        );
        return;
    }
    // Race on the *hardest* table1 instances: a probe run with a small
    // node budget keeps only NCF instances whose PO search exceeds it,
    // so per-variant times dwarf thread-spawn overhead and the measured
    // ratio reflects parallelism, not scheduler noise.
    let probe_limit = scale.budget() / 10;
    let mut candidates: Vec<(u64, String, Qbf)> = suites::ncf_suite(scale)
        .into_iter()
        .map(|inst| {
            let probe = base.clone().with_node_limit(probe_limit);
            let out = Solver::new(&inst.po, probe).solve();
            (out.stats.assignments(), inst.label, inst.po)
        })
        .collect();
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    candidates.truncate(4);
    println!(
        "bench-portfolio: free-running race vs sequential portfolio at 4 workers \
         ({} hardest NCF instances)…",
        candidates.len()
    );
    let mut sequential = Duration::ZERO;
    let mut po_alone = Duration::ZERO;
    let mut race = Duration::ZERO;
    for (_, label, po) in &candidates {
        let vars = roster(po, 4, false, &base);
        // Sequential baseline: each variant to completion on its own;
        // the variant verdicts double as a cross-check oracle.
        let mut oracle: Option<bool> = None;
        for v in &vars {
            let t = Instant::now();
            let out = Solver::new(&v.qbf, v.config.clone()).solve();
            let dt = t.elapsed();
            sequential += dt;
            if v.label == "po" {
                po_alone += dt;
            }
            if let Some(value) = out.value() {
                if let Some(prev) = oracle {
                    assert_eq!(prev, value, "bench-portfolio: variant verdicts diverge on {label}");
                }
                oracle = Some(value);
            }
        }
        let opts = PortfolioOptions {
            threads: 4,
            ..PortfolioOptions::default()
        };
        let t = Instant::now();
        let out = portfolio::solve(&vars, &opts);
        race += t.elapsed();
        if let (Some(free), Some(seq)) = (out.value, oracle) {
            assert_eq!(free, seq, "bench-portfolio: free verdict diverges on {label}");
        }
    }
    let speedup = sequential.as_secs_f64() / race.as_secs_f64().max(1e-9);
    let vs_po = po_alone.as_secs_f64() / race.as_secs_f64().max(1e-9);
    println!(
        "bench-portfolio: race {:.0} ms vs sequential {:.0} ms → speedup {speedup:.2}x \
         (vs PO alone {vs_po:.2}x, informational)",
        race.as_secs_f64() * 1e3,
        sequential.as_secs_f64() * 1e3
    );
    assert!(
        speedup >= min_speedup,
        "bench-portfolio: free-running speedup {speedup:.2}x below the {min_speedup:.2}x gate"
    );
    println!("bench-portfolio: ok (wall-clock gate {min_speedup:.2}x passed)");
}
