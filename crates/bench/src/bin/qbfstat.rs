//! `qbfstat` — offline analysis of the repo's telemetry artifacts.
//!
//! ```text
//! qbfstat summary FILE.jsonl [--top K]   per-(suite, solver) latency
//!                                        percentiles + the K hottest
//!                                        instances (default 10) from a
//!                                        repro telemetry stream
//! qbfstat snapshots FILE.jsonl           a qbfserve --metrics-jsonl
//!                                        stream: progress/snapshot line
//!                                        counts and the final snapshot's
//!                                        headline numbers
//! qbfstat bench FILE.json                suite table of a BENCH_qbf*.json
//!                                        aggregate
//! qbfstat diff OLD.json NEW.json         structural regression diff of
//!                                        two BENCH_qbf*.json documents;
//!                                        exits 1 when they disagree
//! ```
//!
//! Every reader is strict: malformed artifacts produce `line N: …`
//! errors (exit 2), never panics. `diff` is the CI-facing half — run it
//! against the committed `BENCH_qbf.json` to catch silent regressions of
//! the deterministic counters.

use std::process::ExitCode;

use qbf_bench::json::{self, Json};
use qbf_bench::stat::{self, SnapshotLine};

fn usage() -> ! {
    eprintln!(
        "usage: qbfstat summary FILE.jsonl [--top K]\n\
        \x20      qbfstat snapshots FILE.jsonl\n\
        \x20      qbfstat bench FILE.json\n\
        \x20      qbfstat diff OLD.json NEW.json"
    );
    std::process::exit(2);
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_summary(path: &str, top: usize) -> Result<(), String> {
    let rows = stat::parse_telemetry(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", stat::render_summaries(&stat::summarize(&rows)));
    if top > 0 {
        println!("\nhottest {} of {} runs:", top.min(rows.len()), rows.len());
        print!("{}", stat::render_hottest(&stat::hottest(&rows, top)));
    }
    Ok(())
}

fn cmd_snapshots(path: &str) -> Result<(), String> {
    let lines = stat::parse_snapshots(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
    let snapshots: Vec<&Json> = lines
        .iter()
        .filter_map(|l| match l {
            SnapshotLine::Snapshot(s) => Some(s),
            SnapshotLine::Progress { .. } => None,
        })
        .collect();
    let progress = lines.len() - snapshots.len();
    println!("{}: {} snapshot(s), {} progress line(s)", path, snapshots.len(), progress);
    let Some(last) = snapshots.last() else {
        return Ok(());
    };
    if let Some(q) = last.get("queries").and_then(Json::as_u64) {
        println!("final snapshot: {q} queries");
    }
    // The registry sub-object carries counters/gauges as numbers and
    // histograms as {count,sum,min,max,p50,p90,p99} — print both flat.
    if let Some(Json::Obj(fields)) = last.get("registry") {
        for (name, value) in fields {
            match value {
                Json::Num(n) => println!("  {name} = {n}"),
                Json::Obj(_) => {
                    let pick = |k: &str| {
                        value.get(k).and_then(Json::as_u64).unwrap_or(0)
                    };
                    println!(
                        "  {name}: count {} sum {} p50 {} p90 {} p99 {}",
                        pick("count"),
                        pick("sum"),
                        pick("p50"),
                        pick("p90"),
                        pick("p99")
                    );
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn cmd_bench(path: &str) -> Result<(), String> {
    let doc = json::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing `schema` tag"))?;
    let suites = doc
        .get("suites")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: missing `suites` array"))?;
    println!("{path}: schema {schema}, {} suite(s)", suites.len());
    println!(
        "{:8} {:>9} {:>9} {:>9} {:>6} {:>12} {:>12}",
        "suite", "instances", "to_slower", "to_faster", "ties", "po assign", "to assign"
    );
    for s in suites {
        let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
        let num = |path: &[&str]| -> u64 {
            let mut v = s;
            for k in path {
                match v.get(k) {
                    Some(next) => v = next,
                    None => return 0,
                }
            }
            v.as_u64().unwrap_or(0)
        };
        println!(
            "{:8} {:>9} {:>9} {:>9} {:>6} {:>12} {:>12}",
            name,
            num(&["instances"]),
            num(&["row_by_assignments", "to_slower"]),
            num(&["row_by_assignments", "to_faster"]),
            num(&["row_by_assignments", "ties"]),
            num(&["po", "assignments"]),
            num(&["to", "assignments"])
        );
    }
    Ok(())
}

fn cmd_diff(old_path: &str, new_path: &str) -> Result<bool, String> {
    let diffs = stat::diff_bench(&read(old_path)?, &read(new_path)?)?;
    if diffs.is_empty() {
        println!("no drift: {old_path} and {new_path} agree");
        return Ok(true);
    }
    println!("{} difference(s) between {old_path} and {new_path}:", diffs.len());
    for d in &diffs {
        println!("  {d}");
    }
    Ok(false)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let result = match strs.as_slice() {
        ["summary", path] => cmd_summary(path, 10).map(|()| true),
        ["summary", path, "--top", k] => match k.parse() {
            Ok(k) => cmd_summary(path, k).map(|()| true),
            Err(_) => usage(),
        },
        ["snapshots", path] => cmd_snapshots(path).map(|()| true),
        ["bench", path] => cmd_bench(path).map(|()| true),
        ["diff", old, new] => cmd_diff(old, new),
        _ => usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
