//! Machine-readable bench telemetry.
//!
//! Two output shapes:
//!
//! * **Per-run JSONL** ([`TelemetryRecord`], [`records_to_jsonl`]): one JSON
//!   object per measured solver run, carrying provenance (suite, instance
//!   label, generator group, solver configuration), the outcome, the wall
//!   time and the **full** [`Stats`] block. Wall times are inherently
//!   noisy, so this stream is for post-hoc analysis, not for diffing.
//! * **Aggregated `BENCH_qbf.json`** ([`bench_json`]): the Table I rows
//!   re-derived from the *deterministic* assignment counts
//!   ([`TableRow::add_by_assignments`]) plus per-suite learning totals.
//!   Every field is an integer or a fixed string, the field order is
//!   pinned, and no timestamps appear — repeated runs on the same seeds
//!   produce **byte-identical** documents, which is what lets CI diff the
//!   file and `repro bench-smoke` assert reproducibility.
//!
//! Both writers hand-roll their JSON (the build is hermetic); the sibling
//! [`crate::json`] reader validates the output.

use qbf_core::solver::Stats;

use crate::experiments::SuiteResult;
use crate::json::escape;
use crate::runner::{Measurement, TableRow};

/// Schema tag stamped into `BENCH_qbf.json` so readers can detect drift.
pub const BENCH_SCHEMA: &str = "qbf-bench/1";

/// One measured solver run with its provenance — the unit of the JSONL
/// telemetry stream.
#[derive(Debug, Clone)]
pub struct TelemetryRecord {
    /// Suite name (`NCF`, `FPV`, `DIA`, `PROB`, `FIXED`, …).
    pub suite: String,
    /// Instance label (encodes the generator parameters and seed).
    pub label: String,
    /// Parameter-setting group the instance belongs to.
    pub group: String,
    /// Solver configuration: `po` or `to:<strategy>`.
    pub solver: String,
    /// Decided value, `None` on budget exhaustion.
    pub value: Option<bool>,
    /// Wall-clock milliseconds (non-deterministic; excluded from the
    /// aggregated document).
    pub time_ms: f64,
    /// Full search statistics of the run.
    pub stats: Stats,
}

impl TelemetryRecord {
    /// Builds a record from a [`Measurement`] and its provenance.
    pub fn new(suite: &str, label: &str, group: &str, solver: &str, m: &Measurement) -> Self {
        TelemetryRecord {
            suite: suite.to_string(),
            label: label.to_string(),
            group: group.to_string(),
            solver: solver.to_string(),
            value: m.value,
            time_ms: m.time.as_secs_f64() * 1e3,
            stats: m.stats,
        }
    }

    /// Renders the record as one JSON object. The `stats` sub-object is
    /// driven by [`Stats::fields`], so new counters appear here without
    /// touching this module.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"suite\":\"{}\",\"label\":\"{}\",\"group\":\"{}\",\"solver\":\"{}\",\"value\":{},\"time_ms\":{:.3},\"stats\":{{",
            escape(&self.suite),
            escape(&self.label),
            escape(&self.group),
            escape(&self.solver),
            match self.value {
                Some(true) => "true",
                Some(false) => "false",
                None => "null",
            },
            self.time_ms
        ));
        for (i, (name, value)) in self.stats.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("}}");
        out
    }
}

/// Renders records as JSONL: one object per line, trailing newline.
pub fn records_to_jsonl(records: &[TelemetryRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Serializes a [`TableRow`] as a JSON object with the paper's column
/// names spelled out.
fn row_json(row: &TableRow) -> String {
    format!(
        "{{\"to_slower\":{},\"to_faster\":{},\"ties\":{},\"to_only_timeout\":{},\"po_only_timeout\":{},\"both_timeout\":{},\"to_slower_10x\":{},\"to_faster_10x\":{}}}",
        row.to_slower,
        row.to_faster,
        row.ties,
        row.to_only_timeout,
        row.po_only_timeout,
        row.both_timeout,
        row.to_slower_10x,
        row.to_faster_10x
    )
}

/// Aggregated per-solver totals over a suite's telemetry records.
#[derive(Debug, Clone, Copy, Default)]
struct SolverTotals {
    runs: u64,
    timeouts: u64,
    assignments: u64,
    conflicts: u64,
    solutions: u64,
    learned_clauses: u64,
    learned_cubes: u64,
    backjumps: u64,
}

impl SolverTotals {
    fn add(&mut self, r: &TelemetryRecord) {
        self.runs += 1;
        self.timeouts += u64::from(r.value.is_none());
        self.assignments += r.stats.assignments();
        self.conflicts += r.stats.conflicts;
        self.solutions += r.stats.solutions;
        self.learned_clauses += r.stats.learned_clauses;
        self.learned_cubes += r.stats.learned_cubes;
        self.backjumps += r.stats.backjumps;
    }

    fn to_json(self) -> String {
        format!(
            "{{\"runs\":{},\"timeouts\":{},\"assignments\":{},\"conflicts\":{},\"solutions\":{},\"learned_clauses\":{},\"learned_cubes\":{},\"backjumps\":{}}}",
            self.runs,
            self.timeouts,
            self.assignments,
            self.conflicts,
            self.solutions,
            self.learned_clauses,
            self.learned_cubes,
            self.backjumps
        )
    }
}

/// Builds the aggregated, byte-deterministic `BENCH_qbf.json` document
/// from suite results.
///
/// Per suite it emits:
///
/// * `row_by_assignments` — the Table I row re-derived from the
///   deterministic assignment counts of the first-strategy pairs
///   (what the committed `BENCH_qbf.json` is diffed on);
/// * `rows` — one such deterministic row per prenexing strategy,
///   reconstructed from the telemetry records by pairing each `to:<s>`
///   run with the `po` run of the same instance;
/// * `po` / `to` — learning and cost totals per solver side, summed from
///   the telemetry records ([`SolverTotals`]).
///
/// Wall-clock times never enter this document (they live in the JSONL
/// stream), so repeated runs on the same seeds are byte-identical.
pub fn bench_json(results: &[SuiteResult]) -> String {
    use std::collections::BTreeMap;
    use std::time::Duration;

    let as_measurement = |r: &TelemetryRecord| Measurement {
        value: r.value,
        stats: r.stats,
        time: Duration::ZERO, // unused by the by-assignments comparison
    };
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"suites\": [\n"));
    for (i, res) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut det = TableRow::default();
        for p in &res.pairs {
            det.add_by_assignments(&p.to, &p.po);
        }
        // Per-strategy deterministic rows: pair every `to:<s>` record with
        // the `po` record of the same instance label.
        let po_by_label: BTreeMap<&str, &TelemetryRecord> = res
            .telemetry
            .iter()
            .filter(|r| r.solver == "po")
            .map(|r| (r.label.as_str(), r))
            .collect();
        let mut strat_rows: Vec<(&str, TableRow)> = Vec::new();
        let (mut po, mut to) = (SolverTotals::default(), SolverTotals::default());
        for r in &res.telemetry {
            if r.solver == "po" {
                po.add(r);
                continue;
            }
            to.add(r);
            let Some(po_rec) = po_by_label.get(r.label.as_str()) else {
                continue;
            };
            let row = match strat_rows.iter_mut().find(|(s, _)| *s == r.solver) {
                Some((_, row)) => row,
                None => {
                    strat_rows.push((r.solver.as_str(), TableRow::default()));
                    &mut strat_rows.last_mut().expect("just pushed").1
                }
            };
            row.add_by_assignments(&as_measurement(r), &as_measurement(po_rec));
        }
        out.push_str(&format!(
            "    {{\"name\":\"{}\",\"instances\":{},\"row_by_assignments\":{},\"rows\":[",
            escape(&res.name),
            res.pairs.len(),
            row_json(&det)
        ));
        for (j, (label, row)) in strat_rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"strategy\":\"{}\",\"row\":{}}}",
                escape(label),
                row_json(row)
            ));
        }
        out.push_str(&format!(
            "],\"po\":{},\"to\":{}}}",
            po.to_json(),
            to.to_json()
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use std::time::Duration;

    fn measurement(assignments: u64, timeout: bool) -> Measurement {
        Measurement {
            value: if timeout { None } else { Some(true) },
            stats: Stats {
                decisions: assignments,
                learned_clauses: 2,
                learned_cubes: 1,
                blocker_hits: 5,
                arena_bytes_peak: 640,
                arena_bytes_reclaimed: 128,
                compactions: 1,
                ..Stats::default()
            },
            time: Duration::from_micros(1234 + assignments),
        }
    }

    fn tiny_result() -> SuiteResult {
        let to = measurement(1000, false);
        let po = measurement(40, false);
        let mut row = TableRow::default();
        row.add(&to, &po, Duration::from_micros(1));
        SuiteResult {
            name: "T".to_string(),
            rows: vec![("s".to_string(), row)],
            pairs: vec![crate::runner::Pair {
                label: "i0".to_string(),
                to: to.clone(),
                po: po.clone(),
            }],
            medians: Vec::new(),
            telemetry: vec![
                TelemetryRecord::new("T", "i0", "g", "po", &po),
                TelemetryRecord::new("T", "i0", "g", "to:s", &to),
            ],
        }
    }

    #[test]
    fn record_json_parses_and_carries_all_stats() {
        let r = TelemetryRecord::new("S", "lbl", "grp", "po", &measurement(7, false));
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("suite").and_then(Json::as_str), Some("S"));
        assert_eq!(v.get("value").and_then(Json::as_bool), Some(true));
        let stats = v.get("stats").unwrap();
        for (name, value) in Stats::default().fields() {
            let _ = value;
            assert!(stats.get(name).is_some(), "missing stats field {name}");
        }
        assert_eq!(
            stats.get("learned_clauses").and_then(Json::as_u64),
            Some(2)
        );
        // the PR-4 memory telemetry flows through without touching this module
        assert_eq!(stats.get("blocker_hits").and_then(Json::as_u64), Some(5));
        assert_eq!(stats.get("arena_bytes_peak").and_then(Json::as_u64), Some(640));
        assert_eq!(
            stats.get("arena_bytes_reclaimed").and_then(Json::as_u64),
            Some(128)
        );
        assert_eq!(stats.get("compactions").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn jsonl_is_line_shaped() {
        let r = TelemetryRecord::new("S", "a", "g", "po", &measurement(7, true));
        let text = records_to_jsonl(&[r.clone(), r]);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(json::parse(line).is_ok());
        }
        assert!(text.contains("\"value\":null"));
    }

    #[test]
    fn bench_json_is_deterministic_and_parseable() {
        let res = tiny_result();
        let doc1 = bench_json(std::slice::from_ref(&res));
        let doc2 = bench_json(&[res]);
        assert_eq!(doc1, doc2, "byte determinism");
        let v = json::parse(&doc1).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(BENCH_SCHEMA));
        let suites = v.get("suites").and_then(Json::as_array).unwrap();
        assert_eq!(suites.len(), 1);
        let s = &suites[0];
        assert_eq!(s.get("name").and_then(Json::as_str), Some("T"));
        assert_eq!(s.get("instances").and_then(Json::as_u64), Some(1));
        let det = s.get("row_by_assignments").unwrap();
        // 1000 vs 40 assignments: TO slower and >10x.
        assert_eq!(det.get("to_slower").and_then(Json::as_u64), Some(1));
        assert_eq!(det.get("to_slower_10x").and_then(Json::as_u64), Some(1));
        let rows = s.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("strategy").and_then(Json::as_str), Some("to:s"));
        assert_eq!(
            rows[0]
                .get("row")
                .and_then(|r| r.get("to_slower"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let po = s.get("po").unwrap();
        assert_eq!(po.get("runs").and_then(Json::as_u64), Some(1));
        assert_eq!(po.get("learned_clauses").and_then(Json::as_u64), Some(2));
    }
}
