//! Assembly of the paper's benchmark suites (§VII) into paired TO/PO
//! instances.

use qbf_core::solver::SolverConfig;
use qbf_core::Qbf;
use qbf_gen::{bomb_in_toilet, fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, PlanningParams, RandParams};
use qbf_models::{counter, dme, gray, ring, semaphore, SymbolicModel};
use qbf_prenex::{miniscope, po_to_ratio, prenex, Strategy};

/// Experiment scale: `Small` keeps every experiment in seconds for CI-like
/// runs, `Paper` approaches the published parameter grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick sweep (default).
    Small,
    /// The published grid (long runtimes).
    Paper,
}

impl Scale {
    /// The node budget (assignment count) standing in for the paper's CPU
    /// timeout.
    pub fn budget(self) -> u64 {
        match self {
            Scale::Small => 200_000,
            Scale::Paper => 5_000_000,
        }
    }

    /// The raised budget of the DIA experiments (the paper used 3600 s
    /// there instead of 600 s).
    pub fn dia_budget(self) -> u64 {
        self.budget() * 6
    }

    /// The tie window standing in for the paper's "within 1 s".
    pub fn tie(self) -> std::time::Duration {
        match self {
            Scale::Small => std::time::Duration::from_millis(5),
            Scale::Paper => std::time::Duration::from_millis(100),
        }
    }

    /// Instances (seeds) per parameter setting. Override with the
    /// `QBF_REPRO_SEEDS` environment variable.
    pub fn seeds(self) -> usize {
        if let Some(n) = std::env::var("QBF_REPRO_SEEDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return n.max(1);
        }
        match self {
            Scale::Small => 4,
            Scale::Paper => 20,
        }
    }
}

/// The solver configuration for QUBE(TO)-style runs.
pub fn to_config(budget: u64) -> SolverConfig {
    SolverConfig::total_order().with_node_limit(budget)
}

/// The solver configuration for QUBE(PO)-style runs.
pub fn po_config(budget: u64) -> SolverConfig {
    SolverConfig::partial_order().with_node_limit(budget)
}

/// One suite element: a non-prenex instance for PO plus its prenexed
/// variants for TO.
#[derive(Debug, Clone)]
pub struct SuiteInstance {
    /// Instance label (unique within the suite).
    pub label: String,
    /// Parameter-setting key (Fig. 3 aggregates medians per setting).
    pub group: String,
    /// The non-prenex instance solved by QUBE(PO).
    pub po: Qbf,
    /// Prenexed variants solved by QUBE(TO), keyed by strategy.
    pub to: Vec<(Strategy, Qbf)>,
}

/// The NCF suite (§VII-A): every instance is prenexed with all four
/// strategies.
pub fn ncf_suite(scale: Scale) -> Vec<SuiteInstance> {
    let grid = match scale {
        Scale::Small => NcfParams::small_grid(),
        Scale::Paper => NcfParams::paper_grid(),
    };
    let mut out = Vec::new();
    for params in &grid {
        for seed in 0..scale.seeds() as u64 {
            let po = ncf(params, seed);
            let to = Strategy::ALL
                .iter()
                .map(|&s| (s, prenex(&po, s)))
                .collect();
            out.push(SuiteInstance {
                label: format!("{params}#{seed}"),
                group: params.to_string(),
                po,
                to,
            });
        }
    }
    out
}

/// The FPV suite (§VII-B): prenexed with ∃↑∀↑ only (the strategy the paper
/// selects after the NCF experiments).
pub fn fpv_suite(scale: Scale) -> Vec<SuiteInstance> {
    let grid = match scale {
        Scale::Small => FpvParams::grid().into_iter().step_by(4).collect::<Vec<_>>(),
        Scale::Paper => FpvParams::grid(),
    };
    let mut out = Vec::new();
    for params in &grid {
        for seed in 0..scale.seeds() as u64 {
            let po = fpv(params, seed);
            let to = vec![(
                Strategy::ExistsUpForallUp,
                prenex(&po, Strategy::ExistsUpForallUp),
            )];
            out.push(SuiteInstance {
                label: format!("{params}#{seed}"),
                group: params.to_string(),
                po,
                to,
            });
        }
    }
    out
}

/// The models of the DIA suite (§VII-C) at the given scale.
pub fn dia_models(scale: Scale) -> Vec<SymbolicModel> {
    match scale {
        Scale::Small => vec![
            counter(2),
            counter(3),
            gray(3),
            ring(3),
            ring(4),
            semaphore(2),
            semaphore(3),
            dme(2),
            dme(3),
        ],
        Scale::Paper => {
            let mut v = Vec::new();
            for n in 4..=8 {
                v.push(counter(n));
            }
            for n in 3..=5 {
                v.push(gray(n));
            }
            for n in 3..=6 {
                v.push(ring(n));
            }
            for n in 2..=6 {
                v.push(semaphore(n));
            }
            for n in 2..=5 {
                v.push(dme(n));
            }
            v
        }
    }
}

/// The PROB suite (§VII-D): random prenex instances, miniscoped; only
/// instances whose PO/TO ratio exceeds 20 % (footnote 9) are kept.
pub fn prob_suite(scale: Scale) -> Vec<SuiteInstance> {
    let settings: Vec<RandParams> = match scale {
        Scale::Small => vec![
            RandParams::three_block(12, 9, 12, 110, 5).with_locality(3, 10),
            RandParams::three_block(16, 10, 16, 170, 5).with_locality(4, 10),
            RandParams::three_block(20, 12, 20, 260, 5).with_locality(4, 8),
        ],
        Scale::Paper => vec![
            RandParams::three_block(12, 9, 12, 110, 4).with_locality(3, 15),
            RandParams::three_block(16, 12, 16, 160, 4).with_locality(4, 15),
            RandParams::three_block(20, 12, 20, 200, 5).with_locality(4, 10),
            RandParams::three_block(15, 12, 15, 150, 5).with_locality(3, 10),
        ],
    };
    let mut pool: Vec<(String, Qbf, u64)> = settings
        .iter()
        .flat_map(|p| {
            (0..scale.seeds() as u64 * 2).map(move |s| (p.to_string(), rand_qbf(p, s), s))
        })
        .collect();
    // The PROB class also contains conformant-planning encodings ([36] in
    // the paper). Like most of the paper's probabilistic instances, their
    // miniscoped form rarely passes the 20 % structure filter — they are
    // candidates, and their (usual) exclusion is part of the experiment.
    for (i, plan) in [
        PlanningParams { packages: 4, steps: 4, toilets: 1, clogging: false },
        PlanningParams { packages: 4, steps: 3, toilets: 2, clogging: true },
        PlanningParams { packages: 5, steps: 5, toilets: 1, clogging: false },
    ]
    .iter()
    .enumerate()
    {
        pool.push((plan.to_string(), bomb_in_toilet(plan), i as u64));
    }
    filtered_miniscope_suite(pool)
}

/// The FIXED suite (§VII-D): structured prenex instances.
pub fn fixed_suite(scale: Scale) -> Vec<SuiteInstance> {
    let settings: Vec<FixedParams> = match scale {
        Scale::Small => vec![
            FixedParams {
                groups: 3,
                depth: 5,
                block_vars: 4,
                clauses_per_group: 70,
                lpc: 5,
            },
            FixedParams {
                groups: 4,
                depth: 5,
                block_vars: 4,
                clauses_per_group: 60,
                lpc: 5,
            },
        ],
        Scale::Paper => vec![
            FixedParams {
                groups: 4,
                depth: 5,
                block_vars: 4,
                clauses_per_group: 55,
                lpc: 5,
            },
            FixedParams {
                groups: 6,
                depth: 5,
                block_vars: 4,
                clauses_per_group: 60,
                lpc: 5,
            },
            FixedParams {
                groups: 8,
                depth: 3,
                block_vars: 6,
                clauses_per_group: 70,
                lpc: 5,
            },
        ],
    };
    filtered_miniscope_suite(
        settings
            .iter()
            .flat_map(|p| {
                (0..scale.seeds() as u64 * 2)
                    .map(move |s| (p.to_string(), fixed(p, s).prenex, s))
            })
            .collect(),
    )
}

/// Shared §VII-D pipeline: miniscope the prenex instance, apply the
/// footnote-9 filter, and pair (original prenex → TO) with (miniscoped →
/// PO).
fn filtered_miniscope_suite(instances: Vec<(String, Qbf, u64)>) -> Vec<SuiteInstance> {
    let mut out = Vec::new();
    for (group, flat, seed) in instances {
        let Ok(mini) = miniscope(&flat) else {
            continue;
        };
        if po_to_ratio(&mini.qbf, &flat) <= 20.0 {
            continue;
        }
        out.push(SuiteInstance {
            label: format!("{group}#{seed}"),
            group,
            po: mini.qbf,
            to: vec![(Strategy::ExistsUpForallUp, flat)],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::semantics;

    #[test]
    fn ncf_suite_pairs_are_equivalent() {
        // Downscale further for the test: one tiny setting.
        let params = NcfParams {
            dep: 3,
            var: 1,
            cls_ratio: 2,
            lpc: 2,
        };
        for seed in 0..3 {
            let po = ncf(&params, seed);
            for s in Strategy::ALL {
                let to = prenex(&po, s);
                assert_eq!(semantics::eval(&to), semantics::eval(&po), "{s}");
            }
        }
    }

    #[test]
    fn small_suites_are_nonempty() {
        assert!(!ncf_suite(Scale::Small).is_empty());
        assert!(!fpv_suite(Scale::Small).is_empty());
        assert!(!dia_models(Scale::Small).is_empty());
        assert!(!fixed_suite(Scale::Small).is_empty());
    }

    #[test]
    fn fixed_suite_survives_filter() {
        let suite = fixed_suite(Scale::Small);
        assert!(!suite.is_empty(), "FIXED instances must pass the 20% filter");
        for inst in &suite {
            assert!(!inst.po.is_prenex());
            assert!(inst.to[0].1.is_prenex());
        }
    }

    #[test]
    fn prob_and_fixed_pairs_equivalent_semantically() {
        // Use minimal random instances to keep the naive oracle feasible.
        let settings = RandParams::three_block(2, 2, 2, 8, 2);
        let insts: Vec<(String, Qbf, u64)> = (0..6)
            .map(|s| ("t".to_string(), rand_qbf(&settings, s), s))
            .collect();
        for inst in filtered_miniscope_suite(insts) {
            assert_eq!(
                semantics::eval(&inst.po),
                semantics::eval(&inst.to[0].1),
                "{}",
                inst.label
            );
        }
    }
}
