//! A tiny hand-rolled JSON value type and recursive-descent parser.
//!
//! The repo builds hermetically (no external crates), so the telemetry
//! layer *writes* JSON by plain string formatting and *validates* what it
//! wrote with this minimal reader. The parser accepts standard JSON
//! (objects, arrays, strings with escapes, numbers, booleans, `null`);
//! it exists so `repro bench-smoke` and the tests can round-trip
//! `BENCH_qbf.json` without trusting the writer blindly.

/// A parsed JSON value. Objects preserve insertion order (the writer's
/// field order is part of the byte-determinism contract, so the reader
/// keeps it observable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, stored as `f64` (all counters we emit fit exactly).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an integral, in-range number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes a string for embedding between double quotes in JSON output.
/// Shared by the telemetry writers so writer and reader agree.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// garbage is an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction)
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2, {"b": false}], "c": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn truncated_documents_error_instead_of_panicking() {
        // Every prefix of a valid document must parse or error cleanly.
        let doc = r#"{"suite":"NCF","value":null,"stats":{"decisions":5},"t":"a\u0041b"}"#;
        for cut in 0..doc.len() {
            let prefix = &doc[..cut];
            if !prefix.is_char_boundary(cut) {
                continue;
            }
            if cut < doc.len() {
                assert!(parse(prefix).is_err(), "prefix {cut} accepted: {prefix}");
            }
        }
        assert!(parse("").is_err(), "empty input");
        assert!(parse("   \n\t ").is_err(), "whitespace-only input");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("\"bad \\u00").is_err(), "truncated \\u escape");
        assert!(parse("\"bad \\x\"").is_err(), "unknown escape");
        assert!(parse("{\"dup\":1,}").is_err(), "trailing comma");
        assert!(parse("nul").is_err(), "truncated literal");
    }

    #[test]
    fn escape_round_trips() {
        let original = "line\nwith \"quotes\" and \\slash\\ and \u{1} ctrl";
        let wrapped = format!("\"{}\"", escape(original));
        assert_eq!(parse(&wrapped).unwrap().as_str(), Some(original));
    }
}
