//! Strict command-line parsing for the `repro` binary.
//!
//! Historically `repro` downgraded a bad `--jobs` value to 1 with a
//! stderr note and kept running — which silently serialised CI runs
//! that asked for parallelism. This module makes every malformed flag a
//! hard error: [`parse`] returns `Err` with a one-line reason and the
//! binary exits 2 after printing [`USAGE`]. Unknown flags and unknown
//! subcommands are errors too, so typos fail fast instead of running
//! `all` or nothing.

use std::path::PathBuf;

use crate::suites::Scale;

/// One-screen usage text printed on `--help` and on every parse error.
pub const USAGE: &str = "\
repro [--scale small|paper] [--out DIR] [--bench-out FILE] [--jobs N] [--portfolio N] [--engine E] <command>

commands:
  fig2 table1 fig3 fig4 fig5 fig6 fig7 instances
  ablate-score ablate-learning ablate-miniscope
  bench-smoke bench-incremental bench-portfolio bench-engines all

flags:
  --scale small|paper  experiment scale (default small)
  --out DIR            output directory (default target/repro)
  --bench-out FILE     write BENCH_qbf.json here instead of into --out
  --jobs N             measurement-phase worker threads, N >= 1 (default 1)
  --portfolio N        portfolio thread count for bench-portfolio, N >= 1 (default 4)
  --engine search|expand|both
                       engines bench-engines measures (default both)

env: QBF_REPRO_SEEDS=N overrides instances per setting
     QBF_PORTFOLIO_MIN_SPEEDUP=X overrides the bench-portfolio wall gate (0 disables)";

/// Subcommands `repro` accepts; anything else is a parse error.
const COMMANDS: &[&str] = &[
    "fig2",
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "instances",
    "ablate-score",
    "ablate-learning",
    "ablate-miniscope",
    "bench-smoke",
    "bench-incremental",
    "bench-portfolio",
    "bench-engines",
    "all",
];

/// Which engines `bench-engines` measures (`--engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Only the search (QDPLL) side.
    Search,
    /// Only the expansion (`qbf-expand`) side.
    Expand,
    /// Both, head to head (the default).
    Both,
}

/// Parsed `repro` invocation.
#[derive(Debug, Clone)]
pub struct Args {
    /// Experiment scale (`--scale`).
    pub scale: Scale,
    /// Output directory (`--out`).
    pub out: PathBuf,
    /// Override path for `BENCH_qbf.json` (`--bench-out`).
    pub bench_out: Option<PathBuf>,
    /// Measurement-phase worker threads (`--jobs`), always ≥ 1.
    pub jobs: usize,
    /// Portfolio thread count for `bench-portfolio` (`--portfolio`), ≥ 1.
    pub portfolio: usize,
    /// Engine selection for `bench-engines` (`--engine`).
    pub engine: EngineChoice,
    /// The subcommand, `"all"` when none was given, `"help"` for
    /// `--help`/`-h` (the binary prints [`USAGE`] and exits 0).
    pub command: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Small,
            out: PathBuf::from("target/repro"),
            bench_out: None,
            jobs: 1,
            portfolio: 4,
            engine: EngineChoice::Both,
            command: "all".to_string(),
        }
    }
}

/// Parses a positive integer flag value; `flag` only flavours the error.
fn positive(flag: &str, value: Option<String>) -> Result<usize, String> {
    let v = value.ok_or_else(|| format!("{flag} requires a value"))?;
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(_) => Err(format!("{flag} must be >= 1, got `{v}`")),
        Err(_) => Err(format!("bad {flag} `{v}`: expected a positive integer")),
    }
}

/// Parses the argument list (without the program name). Every malformed
/// flag, unknown flag, or unknown subcommand is an error; the caller is
/// expected to print the message plus [`USAGE`] and exit 2.
pub fn parse<I>(argv: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = Args::default();
    let mut command: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => args.jobs = positive("--jobs", it.next())?,
            "--portfolio" => args.portfolio = positive("--portfolio", it.next())?,
            "--scale" => {
                let v = it.next().ok_or("--scale requires a value")?;
                args.scale = match v.as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale `{other}` (small|paper)")),
                };
            }
            "--engine" => {
                let v = it.next().ok_or("--engine requires a value")?;
                args.engine = match v.as_str() {
                    "search" => EngineChoice::Search,
                    "expand" => EngineChoice::Expand,
                    "both" => EngineChoice::Both,
                    other => {
                        return Err(format!("unknown engine `{other}` (search|expand|both)"))
                    }
                };
            }
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out requires a value")?);
            }
            "--bench-out" => {
                args.bench_out =
                    Some(PathBuf::from(it.next().ok_or("--bench-out requires a value")?));
            }
            "--help" | "-h" => {
                args.command = "help".to_string();
                return Ok(args);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            cmd => {
                if let Some(first) = &command {
                    return Err(format!("unexpected extra command `{cmd}` (already have `{first}`)"));
                }
                if !COMMANDS.contains(&cmd) {
                    return Err(format!("unknown command `{cmd}`"));
                }
                command = Some(cmd.to_string());
            }
        }
    }
    if let Some(cmd) = command {
        args.command = cmd;
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Args, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = p(&[]).unwrap();
        assert_eq!(a.command, "all");
        assert_eq!(a.jobs, 1);
        assert_eq!(a.portfolio, 4);
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.out, PathBuf::from("target/repro"));
        assert!(a.bench_out.is_none());
    }

    #[test]
    fn full_invocation() {
        let a = p(&[
            "--scale",
            "paper",
            "--out",
            "o",
            "--bench-out",
            "b.json",
            "--jobs",
            "4",
            "--portfolio",
            "8",
            "bench-portfolio",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.out, PathBuf::from("o"));
        assert_eq!(a.bench_out.as_deref(), Some(std::path::Path::new("b.json")));
        assert_eq!(a.jobs, 4);
        assert_eq!(a.portfolio, 8);
        assert_eq!(a.command, "bench-portfolio");
    }

    #[test]
    fn bad_jobs_is_an_error_not_a_downgrade() {
        // The original bug: `--jobs x` printed a note and ran with 1.
        let err = p(&["--jobs", "x", "bench-smoke"]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        assert!(err.contains("`x`"), "{err}");
    }

    #[test]
    fn jobs_error_paths() {
        assert!(p(&["--jobs"]).unwrap_err().contains("requires a value"));
        assert!(p(&["--jobs", "0"]).unwrap_err().contains(">= 1"));
        assert!(p(&["--jobs", "-3"]).unwrap_err().contains("positive integer"));
        assert!(p(&["--jobs", "1.5"]).unwrap_err().contains("positive integer"));
    }

    #[test]
    fn portfolio_error_paths() {
        assert!(p(&["--portfolio"]).unwrap_err().contains("requires a value"));
        assert!(p(&["--portfolio", "0"]).unwrap_err().contains(">= 1"));
        assert!(p(&["--portfolio", "many"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(p(&["--portfolio", "4", "--portfolio", "0"]).is_err());
        assert_eq!(p(&["--portfolio", "2"]).unwrap().portfolio, 2);
    }

    #[test]
    fn unknown_flag_and_command_are_errors() {
        assert!(p(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(p(&["bench-smok"]).unwrap_err().contains("unknown command"));
        assert!(p(&["table1", "fig3"])
            .unwrap_err()
            .contains("unexpected extra command"));
    }

    #[test]
    fn engine_error_paths() {
        assert!(p(&["--engine"]).unwrap_err().contains("requires a value"));
        assert!(p(&["--engine", "expnd"]).unwrap_err().contains("unknown engine"));
        assert_eq!(p(&[]).unwrap().engine, EngineChoice::Both);
        assert_eq!(p(&["--engine", "search"]).unwrap().engine, EngineChoice::Search);
        assert_eq!(p(&["--engine", "expand"]).unwrap().engine, EngineChoice::Expand);
        assert_eq!(p(&["--engine", "both"]).unwrap().engine, EngineChoice::Both);
        assert_eq!(
            p(&["--engine", "expand", "bench-engines"]).unwrap().command,
            "bench-engines"
        );
    }

    #[test]
    fn scale_error_paths() {
        assert!(p(&["--scale"]).unwrap_err().contains("requires a value"));
        assert!(p(&["--scale", "huge"]).unwrap_err().contains("unknown scale"));
        assert_eq!(p(&["--scale", "paper"]).unwrap().scale, Scale::Paper);
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(p(&["--help"]).unwrap().command, "help");
        assert_eq!(p(&["-h", "--jobs"]).unwrap().command, "help");
        assert!(USAGE.contains("--portfolio"));
    }
}
