//! Post-hoc analysis of the bench and serve telemetry artifacts — the
//! library behind the `qbfstat` binary.
//!
//! Three readers, all strict and all panic-free:
//!
//! * [`parse_telemetry`] — the per-run JSONL stream written by
//!   `repro table1` (`*_telemetry.jsonl`). Every malformed, truncated or
//!   unknown-field line is a 1-based `line N: …` error, mirroring the
//!   `qbf_core::io` parser discipline, so a corrupted artifact names the
//!   offending line instead of panicking downstream.
//! * [`parse_snapshots`] — the snapshot stream written by
//!   `qbfserve --metrics-jsonl` (typed `{"type":"snapshot"|"progress"}`
//!   lines).
//! * [`diff_bench`] — a structural diff of two `BENCH_qbf*.json`
//!   documents (the committed aggregate vs a fresh regeneration), the
//!   regression-detection half of `qbfstat`.
//!
//! On top of the parsed rows, [`summarize`] folds per-(suite, solver)
//! latency into [`LogHistogram`]s for exact-rank p50/p90/p99 reads and
//! [`hottest`] ranks the most expensive instances. Latency percentiles
//! are *reports over recorded wall times*; they never feed back into any
//! byte-diffed artifact (see `DESIGN.md` §2.8).

use crate::json::{self, Json};
use crate::telemetry::TelemetryRecord;
use qbf_metrics::LogHistogram;

/// One parsed telemetry record: the provenance fields, the outcome, the
/// wall time, and the full stats block as ordered `(name, value)` pairs
/// (the set of counters is open — `Stats` grows without touching the
/// reader).
#[derive(Debug, Clone)]
pub struct TelemetryRow {
    /// Suite name (`NCF`, `FPV`, …).
    pub suite: String,
    /// Instance label.
    pub label: String,
    /// Generator parameter group.
    pub group: String,
    /// Solver configuration (`po` or `to:<strategy>`).
    pub solver: String,
    /// Decided value; `None` on budget exhaustion.
    pub value: Option<bool>,
    /// Wall-clock milliseconds.
    pub time_ms: f64,
    /// The stats block, in writer order.
    pub stats: Vec<(String, u64)>,
}

impl TelemetryRow {
    /// Looks up a stats counter by name (0 when absent, so summaries
    /// degrade gracefully on records from older writers).
    pub fn stat(&self, name: &str) -> u64 {
        self.stats
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

impl From<&TelemetryRecord> for TelemetryRow {
    fn from(r: &TelemetryRecord) -> Self {
        TelemetryRow {
            suite: r.suite.clone(),
            label: r.label.clone(),
            group: r.group.clone(),
            solver: r.solver.clone(),
            value: r.value,
            time_ms: r.time_ms,
            stats: r
                .stats
                .fields()
                .iter()
                .map(|&(n, v)| (n.to_string(), v))
                .collect(),
        }
    }
}

/// The top-level fields a telemetry record may carry; anything else is a
/// schema error (the writer is in-tree, so drift means a bug).
const RECORD_FIELDS: [&str; 7] = ["suite", "label", "group", "solver", "value", "time_ms", "stats"];

fn field_str(obj: &Json, name: &str) -> Result<String, String> {
    obj.get(name)
        .ok_or_else(|| format!("record missing field `{name}`"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{name}` must be a string"))
}

/// Parses one telemetry record object (no line context).
fn parse_record(v: &Json) -> Result<TelemetryRow, String> {
    let Json::Obj(fields) = v else {
        return Err("telemetry record must be a JSON object".to_string());
    };
    for (name, _) in fields {
        if !RECORD_FIELDS.contains(&name.as_str()) {
            return Err(format!("unknown field `{name}`"));
        }
    }
    let value = match v.get("value").ok_or("record missing field `value`")? {
        Json::Bool(b) => Some(*b),
        Json::Null => None,
        _ => return Err("field `value` must be a boolean or null".to_string()),
    };
    let time_ms = v
        .get("time_ms")
        .ok_or("record missing field `time_ms`")?
        .as_f64()
        .ok_or("field `time_ms` must be a number")?;
    if !time_ms.is_finite() || time_ms < 0.0 {
        return Err(format!("field `time_ms` out of range: {time_ms}"));
    }
    let stats = match v.get("stats").ok_or("record missing field `stats`")? {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(n, sv)| {
                sv.as_u64()
                    .map(|u| (n.clone(), u))
                    .ok_or_else(|| format!("stats counter `{n}` must be a non-negative integer"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("field `stats` must be an object".to_string()),
    };
    Ok(TelemetryRow {
        suite: field_str(v, "suite")?,
        label: field_str(v, "label")?,
        group: field_str(v, "group")?,
        solver: field_str(v, "solver")?,
        value,
        time_ms,
        stats,
    })
}

/// Parses a telemetry JSONL stream. Blank lines are skipped; every other
/// defect — malformed or truncated JSON, a non-object line, missing or
/// unknown fields, a wrongly-typed value, or an entirely empty stream —
/// is a `line N: …` error with the 1-based input line number.
pub fn parse_telemetry(text: &str) -> Result<Vec<TelemetryRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: malformed JSON: {e}", i + 1))?;
        rows.push(parse_record(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    if rows.is_empty() {
        return Err("line 1: empty telemetry stream (no records)".to_string());
    }
    Ok(rows)
}

/// One line of a `qbfserve --metrics-jsonl` snapshot stream.
#[derive(Debug, Clone)]
pub enum SnapshotLine {
    /// A full metrics snapshot (`{"type":"snapshot","snapshot":{…}}`).
    Snapshot(Json),
    /// A routed progress line (`{"type":"progress","query":N,"text":…}`).
    Progress {
        /// 1-based query index the line belongs to.
        query: u64,
        /// The `c progress: …` text.
        text: String,
    },
}

/// Parses a `qbfserve` snapshot stream with the same `line N: …` error
/// discipline as [`parse_telemetry`]. An empty stream is fine here — a
/// session with no snapshots configured writes only the final summary,
/// and possibly nothing at all when interrupted.
pub fn parse_snapshots(text: &str) -> Result<Vec<SnapshotLine>, String> {
    let mut lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: malformed JSON: {e}", i + 1))?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: stream line needs a string `type`", i + 1))?;
        match kind {
            "snapshot" => {
                let snap = v
                    .get("snapshot")
                    .ok_or_else(|| format!("line {}: snapshot line missing `snapshot`", i + 1))?;
                lines.push(SnapshotLine::Snapshot(snap.clone()));
            }
            "progress" => {
                let query = v
                    .get("query")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: progress line missing `query`", i + 1))?;
                let text = v
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: progress line missing `text`", i + 1))?;
                lines.push(SnapshotLine::Progress {
                    query,
                    text: text.to_string(),
                });
            }
            other => return Err(format!("line {}: unknown stream line type `{other}`", i + 1)),
        }
    }
    Ok(lines)
}

/// Aggregated latency and cost for one (suite, solver) cell.
#[derive(Debug)]
pub struct SuiteSummary {
    /// Suite name.
    pub suite: String,
    /// Solver configuration.
    pub solver: String,
    /// Measured runs.
    pub runs: u64,
    /// Runs that exhausted their budget.
    pub timeouts: u64,
    /// Total assignments across the runs.
    pub assignments: u64,
    /// Per-run latency in microseconds (log-bucketed, exact-rank reads).
    pub latency_us: LogHistogram,
}

impl SuiteSummary {
    /// A latency quantile in milliseconds.
    pub fn latency_ms(&self, q: f64) -> f64 {
        self.latency_us.quantile(q) as f64 / 1e3
    }
}

/// Folds rows into per-(suite, solver) summaries, in first-appearance
/// order. Wall times are histogrammed at microsecond resolution — fine
/// enough for the millisecond-scale suites, and integral so the
/// log-bucketed quantiles are exact-rank.
pub fn summarize(rows: &[TelemetryRow]) -> Vec<SuiteSummary> {
    let mut out: Vec<SuiteSummary> = Vec::new();
    for r in rows {
        let cell = match out
            .iter_mut()
            .find(|s| s.suite == r.suite && s.solver == r.solver)
        {
            Some(cell) => cell,
            None => {
                out.push(SuiteSummary {
                    suite: r.suite.clone(),
                    solver: r.solver.clone(),
                    runs: 0,
                    timeouts: 0,
                    assignments: 0,
                    latency_us: LogHistogram::new(),
                });
                out.last_mut().expect("just pushed")
            }
        };
        cell.runs += 1;
        cell.timeouts += u64::from(r.value.is_none());
        cell.assignments += r.stat("assignments");
        cell.latency_us.record((r.time_ms * 1e3) as u64);
    }
    out
}

/// Renders the summaries as an aligned table with p50/p90/p99 latency.
pub fn render_summaries(summaries: &[SuiteSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:8} {:10} {:>6} {:>9} {:>13} {:>9} {:>9} {:>9}\n",
        "suite", "solver", "runs", "timeouts", "assignments", "p50 ms", "p90 ms", "p99 ms"
    ));
    for s in summaries {
        out.push_str(&format!(
            "{:8} {:10} {:>6} {:>9} {:>13} {:>9.3} {:>9.3} {:>9.3}\n",
            s.suite,
            s.solver,
            s.runs,
            s.timeouts,
            s.assignments,
            s.latency_ms(0.5),
            s.latency_ms(0.9),
            s.latency_ms(0.99)
        ));
    }
    out
}

/// The `k` most expensive runs by wall time, ties broken by provenance so
/// the ranking is deterministic for equal inputs.
pub fn hottest(rows: &[TelemetryRow], k: usize) -> Vec<&TelemetryRow> {
    let mut refs: Vec<&TelemetryRow> = rows.iter().collect();
    refs.sort_by(|a, b| {
        b.time_ms
            .partial_cmp(&a.time_ms)
            .expect("finite times")
            .then_with(|| (&a.suite, &a.label, &a.solver).cmp(&(&b.suite, &b.label, &b.solver)))
    });
    refs.truncate(k);
    refs
}

/// Renders the hottest-instance ranking.
pub fn render_hottest(rows: &[&TelemetryRow]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{:>3}. {:>10.3} ms  {:8} {:10} {}  ({} assignments{})\n",
            i + 1,
            r.time_ms,
            r.suite,
            r.solver,
            r.label,
            r.stat("assignments"),
            if r.value.is_none() { ", timeout" } else { "" }
        ));
    }
    out
}

/// Structural diff of two `BENCH_qbf*.json` documents. Returns the list
/// of differences as `path: old → new` lines — empty means the artifacts
/// agree. Suites and per-strategy rows are matched by their `name` /
/// `strategy` keys so a reordering reads as such, not as a wall of
/// field-level noise.
pub fn diff_bench(old: &str, new: &str) -> Result<Vec<String>, String> {
    let a = json::parse(old).map_err(|e| format!("old document: {e}"))?;
    let b = json::parse(new).map_err(|e| format!("new document: {e}"))?;
    let mut out = Vec::new();
    diff_value("", &a, &b, &mut out);
    Ok(out)
}

/// The key that names an object inside a JSON array, for path labels.
fn element_label(v: &Json, index: usize) -> String {
    for key in ["name", "strategy", "model"] {
        if let Some(label) = v.get(key).and_then(Json::as_str) {
            return format!("[{label}]");
        }
    }
    format!("[{index}]")
}

fn render_scalar(v: &Json) -> String {
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                format!("{}", *n as i64)
            } else {
                n.to_string()
            }
        }
        Json::Str(s) => format!("\"{s}\""),
        Json::Arr(items) => format!("<array of {}>", items.len()),
        Json::Obj(fields) => format!("<object of {}>", fields.len()),
    }
}

fn diff_value(path: &str, a: &Json, b: &Json, out: &mut Vec<String>) {
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            for (key, va) in fa {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match b.get(key) {
                    Some(vb) => diff_value(&sub, va, vb, out),
                    None => out.push(format!("{sub}: removed (was {})", render_scalar(va))),
                }
            }
            for (key, vb) in fb {
                if a.get(key).is_none() {
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    out.push(format!("{sub}: added ({})", render_scalar(vb)));
                }
            }
        }
        (Json::Arr(ia), Json::Arr(ib)) => {
            // Match named elements (suites, per-strategy rows) by label;
            // positional for everything else.
            let labels_a: Vec<String> =
                ia.iter().enumerate().map(|(i, v)| element_label(v, i)).collect();
            let labels_b: Vec<String> =
                ib.iter().enumerate().map(|(i, v)| element_label(v, i)).collect();
            for (la, va) in labels_a.iter().zip(ia) {
                match labels_b.iter().position(|lb| lb == la) {
                    Some(j) => diff_value(&format!("{path}{la}"), va, &ib[j], out),
                    None => out.push(format!("{path}{la}: removed")),
                }
            }
            for (lb, _) in labels_b.iter().zip(ib) {
                if !labels_a.contains(lb) {
                    out.push(format!("{path}{lb}: added"));
                }
            }
        }
        _ if a == b => {}
        _ => out.push(format!(
            "{path}: {} \u{2192} {}",
            render_scalar(a),
            render_scalar(b)
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::records_to_jsonl;
    use qbf_core::solver::Stats;
    use std::time::Duration;

    fn record(suite: &str, label: &str, solver: &str, ms: u64, timeout: bool) -> TelemetryRecord {
        TelemetryRecord::new(
            suite,
            label,
            "g",
            solver,
            &crate::runner::Measurement {
                value: if timeout { None } else { Some(false) },
                stats: Stats {
                    decisions: 5,
                    propagations: 10,
                    ..Stats::default()
                },
                time: Duration::from_millis(ms),
            },
        )
    }

    #[test]
    fn round_trips_the_writer_output() {
        let records = [
            record("NCF", "a#0", "po", 2, false),
            record("NCF", "a#0", "to:s", 40, false),
            record("FPV", "b#1", "po", 7, true),
        ];
        let rows = parse_telemetry(&records_to_jsonl(&records)).expect("writer output parses");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].suite, "NCF");
        assert_eq!(rows[0].solver, "po");
        assert_eq!(rows[2].value, None);
        assert_eq!(rows[0].stat("assignments"), 15);
        assert_eq!(rows[0].stat("no_such_counter"), 0);
    }

    #[test]
    fn defects_carry_one_based_line_numbers() {
        let good = record("S", "i", "po", 1, false).to_json();
        // Truncated JSON on line 2.
        let err = parse_telemetry(&format!("{good}\n{{\"suite\":\"S\"")).unwrap_err();
        assert!(err.starts_with("line 2: malformed JSON:"), "got: {err}");
        // Unknown top-level field on line 3 (blank line 2 is skipped but
        // still counts for numbering).
        let bad = good.replacen("\"suite\"", "\"sutie\"", 1);
        let err = parse_telemetry(&format!("{good}\n\n{bad}")).unwrap_err();
        assert_eq!(err, "line 3: unknown field `sutie`");
        // Wrong value type.
        let bad = good.replacen("\"value\":false", "\"value\":\"no\"", 1);
        let err = parse_telemetry(&bad).unwrap_err();
        assert_eq!(err, "line 1: field `value` must be a boolean or null");
        // Non-object line.
        let err = parse_telemetry("[1,2]\n").unwrap_err();
        assert_eq!(err, "line 1: telemetry record must be a JSON object");
        // Fractional stats counter.
        let bad = good.replacen("\"decisions\":5", "\"decisions\":5.5", 1);
        let err = parse_telemetry(&bad).unwrap_err();
        assert_eq!(
            err,
            "line 1: stats counter `decisions` must be a non-negative integer"
        );
        // Empty and blank-only files are errors, not empty successes.
        assert_eq!(
            parse_telemetry("").unwrap_err(),
            "line 1: empty telemetry stream (no records)"
        );
        assert!(parse_telemetry("\n  \n").is_err());
    }

    #[test]
    fn summaries_fold_latency_percentiles() {
        let mut records = Vec::new();
        for i in 1..=100u64 {
            records.push(record("NCF", &format!("i#{i}"), "po", i, false));
        }
        records.push(record("NCF", "t#0", "to:s", 500, true));
        let rows = parse_telemetry(&records_to_jsonl(&records)).unwrap();
        let summaries = summarize(&rows);
        assert_eq!(summaries.len(), 2, "grouped by (suite, solver)");
        let po = &summaries[0];
        assert_eq!((po.runs, po.timeouts), (100, 0));
        // 1..=100 ms at µs resolution: exact-rank p50 falls in the
        // [32768, 65535] µs bucket → 63.5 ms worst case; just pin the
        // bracketing behaviour and the rendering.
        assert!(po.latency_ms(0.5) >= 50.0 && po.latency_ms(0.5) <= 100.0);
        assert!(po.latency_ms(0.99) >= po.latency_ms(0.5));
        let to = &summaries[1];
        assert_eq!((to.runs, to.timeouts), (1, 1));
        let table = render_summaries(&summaries);
        assert!(table.contains("p50 ms"), "got:\n{table}");
        assert!(table.contains("NCF"), "got:\n{table}");

        let top = hottest(&rows, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].label, "t#0", "timeout run is the hottest");
        assert_eq!(top[1].label, "i#100");
        let listing = render_hottest(&top);
        assert!(listing.contains("1."), "got:\n{listing}");
        assert!(listing.contains("timeout"), "got:\n{listing}");
    }

    #[test]
    fn snapshot_stream_parses_and_rejects_garbage() {
        let stream = "{\"type\":\"progress\",\"query\":1,\"text\":\"c progress: 1 leaves\"}\n\
                      {\"type\":\"snapshot\",\"snapshot\":{\"queries\":2}}\n";
        let lines = parse_snapshots(stream).expect("well-formed stream");
        assert_eq!(lines.len(), 2);
        match &lines[0] {
            SnapshotLine::Progress { query, text } => {
                assert_eq!(*query, 1);
                assert!(text.starts_with("c progress:"));
            }
            other => panic!("expected progress, got {other:?}"),
        }
        match &lines[1] {
            SnapshotLine::Snapshot(snap) => {
                assert_eq!(snap.get("queries").and_then(Json::as_u64), Some(2));
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
        assert!(parse_snapshots("").expect("empty stream is fine").is_empty());
        let err = parse_snapshots("{\"type\":\"wat\"}").unwrap_err();
        assert_eq!(err, "line 1: unknown stream line type `wat`");
        let err = parse_snapshots("{\"type\":\"snapshot\"}\nnope").unwrap_err();
        assert!(err.starts_with("line 1: snapshot line missing"), "got: {err}");
    }

    #[test]
    fn bench_diff_names_the_changed_cells() {
        let old = r#"{"schema":"qbf-bench/1","suites":[
            {"name":"NCF","instances":4,"row_by_assignments":{"ties":4},"po":{"runs":4}},
            {"name":"FPV","instances":2,"row_by_assignments":{"ties":2},"po":{"runs":2}}
        ]}"#;
        assert_eq!(diff_bench(old, old).unwrap(), Vec::<String>::new(), "self-diff is clean");
        let new = old
            .replacen("\"instances\":4", "\"instances\":5", 1)
            .replacen("{\"ties\":2}", "{\"ties\":1,\"to_faster\":1}", 1);
        let diffs = diff_bench(old, &new).unwrap();
        assert!(
            diffs.iter().any(|d| d == "suites[NCF].instances: 4 \u{2192} 5"),
            "got: {diffs:?}"
        );
        assert!(
            diffs
                .iter()
                .any(|d| d == "suites[FPV].row_by_assignments.ties: 2 \u{2192} 1"),
            "got: {diffs:?}"
        );
        assert!(
            diffs
                .iter()
                .any(|d| d == "suites[FPV].row_by_assignments.to_faster: added (1)"),
            "got: {diffs:?}"
        );
        // A vanished suite reads as one removal, not field noise.
        let gone = r#"{"schema":"qbf-bench/1","suites":[
            {"name":"NCF","instances":4,"row_by_assignments":{"ties":4},"po":{"runs":4}}
        ]}"#;
        let diffs = diff_bench(old, gone).unwrap();
        assert_eq!(diffs, vec!["suites[FPV]: removed".to_string()]);
        assert!(diff_bench("{", old).is_err(), "malformed old document");
    }

    #[test]
    fn native_records_convert_to_rows() {
        let r = record("DIA", "d#3", "po", 12, false);
        let row = TelemetryRow::from(&r);
        assert_eq!(row.suite, "DIA");
        assert_eq!(row.time_ms, 12.0);
        assert_eq!(row.stat("decisions"), 5);
        let summaries = summarize(&[row]);
        assert_eq!(summaries[0].runs, 1);
    }
}
