//! The experiment drivers: one function per table/figure of §VII.

use std::collections::BTreeMap;
use std::time::Duration;

use qbf_core::recursive::{self, RecursiveConfig};
use qbf_core::solver::SolverConfig;
use qbf_models::{compute_diameter, explore, DiameterForm, SymbolicModel};
use qbf_prenex::Strategy;

use crate::runner::{run, Measurement, Pair, TableRow};
use crate::suites::{self, Scale, SuiteInstance};
use crate::telemetry::TelemetryRecord;

/// Result of a Table-I style suite run: one row per strategy, plus the
/// per-instance pairs (against the listed strategy, or the virtual best
/// solver for Fig. 3).
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Suite name (NCF, FPV, …).
    pub name: String,
    /// Rows: (strategy label, Table I row).
    pub rows: Vec<(String, TableRow)>,
    /// Per-instance (TO, PO) measurement pairs, TO = first strategy.
    pub pairs: Vec<Pair>,
    /// Fig. 3 data: per parameter setting, (median PO ms, median best-TO
    /// ms) — only populated when several strategies are run.
    pub medians: Vec<(String, f64, f64)>,
    /// One telemetry record per measured run (PO and every TO strategy),
    /// feeding the JSONL stream and the `BENCH_qbf.json` aggregation.
    pub telemetry: Vec<TelemetryRecord>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if xs.is_empty() {
        return f64::NAN;
    }
    xs[xs.len() / 2]
}

/// Maps `items` through `f` on up to `jobs` worker threads (plain
/// `std::thread` — the workspace is hermetic), returning the results **in
/// item order** regardless of how the work was scheduled. `jobs <= 1`
/// degenerates to a sequential map on the calling thread, so the two
/// paths produce identical values and differ only in wall clock.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// The raw measurements of one suite instance: the PO run plus one TO run
/// per strategy. Produced by the (possibly parallel) measurement phase,
/// consumed sequentially in instance order by the aggregation phase.
struct InstanceRuns {
    po: Measurement,
    to: Vec<Measurement>,
}

/// Runs a suite of paired instances: PO once, TO once per strategy.
pub fn run_suite(name: &str, instances: &[SuiteInstance], budget: u64, tie: Duration) -> SuiteResult {
    run_suite_jobs(name, instances, budget, tie, 1)
}

/// [`run_suite`] with the instances fanned out across `jobs` worker
/// threads. The solver is deterministic and aggregation happens in
/// instance order, so everything derived from verdicts and [`qbf_core::solver::Stats`]
/// (rows, pairs, `BENCH_qbf.json`) is byte-identical for any `jobs`; only
/// the measured wall-clock times differ.
pub fn run_suite_jobs(
    name: &str,
    instances: &[SuiteInstance],
    budget: u64,
    tie: Duration,
    jobs: usize,
) -> SuiteResult {
    let po_cfg = suites::po_config(budget);
    let to_cfg = suites::to_config(budget);
    let strategies: Vec<Strategy> = instances
        .first()
        .map(|i| i.to.iter().map(|(s, _)| *s).collect())
        .unwrap_or_default();
    let mut rows: Vec<(String, TableRow)> =
        strategies.iter().map(|s| (s.to_string(), TableRow::default())).collect();
    let mut pairs = Vec::new();
    let mut telemetry = Vec::new();
    // group -> (po times, best-to times)
    let mut group_data: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();

    let measured = parallel_map(instances, jobs, |inst| InstanceRuns {
        po: run(&inst.po, &po_cfg),
        to: inst.to.iter().map(|(_, to_qbf)| run(to_qbf, &to_cfg)).collect(),
    });

    for (inst, runs) in instances.iter().zip(measured) {
        let po = runs.po;
        telemetry.push(TelemetryRecord::new(
            name,
            &inst.label,
            &inst.group,
            "po",
            &po,
        ));
        let mut to_runs: Vec<Measurement> = Vec::new();
        for (((strategy, _), to), (_, row)) in
            inst.to.iter().zip(runs.to).zip(rows.iter_mut())
        {
            // sanity: decided values must agree
            if let (Some(a), Some(b)) = (to.value, po.value) {
                assert_eq!(a, b, "TO/PO disagree on {}", inst.label);
            }
            row.add(&to, &po, tie);
            telemetry.push(TelemetryRecord::new(
                name,
                &inst.label,
                &inst.group,
                &format!("to:{strategy}"),
                &to,
            ));
            to_runs.push(to);
        }
        // Virtual best TO (QUBE(TO)* of Fig. 3): minimum time, timeouts
        // counted as the budget.
        let budget_time = to_runs
            .iter()
            .map(|m| m.time)
            .max()
            .unwrap_or_default()
            .max(tie * 200);
        let best_ms = to_runs
            .iter()
            .map(|m| {
                if m.is_timeout() {
                    budget_time.as_secs_f64() * 1e3
                } else {
                    m.time.as_secs_f64() * 1e3
                }
            })
            .fold(f64::INFINITY, f64::min);
        let po_ms = if po.is_timeout() {
            budget_time.as_secs_f64() * 1e3
        } else {
            po.time.as_secs_f64() * 1e3
        };
        let entry = group_data.entry(inst.group.clone()).or_default();
        entry.0.push(po_ms);
        entry.1.push(best_ms);
        pairs.push(Pair {
            label: inst.label.clone(),
            to: to_runs.into_iter().next().expect("at least one strategy"),
            po,
        });
    }

    let medians = group_data
        .into_iter()
        .map(|(g, (po, to))| (g, median(po), median(to)))
        .collect();
    SuiteResult {
        name: name.to_string(),
        rows,
        pairs,
        medians,
        telemetry,
    }
}

/// Fig. 2: the search tree of the recursive Q-DLL on the paper's running
/// example (1).
pub fn fig2() -> String {
    let qbf = qbf_core::samples::paper_example();
    let cfg = RecursiveConfig {
        trace: true,
        pure_literals: false,
        ..RecursiveConfig::default()
    };
    let out = recursive::solve(&qbf, &cfg);
    let mut s = String::new();
    s.push_str(&format!("QBF (1): {qbf}\n"));
    s.push_str(&format!(
        "value: {:?}  (the paper's Fig. 2 refutes it)\n\n",
        out.value
    ));
    s.push_str(&out.trace.expect("tracing enabled").render());
    s
}

/// One Fig. 6 data point: a model probed at increasing lengths.
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    /// Model name.
    pub model: String,
    /// BFS ground-truth diameter (if computed).
    pub true_diameter: Option<u32>,
    /// Per-n probe costs: (n, TO ms, PO ms, to timeout, po timeout).
    pub points: Vec<(u32, f64, f64, bool, bool)>,
    /// Diameter found by each solver within the budget.
    pub to_diameter: Option<u32>,
    /// Diameter found by the PO solver.
    pub po_diameter: Option<u32>,
    /// Full per-probe (TO, PO) measurements (labelled `model@nN`) — the
    /// source for the Table I row, Fig. 5 scatter and telemetry records.
    pub pairs: Vec<Pair>,
}

/// Runs the DIA experiment for one model: probes φ0, φ1, … with both
/// solvers (Fig. 5 pairs, Fig. 6 curves).
pub fn dia_curve(model: &SymbolicModel, budget: u64, max_n: u32, with_bfs: bool) -> ScalingCurve {
    let po_run = compute_diameter(
        model,
        DiameterForm::Tree,
        &suites::po_config(budget),
        max_n,
    );
    let to_run = compute_diameter(
        model,
        DiameterForm::Prenex,
        &suites::to_config(budget),
        max_n,
    );
    let true_diameter = if with_bfs && model.bits() <= 16 {
        explore(model).map(|e| e.eccentricity)
    } else {
        None
    };
    if let (Some(a), Some(b)) = (po_run.diameter, to_run.diameter) {
        assert_eq!(a, b, "TO/PO diameters disagree on {}", model.name());
    }
    if let (Some(d), Some(t)) = (po_run.diameter, true_diameter) {
        assert_eq!(d, t, "QBF diameter disagrees with BFS on {}", model.name());
    }
    let mut points = Vec::new();
    let mut pairs = Vec::new();
    // A probe missing on one side (the other solver stopped probing
    // earlier) counts as a budget exhaustion with empty statistics.
    let absent = || Measurement {
        value: None,
        stats: qbf_core::solver::Stats::default(),
        time: Duration::ZERO,
    };
    let present = |p: &qbf_models::Probe| Measurement {
        value: p.outcome.value(),
        stats: p.outcome.stats,
        time: p.time,
    };
    let n_points = po_run.probes.len().max(to_run.probes.len());
    for i in 0..n_points {
        let po = po_run.probes.get(i);
        let to = to_run.probes.get(i);
        let n = po.map(|p| p.n).or(to.map(|p| p.n)).expect("some probe");
        points.push((
            n,
            to.map(|p| p.time.as_secs_f64() * 1e3).unwrap_or(f64::NAN),
            po.map(|p| p.time.as_secs_f64() * 1e3).unwrap_or(f64::NAN),
            to.map(|p| p.outcome.value().is_none()).unwrap_or(true),
            po.map(|p| p.outcome.value().is_none()).unwrap_or(true),
        ));
        pairs.push(Pair {
            label: format!("{}@n{}", model.name(), n),
            to: to.map(present).unwrap_or_else(absent),
            po: po.map(present).unwrap_or_else(absent),
        });
    }
    ScalingCurve {
        model: model.name().to_string(),
        true_diameter,
        points,
        to_diameter: to_run.diameter,
        po_diameter: po_run.diameter,
        pairs,
    }
}

/// The DIA suite as Table I row + Fig. 5 pairs: each (model, n) probe is
/// one instance.
pub fn dia_suite_result(scale: Scale) -> (SuiteResult, Vec<ScalingCurve>) {
    dia_suite_result_jobs(scale, 1)
}

/// [`dia_suite_result`] with the models fanned out across `jobs` worker
/// threads; curves and telemetry are aggregated in model order.
pub fn dia_suite_result_jobs(scale: Scale, jobs: usize) -> (SuiteResult, Vec<ScalingCurve>) {
    let budget = scale.dia_budget();
    let max_n = match scale {
        Scale::Small => 10,
        Scale::Paper => 40,
    };
    let mut rows = vec![(Strategy::ExistsUpForallUp.to_string(), TableRow::default())];
    let mut pairs = Vec::new();
    let mut telemetry = Vec::new();
    let mut curves = Vec::new();
    // `SymbolicModel` holds non-`Send` transition closures, so each worker
    // rebuilds its model from the (cheap, deterministic) suite definition
    // instead of sharing one across threads.
    let indices: Vec<usize> = (0..suites::dia_models(scale).len()).collect();
    let measured = parallel_map(&indices, jobs, |&i| {
        let model = suites::dia_models(scale).swap_remove(i);
        dia_curve(&model, budget, max_n, scale == Scale::Small)
    });
    for curve in measured {
        for pair in &curve.pairs {
            rows[0].1.add(&pair.to, &pair.po, scale.tie());
            telemetry.push(TelemetryRecord::new(
                "DIA",
                &pair.label,
                &curve.model,
                "po",
                &pair.po,
            ));
            telemetry.push(TelemetryRecord::new(
                "DIA",
                &pair.label,
                &curve.model,
                &format!("to:{}", rows[0].0),
                &pair.to,
            ));
            pairs.push(pair.clone());
        }
        curves.push(curve);
    }
    (
        SuiteResult {
            name: "DIA".to_string(),
            rows,
            pairs,
            medians: Vec::new(),
            telemetry,
        },
        curves,
    )
}

/// Renders Fig. 6-style curves as text.
pub fn render_curves(curves: &[ScalingCurve]) -> String {
    let mut out = String::new();
    for c in curves {
        out.push_str(&format!(
            "{}  (true d = {:?}, PO found {:?}, TO found {:?})\n",
            c.model, c.true_diameter, c.po_diameter, c.to_diameter
        ));
        out.push_str("   n |      TO ms |      PO ms\n");
        for &(n, to_ms, po_ms, to_t, po_t) in &c.points {
            let fmt = |ms: f64, t: bool| {
                if t {
                    "   timeout".to_string()
                } else {
                    format!("{ms:>10.2}")
                }
            };
            out.push_str(&format!(
                "{n:>4} | {} | {}\n",
                fmt(to_ms, to_t),
                fmt(po_ms, po_t)
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 3 median table.
pub fn render_medians(result: &SuiteResult) -> String {
    let mut out = String::new();
    out.push_str("parameter setting | median PO ms | median best-TO ms | winner\n");
    for (g, po, to) in &result.medians {
        let winner = if po < to { "PO" } else if to < po { "TO*" } else { "=" };
        out.push_str(&format!("{g} | {po:.2} | {to:.2} | {winner}\n"));
    }
    out
}

/// Renders per-solver learning totals for a suite from its telemetry: how
/// many nogoods/goods each configuration learned (and at what assignment
/// cost) to achieve its Table I row.
pub fn render_learned(result: &SuiteResult) -> String {
    let mut agg: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
    for r in &result.telemetry {
        let e = agg.entry(r.solver.as_str()).or_default();
        e.0 += 1;
        e.1 += r.stats.learned_clauses;
        e.2 += r.stats.learned_cubes;
        e.3 += r.stats.assignments();
    }
    let mut out = format!(
        "{}: learning totals per configuration\n{:<24} {:>5} {:>10} {:>10} {:>12}\n",
        result.name, "solver", "runs", "clauses", "cubes", "assignments"
    );
    for (solver, (runs, clauses, cubes, assignments)) in agg {
        out.push_str(&format!(
            "{solver:<24} {runs:>5} {clauses:>10} {cubes:>10} {assignments:>12}\n"
        ));
    }
    out
}

/// Runs the NCF experiment (Table I rows 1–4 + Fig. 3 data).
pub fn ncf_result(scale: Scale) -> SuiteResult {
    ncf_result_jobs(scale, 1)
}

/// [`ncf_result`] on `jobs` worker threads.
pub fn ncf_result_jobs(scale: Scale, jobs: usize) -> SuiteResult {
    run_suite_jobs("NCF", &suites::ncf_suite(scale), scale.budget(), scale.tie(), jobs)
}

/// Runs the FPV experiment (Table I row 5 + Fig. 4 data).
pub fn fpv_result(scale: Scale) -> SuiteResult {
    fpv_result_jobs(scale, 1)
}

/// [`fpv_result`] on `jobs` worker threads.
pub fn fpv_result_jobs(scale: Scale, jobs: usize) -> SuiteResult {
    run_suite_jobs("FPV", &suites::fpv_suite(scale), scale.budget(), scale.tie(), jobs)
}

/// Runs the PROB experiment (Table I row 7 + Fig. 7 data).
pub fn prob_result(scale: Scale) -> SuiteResult {
    prob_result_jobs(scale, 1)
}

/// [`prob_result`] on `jobs` worker threads.
pub fn prob_result_jobs(scale: Scale, jobs: usize) -> SuiteResult {
    run_suite_jobs("PROB", &suites::prob_suite(scale), scale.budget(), scale.tie(), jobs)
}

/// Runs the FIXED experiment (Table I row 8 + Fig. 7 data).
pub fn fixed_result(scale: Scale) -> SuiteResult {
    fixed_result_jobs(scale, 1)
}

/// [`fixed_result`] on `jobs` worker threads.
pub fn fixed_result_jobs(scale: Scale, jobs: usize) -> SuiteResult {
    run_suite_jobs("FIXED", &suites::fixed_suite(scale), scale.budget(), scale.tie(), jobs)
}

/// Ablation: the PO heuristic with and without the §VI tree score
/// (replaced by plain VSIDS ranking on the non-prenex input).
pub fn ablate_score(scale: Scale) -> Vec<(String, TableRow)> {
    use qbf_core::solver::HeuristicKind;
    let instances = suites::ncf_suite(scale);
    let budget = scale.budget();
    let tree_cfg = SolverConfig::partial_order().with_node_limit(budget);
    let flat_cfg = SolverConfig::partial_order()
        .with_node_limit(budget)
        .with_heuristic(HeuristicKind::VsidsLevel);
    let mut row = TableRow::default();
    for inst in &instances {
        let tree = run(&inst.po, &tree_cfg);
        let flat = run(&inst.po, &flat_cfg);
        // columns read: "flat slower / flat faster" than tree score
        row.add(&flat, &tree, scale.tie());
    }
    vec![("level-score vs tree-score on non-prenex".to_string(), row)]
}

/// Ablation: learning on vs off for the PO solver on the DIA suite
/// (isolates the §V learning effect).
pub fn ablate_learning(scale: Scale) -> Vec<(String, TableRow)> {
    let budget = scale.dia_budget();
    let with = suites::po_config(budget);
    let without = SolverConfig {
        learning: false,
        ..suites::po_config(budget)
    };
    let max_n = 8;
    let mut row = TableRow::default();
    for model in suites::dia_models(scale) {
        for n in 0..=max_n {
            let inst = qbf_models::diameter_qbf(&model, n, DiameterForm::Tree);
            let a = run(&inst.qbf, &without);
            let b = run(&inst.qbf, &with);
            row.add(&a, &b, scale.tie());
            if a.value == Some(false) || b.value == Some(false) {
                break;
            }
        }
    }
    vec![("no-learning vs learning (PO, DIA)".to_string(), row)]
}

/// Ablation: miniscoping with vs without single-clause-scope elimination —
/// measured as the PO/TO structure ratio achieved on FIXED instances.
pub fn ablate_miniscope(scale: Scale) -> String {
    let suite = suites::fixed_suite(scale);
    let mut out = String::from("instances passing the 20% structure filter with full miniscoping: ");
    out.push_str(&format!("{}\n", suite.len()));
    out.push_str(
        "(the elimination rule removes single-clause scopes; disabling it\n\
         keeps those variables in the tree — compare eliminated_vars)\n",
    );
    let params = qbf_gen::FixedParams {
        groups: 3,
        depth: 3,
        block_vars: 2,
        clauses_per_group: 10,
        lpc: 3,
    };
    let mut eliminated = 0usize;
    for seed in 0..8 {
        let inst = qbf_gen::fixed(&params, seed);
        if let Ok(m) = qbf_prenex::miniscope(&inst.prenex) {
            eliminated += m.eliminated_vars;
        }
    }
    out.push_str(&format!(
        "variables eliminated across 8 seeds: {eliminated}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_renders_refutation() {
        let s = fig2();
        assert!(s.contains("value: Some(false)"));
        assert!(s.contains("(branch)"));
    }

    #[test]
    fn median_is_robust() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert!(median(vec![]).is_nan());
    }

    #[test]
    fn dia_curve_small_counter() {
        let c = dia_curve(&qbf_models::counter(2), 1_000_000, 10, true);
        assert_eq!(c.true_diameter, Some(3));
        assert_eq!(c.po_diameter, Some(3));
        assert_eq!(c.to_diameter, Some(3));
        assert_eq!(c.points.len(), 4);
        assert_eq!(c.pairs.len(), 4);
        assert!(c.pairs.iter().all(|p| p.label.starts_with("counter<2>@n")));
        let rendered = render_curves(&[c]);
        assert!(rendered.contains("counter<2>"));
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..37).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(parallel_map(&items, 1, |&x| x + 1)[36], 37);
        assert!(parallel_map::<usize, usize, _>(&[], 4, |&x| x).is_empty());
    }

    #[test]
    fn jobs_do_not_change_suite_results() {
        // The parallel harness must aggregate in instance order: the
        // deterministic outputs (rows, stats, BENCH json) are identical
        // for any --jobs N.
        let params = qbf_gen::NcfParams {
            dep: 3,
            var: 1,
            cls_ratio: 2,
            lpc: 2,
        };
        let instances: Vec<SuiteInstance> = (0..5u64)
            .map(|seed| {
                let po = qbf_gen::ncf(&params, seed);
                let to = Strategy::ALL
                    .iter()
                    .map(|&s| (s, qbf_prenex::prenex(&po, s)))
                    .collect();
                SuiteInstance {
                    label: format!("j#{seed}"),
                    group: "j".to_string(),
                    po,
                    to,
                }
            })
            .collect();
        let seq = run_suite_jobs("jobs", &instances, 100_000, Duration::from_millis(5), 1);
        let par = run_suite_jobs("jobs", &instances, 100_000, Duration::from_millis(5), 4);
        assert_eq!(
            crate::telemetry::bench_json(std::slice::from_ref(&seq)),
            crate::telemetry::bench_json(std::slice::from_ref(&par)),
            "BENCH json must be byte-identical across --jobs"
        );
        for (a, b) in seq.pairs.iter().zip(&par.pairs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.po.value, b.po.value);
            assert_eq!(a.po.stats, b.po.stats);
            assert_eq!(a.to.stats, b.to.stats);
        }
        for (a, b) in seq.telemetry.iter().zip(&par.telemetry) {
            assert_eq!((&a.label, &a.solver, a.stats), (&b.label, &b.solver, b.stats));
        }
    }

    #[test]
    fn tiny_suite_run() {
        // A micro NCF suite to exercise run_suite end to end.
        let params = qbf_gen::NcfParams {
            dep: 3,
            var: 1,
            cls_ratio: 2,
            lpc: 2,
        };
        let instances: Vec<SuiteInstance> = (0..3u64)
            .map(|seed| {
                let po = qbf_gen::ncf(&params, seed);
                let to = Strategy::ALL
                    .iter()
                    .map(|&s| (s, qbf_prenex::prenex(&po, s)))
                    .collect();
                SuiteInstance {
                    label: format!("t#{seed}"),
                    group: "t".to_string(),
                    po,
                    to,
                }
            })
            .collect();
        let result = run_suite("micro", &instances, 100_000, Duration::from_millis(5));
        assert_eq!(result.rows.len(), 4);
        assert_eq!(result.pairs.len(), 3);
        assert_eq!(result.medians.len(), 1);
        assert_eq!(result.rows[0].1.total(), 3);
        let rendered = render_medians(&result);
        assert!(rendered.contains("median"));
        // telemetry: one PO + four TO records per instance
        assert_eq!(result.telemetry.len(), 3 * 5);
        assert!(result.telemetry.iter().any(|r| r.solver == "po"));
        assert!(result.telemetry.iter().any(|r| r.solver.starts_with("to:")));
        assert!(result
            .telemetry
            .iter()
            .all(|r| r.suite == "micro" && r.stats.assignments() > 0));
        let learned = render_learned(&result);
        assert!(learned.contains("po"));
        assert!(learned.contains("assignments"));
    }
}
