//! Measurement machinery: solve instances under a budget and compare
//! QUBE(TO)-style vs QUBE(PO)-style runs the way Table I does.

use std::time::{Duration, Instant};

use qbf_core::solver::{Solver, SolverConfig, Stats};
use qbf_core::Qbf;

/// One measured solver run, carrying the **full** search statistics (not
/// just the assignment count) so that the telemetry layer can attribute
/// the cost of a run without re-solving.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `Some(value)` if decided within the budget.
    pub value: Option<bool>,
    /// Full search statistics of the run.
    pub stats: Stats,
    /// Wall-clock time.
    pub time: Duration,
}

impl Measurement {
    /// Whether the run exhausted its budget ("timeout" in the paper's
    /// tables).
    pub fn is_timeout(&self) -> bool {
        self.value.is_none()
    }

    /// Deterministic cost: decisions + propagations + pure fixings.
    pub fn assignments(&self) -> u64 {
        self.stats.assignments()
    }
}

/// Solves one instance under the given configuration, measuring wall time.
pub fn run(qbf: &Qbf, config: &SolverConfig) -> Measurement {
    let start = Instant::now();
    let outcome = Solver::new(qbf, config.clone()).solve();
    Measurement {
        value: outcome.value(),
        stats: outcome.stats,
        time: start.elapsed(),
    }
}

/// The Table I columns for one suite row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableRow {
    /// `>`: TO slower than PO by more than the tie window.
    pub to_slower: usize,
    /// `<`: TO faster than PO by more than the tie window.
    pub to_faster: usize,
    /// `=±1s`: within the tie window (including both-timeout).
    pub ties: usize,
    /// `⊣`: TO times out, PO does not.
    pub to_only_timeout: usize,
    /// `⊢`: PO times out, TO does not.
    pub po_only_timeout: usize,
    /// `⊣⊢`: both time out.
    pub both_timeout: usize,
    /// `>10×`: both solved, TO at least an order of magnitude slower.
    pub to_slower_10x: usize,
    /// `10×<`: both solved, TO at least an order of magnitude faster.
    pub to_faster_10x: usize,
}

impl TableRow {
    /// Total number of compared instances. The `>`, `<` and tie columns
    /// partition the suite (timeout columns are sub-counts, as in the
    /// paper's Table I where 746 + 7 + 5247 = 6000 on the first row).
    pub fn total(&self) -> usize {
        self.to_slower + self.to_faster + self.ties
    }

    /// Accumulates one instance comparison, mirroring the column
    /// definitions of Table I. `tie` is the paper's 1 s window (scaled).
    pub fn add(&mut self, to: &Measurement, po: &Measurement, tie: Duration) {
        match (to.is_timeout(), po.is_timeout()) {
            (true, true) => {
                self.both_timeout += 1;
                self.ties += 1;
            }
            (true, false) => {
                self.to_only_timeout += 1;
                self.to_slower += 1;
            }
            (false, true) => {
                self.po_only_timeout += 1;
                self.to_faster += 1;
            }
            (false, false) => {
                let (t, p) = (to.time, po.time);
                if t > p + tie {
                    self.to_slower += 1;
                } else if p > t + tie {
                    self.to_faster += 1;
                } else {
                    self.ties += 1;
                }
                let (ts, ps) = (t.as_secs_f64().max(1e-6), p.as_secs_f64().max(1e-6));
                if ts >= 10.0 * ps {
                    self.to_slower_10x += 1;
                } else if ps >= 10.0 * ts {
                    self.to_faster_10x += 1;
                }
            }
        }
    }

    /// Deterministic variant of [`TableRow::add`]: compares the
    /// *assignment counts* (the harness's deterministic time proxy)
    /// instead of wall times, with a relative tie window of 10% of the
    /// smaller count (at least 16 assignments). This is what the
    /// machine-readable `BENCH_qbf.json` aggregation uses, so repeated
    /// runs produce byte-identical output.
    pub fn add_by_assignments(&mut self, to: &Measurement, po: &Measurement) {
        match (to.is_timeout(), po.is_timeout()) {
            (true, true) => {
                self.both_timeout += 1;
                self.ties += 1;
            }
            (true, false) => {
                self.to_only_timeout += 1;
                self.to_slower += 1;
            }
            (false, true) => {
                self.po_only_timeout += 1;
                self.to_faster += 1;
            }
            (false, false) => {
                let (t, p) = (to.assignments(), po.assignments());
                let tie = (t.min(p) / 10).max(16);
                if t > p + tie {
                    self.to_slower += 1;
                } else if p > t + tie {
                    self.to_faster += 1;
                } else {
                    self.ties += 1;
                }
                let (ts, ps) = (t.max(1), p.max(1));
                if ts >= 10 * ps {
                    self.to_slower_10x += 1;
                } else if ps >= 10 * ts {
                    self.to_faster_10x += 1;
                }
            }
        }
    }

    /// Renders the row in the paper's column order:
    /// `> < =±tie ⊣ ⊢ ⊣⊢ >10× 10×<`.
    pub fn render(&self) -> String {
        format!(
            "{:>6} {:>6} {:>7} {:>5} {:>5} {:>5} {:>6} {:>6}",
            self.to_slower,
            self.to_faster,
            self.ties,
            self.to_only_timeout,
            self.po_only_timeout,
            self.both_timeout,
            self.to_slower_10x,
            self.to_faster_10x
        )
    }

    /// Column header matching [`TableRow::render`].
    pub fn header() -> &'static str {
        "     >      <   =±tie    -|    |-  -||-   >10x   10x<"
    }
}

/// A paired (TO, PO) result for one instance, used by the scatter plots.
#[derive(Debug, Clone)]
pub struct Pair {
    /// Instance label.
    pub label: String,
    /// The prenex/total-order run.
    pub to: Measurement,
    /// The non-prenex/partial-order run.
    pub po: Measurement,
}

/// Renders pairs as a CSV with times in milliseconds (timeouts as the
/// budget marker `-1`).
pub fn pairs_to_csv(pairs: &[Pair]) -> String {
    let mut out = String::from("instance,to_ms,po_ms,to_assignments,po_assignments,to_timeout,po_timeout\n");
    for p in pairs {
        out.push_str(&format!(
            "{},{:.3},{:.3},{},{},{},{}\n",
            p.label,
            p.to.time.as_secs_f64() * 1e3,
            p.po.time.as_secs_f64() * 1e3,
            p.to.assignments(),
            p.po.assignments(),
            p.to.is_timeout(),
            p.po.is_timeout()
        ));
    }
    out
}

/// A coarse ASCII log-log scatter of TO time (y) vs PO time (x), in the
/// layout of Figs. 3–5/7 (points above the diagonal favour PO).
pub fn ascii_scatter(pairs: &[Pair], width: usize, height: usize) -> String {
    if pairs.is_empty() {
        return String::from("(no data)\n");
    }
    let log = |d: &Measurement| (d.time.as_secs_f64().max(1e-6)).log10();
    let xs: Vec<f64> = pairs.iter().map(|p| log(&p.po)).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| log(&p.to)).collect();
    let min = xs
        .iter()
        .chain(&ys)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = xs
        .iter()
        .chain(&ys)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    // diagonal (`i` picks a column, computed row by row — an iterator over
    // `grid` would index the wrong axis)
    #[allow(clippy::needless_range_loop)]
    for i in 0..width.min(height * 2) {
        let r = height - 1 - (i * height / width).min(height - 1);
        grid[r][i] = '.';
    }
    for (x, y) in xs.iter().zip(&ys) {
        let c = (((x - min) / span) * (width - 1) as f64).round() as usize;
        let r = height - 1 - (((y - min) / span) * (height - 1) as f64).round() as usize;
        grid[r][c.min(width - 1)] = 'o';
    }
    let mut out = String::new();
    out.push_str("TO time (log) ^   [points above diagonal favour PO]\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push_str("> PO time (log)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ms: u64, timeout: bool) -> Measurement {
        Measurement {
            value: if timeout { None } else { Some(true) },
            stats: Stats {
                decisions: 10,
                ..Stats::default()
            },
            time: Duration::from_millis(ms),
        }
    }

    fn ma(assignments: u64, timeout: bool) -> Measurement {
        Measurement {
            value: if timeout { None } else { Some(true) },
            stats: Stats {
                decisions: assignments,
                ..Stats::default()
            },
            time: Duration::from_millis(1),
        }
    }

    #[test]
    fn row_classification() {
        let mut row = TableRow::default();
        let tie = Duration::from_millis(100);
        row.add(&m(500, false), &m(10, false), tie); // TO slower, >10x
        row.add(&m(10, false), &m(500, false), tie); // TO faster, 10x<
        row.add(&m(50, false), &m(20, false), tie); // tie
        row.add(&m(0, true), &m(20, false), tie); // TO timeout
        row.add(&m(20, false), &m(0, true), tie); // PO timeout
        row.add(&m(0, true), &m(0, true), tie); // both
        assert_eq!(row.to_slower, 2);
        assert_eq!(row.to_faster, 2);
        assert_eq!(row.ties, 2);
        assert_eq!(row.to_only_timeout, 1);
        assert_eq!(row.po_only_timeout, 1);
        assert_eq!(row.both_timeout, 1);
        assert_eq!(row.to_slower_10x, 1);
        assert_eq!(row.to_faster_10x, 1);
        assert_eq!(row.total(), 6);
        assert_eq!(
            row.render().split_whitespace().count(),
            TableRow::header().split_whitespace().count()
        );
    }

    #[test]
    fn run_measures() {
        let q = qbf_core::samples::paper_example();
        let meas = run(&q, &qbf_core::solver::SolverConfig::partial_order());
        assert_eq!(meas.value, Some(false));
        assert!(!meas.is_timeout());
        assert!(meas.assignments() > 0);
        assert!(meas.stats.decisions > 0);
    }

    #[test]
    fn row_classification_by_assignments() {
        let mut row = TableRow::default();
        row.add_by_assignments(&ma(1000, false), &ma(50, false)); // TO slower, >10x
        row.add_by_assignments(&ma(50, false), &ma(1000, false)); // TO faster, 10x<
        row.add_by_assignments(&ma(100, false), &ma(95, false)); // tie (within window)
        row.add_by_assignments(&ma(0, true), &ma(50, false)); // TO timeout
        row.add_by_assignments(&ma(50, false), &ma(0, true)); // PO timeout
        row.add_by_assignments(&ma(0, true), &ma(0, true)); // both
        assert_eq!(row.to_slower, 2);
        assert_eq!(row.to_faster, 2);
        assert_eq!(row.ties, 2);
        assert_eq!(row.to_only_timeout, 1);
        assert_eq!(row.po_only_timeout, 1);
        assert_eq!(row.both_timeout, 1);
        assert_eq!(row.to_slower_10x, 1);
        assert_eq!(row.to_faster_10x, 1);
        assert_eq!(row.total(), 6);
    }

    #[test]
    fn csv_and_scatter_render() {
        let pairs = vec![Pair {
            label: "a".into(),
            to: m(100, false),
            po: m(10, false),
        }];
        let csv = pairs_to_csv(&pairs);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("a,100"));
        let plot = ascii_scatter(&pairs, 40, 10);
        assert!(plot.contains('o'));
    }
}
