//! Dependency-free benches (`cargo bench`): one representative
//! configuration per experiment of §VII, for regression tracking. The full
//! regeneration lives in the `repro` binary; these benches pin the relative
//! TO/PO costs on fixed instances.
//!
//! The workspace builds hermetically (no crates.io access), so this is a
//! plain `harness = false` binary timed with `std::time::Instant` instead
//! of criterion: each case is run for a warm-up iteration, then repeated
//! until ~0.4 s has elapsed, reporting the median per-iteration time and
//! the deterministic `assignments()` cost proxy.

use std::time::{Duration, Instant};

use qbf_core::solver::{Solver, SolverConfig};
use qbf_core::Qbf;
use qbf_gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_models::{diameter_qbf, DiameterForm};
use qbf_prenex::{miniscope, prenex, Strategy};

fn solve(qbf: &Qbf, config: &SolverConfig) -> u64 {
    let out = Solver::new(qbf, config.clone().with_node_limit(5_000_000)).solve();
    assert!(out.value().is_some(), "bench instance hit its node limit");
    out.stats.assignments()
}

/// Times `f` repeatedly and prints `group/name: median iter time (n iters)`.
fn bench<F: FnMut() -> u64>(group: &str, name: &str, mut f: F) {
    let assignments = f(); // warm-up + cost proxy
    let budget = Duration::from_millis(400);
    let mut times = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || times.len() < 3 {
        let t = Instant::now();
        std::hint::black_box(f());
        times.push(t.elapsed());
        if times.len() >= 200 {
            break;
        }
    }
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{group:<14} {name:<28} {median:>12.2?}  ({} iters, {assignments} assignments)",
        times.len()
    );
}

/// Table I rows 1–4 / Fig. 3: an NCF instance, PO vs the four strategies.
fn bench_ncf() {
    let params = NcfParams {
        dep: 4,
        var: 3,
        cls_ratio: 2,
        lpc: 3,
    };
    let po = ncf(&params, 7);
    bench("ncf", "po", || solve(&po, &SolverConfig::partial_order()));
    for strategy in Strategy::ALL {
        let to = prenex(&po, strategy);
        bench("ncf", &format!("to/{strategy}"), || {
            solve(&to, &SolverConfig::total_order())
        });
    }
}

/// Table I row 5 / Fig. 4: an FPV instance.
fn bench_fpv() {
    let params = FpvParams {
        config_vars: 4,
        branches: 3,
        branch_depth: 2,
        block_vars: 3,
        clauses_per_branch: 12,
        lpc: 4,
    };
    let po = fpv(&params, 3);
    let to = prenex(&po, Strategy::ExistsUpForallUp);
    bench("fpv", "po", || solve(&po, &SolverConfig::partial_order()));
    bench("fpv", "to", || solve(&to, &SolverConfig::total_order()));
}

/// Table I row 6 / Figs. 5–6: a diameter probe of counter<3>.
fn bench_dia() {
    let model = qbf_models::counter(3);
    let tree = diameter_qbf(&model, 5, DiameterForm::Tree);
    let flat = diameter_qbf(&model, 5, DiameterForm::Prenex);
    bench("dia_c3_phi5", "po_tree", || {
        solve(&tree.qbf, &SolverConfig::partial_order())
    });
    bench("dia_c3_phi5", "to_prenex", || {
        solve(&flat.qbf, &SolverConfig::total_order())
    });
}

/// Table I rows 7–8 / Fig. 7: miniscoped PROB and FIXED instances.
fn bench_miniscoped() {
    let flat = fixed(
        &FixedParams {
            groups: 3,
            depth: 3,
            block_vars: 2,
            clauses_per_group: 10,
            lpc: 3,
        },
        5,
    )
    .prenex;
    let mini = miniscope(&flat).expect("prenex input").qbf;
    bench("qbfeval", "fixed_to", || {
        solve(&flat, &SolverConfig::total_order())
    });
    bench("qbfeval", "fixed_po_miniscoped", || {
        solve(&mini, &SolverConfig::partial_order())
    });
    let prob = rand_qbf(&RandParams::three_block(5, 4, 5, 35, 3), 2);
    bench("qbfeval", "prob_to", || {
        solve(&prob, &SolverConfig::total_order())
    });
}

/// Observability overhead: the same NCF instance solved with the default
/// `NoopObserver` (must stay indistinguishable from the engine without
/// the layer — the observer calls monomorphize to nothing) vs a profiler
/// and the full observer fan-out (pins the cost of full tracing).
fn bench_observe() {
    use qbf_core::observe::{JsonlTrace, MultiObserver, Profiler, Progress, TreeTrace};

    // A non-trivial instance (~7.5k assignments, so per-event costs
    // dominate the solver-construction noise): a counter<3> diameter probe.
    let po = diameter_qbf(&qbf_models::counter(3), 5, DiameterForm::Tree).qbf;
    let config = || SolverConfig::partial_order().with_node_limit(5_000_000);
    bench("observe", "noop", || solve(&po, &SolverConfig::partial_order()));
    bench("observe", "profiler", || {
        let mut profiler = Profiler::new(&po);
        let out = Solver::with_observer(&po, config(), &mut profiler).solve();
        assert_eq!(profiler.decisions(), out.stats.decisions);
        out.stats.assignments()
    });
    bench("observe", "full_fanout", || {
        let mut tree = TreeTrace::new();
        let mut jsonl = JsonlTrace::new();
        let mut profiler = Profiler::new(&po);
        let mut progress = Progress::new(u64::MAX);
        let mut multi = MultiObserver::new();
        multi.push(&mut tree);
        multi.push(&mut jsonl);
        multi.push(&mut profiler);
        multi.push(&mut progress);
        let out = Solver::with_observer(&po, config(), multi).solve();
        std::hint::black_box((tree.as_str().len(), jsonl.finish().len()));
        out.stats.assignments()
    });
}

/// Preprocessing costs: the four prenexing strategies and miniscoping.
fn bench_transforms() {
    let params = NcfParams {
        dep: 6,
        var: 4,
        cls_ratio: 3,
        lpc: 4,
    };
    let q = ncf(&params, 1);
    for strategy in Strategy::ALL {
        bench("transforms", &format!("prenex/{strategy}"), || {
            std::hint::black_box(prenex(&q, strategy));
            0
        });
    }
    let flat = prenex(&q, Strategy::ExistsUpForallUp);
    bench("transforms", "miniscope", || {
        std::hint::black_box(miniscope(&flat)).is_ok() as u64
    });
}

fn main() {
    // `cargo bench` passes `--bench`; `cargo test --benches` passes
    // `--test-threads` etc. and expects the harness not to actually run.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    println!(
        "{:<14} {:<28} {:>12}  (iters, deterministic cost)",
        "group", "case", "median"
    );
    bench_ncf();
    bench_fpv();
    bench_dia();
    bench_miniscoped();
    bench_observe();
    bench_transforms();
}
