//! Criterion benches: one representative configuration per experiment of
//! §VII, for regression tracking. The full regeneration lives in the
//! `repro` binary; these benches pin the relative TO/PO costs on fixed
//! instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qbf_core::solver::{Solver, SolverConfig};
use qbf_core::Qbf;
use qbf_gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_models::{diameter_qbf, DiameterForm};
use qbf_prenex::{miniscope, prenex, Strategy};

fn solve(qbf: &Qbf, config: &SolverConfig) -> Option<bool> {
    Solver::new(qbf, config.clone().with_node_limit(5_000_000))
        .solve()
        .value()
}

/// Table I rows 1–4 / Fig. 3: an NCF instance, PO vs the four strategies.
fn bench_ncf(c: &mut Criterion) {
    let params = NcfParams {
        dep: 4,
        var: 3,
        cls_ratio: 2,
        lpc: 3,
    };
    let po = ncf(&params, 7);
    let mut group = c.benchmark_group("ncf");
    group.bench_function("po", |b| {
        b.iter(|| solve(&po, &SolverConfig::partial_order()))
    });
    for strategy in Strategy::ALL {
        let to = prenex(&po, strategy);
        group.bench_with_input(
            BenchmarkId::new("to", strategy.to_string()),
            &to,
            |b, to| b.iter(|| solve(to, &SolverConfig::total_order())),
        );
    }
    group.finish();
}

/// Table I row 5 / Fig. 4: an FPV instance.
fn bench_fpv(c: &mut Criterion) {
    let params = FpvParams {
        config_vars: 4,
        branches: 3,
        branch_depth: 2,
        block_vars: 3,
        clauses_per_branch: 12,
        lpc: 4,
    };
    let po = fpv(&params, 3);
    let to = prenex(&po, Strategy::ExistsUpForallUp);
    let mut group = c.benchmark_group("fpv");
    group.bench_function("po", |b| {
        b.iter(|| solve(&po, &SolverConfig::partial_order()))
    });
    group.bench_function("to", |b| {
        b.iter(|| solve(&to, &SolverConfig::total_order()))
    });
    group.finish();
}

/// Table I row 6 / Figs. 5–6: a diameter probe of counter<3>.
fn bench_dia(c: &mut Criterion) {
    let model = qbf_models::counter(3);
    let tree = diameter_qbf(&model, 5, DiameterForm::Tree);
    let flat = diameter_qbf(&model, 5, DiameterForm::Prenex);
    let mut group = c.benchmark_group("dia_counter3_phi5");
    group.bench_function("po_tree", |b| {
        b.iter(|| solve(&tree.qbf, &SolverConfig::partial_order()))
    });
    group.bench_function("to_prenex", |b| {
        b.iter(|| solve(&flat.qbf, &SolverConfig::total_order()))
    });
    group.finish();
}

/// Table I rows 7–8 / Fig. 7: miniscoped PROB and FIXED instances.
fn bench_miniscoped(c: &mut Criterion) {
    let mut group = c.benchmark_group("qbfeval");
    let flat = fixed(
        &FixedParams {
            groups: 3,
            depth: 3,
            block_vars: 2,
            clauses_per_group: 10,
            lpc: 3,
        },
        5,
    )
    .prenex;
    let mini = miniscope(&flat).expect("prenex input").qbf;
    group.bench_function("fixed_to", |b| {
        b.iter(|| solve(&flat, &SolverConfig::total_order()))
    });
    group.bench_function("fixed_po_miniscoped", |b| {
        b.iter(|| solve(&mini, &SolverConfig::partial_order()))
    });
    let prob = rand_qbf(&RandParams::three_block(5, 4, 5, 35, 3), 2);
    group.bench_function("prob_to", |b| {
        b.iter(|| solve(&prob, &SolverConfig::total_order()))
    });
    group.finish();
}

/// Preprocessing costs: the four prenexing strategies and miniscoping.
fn bench_transforms(c: &mut Criterion) {
    let params = NcfParams {
        dep: 6,
        var: 4,
        cls_ratio: 3,
        lpc: 4,
    };
    let q = ncf(&params, 1);
    let mut group = c.benchmark_group("transforms");
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("prenex", strategy.to_string()),
            &strategy,
            |b, &s| b.iter(|| prenex(&q, s)),
        );
    }
    let flat = prenex(&q, Strategy::ExistsUpForallUp);
    group.bench_function("miniscope", |b| b.iter(|| miniscope(&flat)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ncf, bench_fpv, bench_dia, bench_miniscoped, bench_transforms
}
criterion_main!(benches);
