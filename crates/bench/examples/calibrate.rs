use qbf_bench::runner::run;
use qbf_bench::suites::{po_config, to_config};
use qbf_gen::*;
use qbf_prenex::{miniscope, po_to_ratio};

fn main() {
    for (e1,a1,e2) in [(12u32,9u32,12u32), (16,10,16)] {
        for mult in [2u32, 3, 4, 5] {
            let m = mult * (e1 + e2);
            let p = RandParams::three_block(e1, a1, e2, m, 5).with_locality(3, 10);
            let mut line = format!("({e1},{a1},{e2}) m={m}:");
            let mut pass = 0;
            for seed in 0..4u64 {
                let q = rand_qbf(&p, seed);
                let Ok(mini) = miniscope(&q) else { continue };
                let r = po_to_ratio(&mini.qbf, &q);
                if r <= 20.0 { line += " [filt]"; continue; }
                pass += 1;
                let a = run(&q, &to_config(500_000));
                let b = run(&mini.qbf, &po_config(500_000));
                line += &format!(" [{}|to {:.1}ms {}a|po {:.1}ms {}a]",
                    a.value.map(|v| if v {"T"} else {"F"}).unwrap_or("?"),
                    a.time.as_secs_f64()*1e3, a.assignments(),
                    b.time.as_secs_f64()*1e3, b.assignments());
            }
            println!("{line}  pass={pass}");
        }
    }
}
