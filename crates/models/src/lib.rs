//! # qbf-models
//!
//! Symbolic transition-system models and the diameter-calculation QBFs of
//! §VII-C of *“Quantifier structure in search based procedures for QBFs”*.
//!
//! This crate substitutes for the NuSMV distribution the paper draws its
//! DIA suite from: it provides parametric [`counter`], [`ring`],
//! [`semaphore`] and [`dme`] models, an explicit-state BFS oracle
//! ([`explore`]) validating every diameter, and the φn encoding of
//! Eq. (14)/(15)/(16) in both non-prenex ([`DiameterForm::Tree`]) and
//! prenex ([`DiameterForm::Prenex`]) form.
//!
//! # Examples
//!
//! Computing the diameter of a 2-bit counter with the structure-aware
//! solver and cross-checking it against brute-force reachability:
//!
//! ```
//! use qbf_core::solver::SolverConfig;
//! use qbf_models::{compute_diameter, counter, explore, DiameterForm};
//!
//! let model = counter(2);
//! let bfs = explore(&model).expect("counter has an initial state");
//! let run = compute_diameter(&model, DiameterForm::Tree,
//!                            &SolverConfig::partial_order(), 10);
//! assert_eq!(run.diameter, Some(bfs.eccentricity));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod diameter;
mod explicit;
mod incremental;
mod model;

pub use diameter::{
    compute_diameter, diameter_qbf, DiameterForm, DiameterInstance, DiameterRun, Probe,
};
pub use incremental::{
    diameter_sequence, run_diameter_incremental, DiaIncrementalRun, DiaProbe, DiaProbeResult,
    DiaSequence,
};
pub use explicit::{explore, is_deadlock_free, Exploration};
pub use model::{counter, dme, gray, ring, semaphore, vector_equiv, SymbolicModel};
