//! Explicit-state reachability: the ground-truth oracle for diameters.
//!
//! The paper computes diameters with QBF solvers; we additionally compute
//! them by brute-force BFS over the (at most `2^bits`) states, both to
//! validate the QBF encoding end-to-end and to substitute for NuSMV as the
//! source of truth. Only practical for small bit widths.

// States are raw integer codes throughout; indexing distance/reachability
// tables by the code is the clearest formulation.
#![allow(clippy::needless_range_loop)]

use qbf_core::Var;
use qbf_formula::Formula;

use crate::model::SymbolicModel;

/// Result of an explicit-state exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Number of reachable states (including initial ones).
    pub reachable: usize,
    /// The reachable eccentricity: the largest BFS distance from the set of
    /// initial states to any reachable state. This is the diameter `d` the
    /// paper's φn probes: φn is true exactly when `n < d`.
    pub eccentricity: u32,
    /// Number of initial states.
    pub initial: usize,
}

/// Explores the model by BFS from all initial states simultaneously.
///
/// Returns `None` when the model has no initial state.
///
/// # Panics
///
/// Panics if `model.bits() > 24` (the state space would not fit in memory).
///
/// # Examples
///
/// ```
/// let m = qbf_models::counter(3);
/// let e = qbf_models::explore(&m).expect("counter has an initial state");
/// assert_eq!(e.reachable, 8);
/// assert_eq!(e.eccentricity, 7); // 2^3 - 1
/// ```
pub fn explore(model: &SymbolicModel) -> Option<Exploration> {
    let bits = model.bits();
    assert!(bits <= 24, "explicit exploration limited to 24 state bits");
    let n_states = 1usize << bits;
    let s_vars: Vec<Var> = (0..bits).map(Var::new).collect();
    let t_vars: Vec<Var> = (bits..2 * bits).map(Var::new).collect();
    let init = model.init(&s_vars);
    let trans = model.trans(&s_vars, &t_vars);

    let decode = |state: usize, out: &mut [bool], offset: usize| {
        for (i, slot) in out[offset..offset + bits].iter_mut().enumerate() {
            *slot = state >> i & 1 == 1;
        }
    };

    let mut env = vec![false; 2 * bits];
    let mut dist: Vec<Option<u32>> = vec![None; n_states];
    let mut queue = std::collections::VecDeque::new();
    let mut initial = 0usize;
    for s in 0..n_states {
        decode(s, &mut env, 0);
        if init.eval(&env[..bits]) {
            dist[s] = Some(0);
            queue.push_back(s);
            initial += 1;
        }
    }
    if initial == 0 {
        return None;
    }
    let mut eccentricity = 0u32;
    let mut reachable = initial;
    while let Some(s) = queue.pop_front() {
        let d = dist[s].expect("queued states have distances");
        decode(s, &mut env, 0);
        for t in 0..n_states {
            if dist[t].is_some() {
                continue;
            }
            decode(t, &mut env, bits);
            if trans.eval(&env) {
                dist[t] = Some(d + 1);
                eccentricity = eccentricity.max(d + 1);
                reachable += 1;
                queue.push_back(t);
            }
        }
    }
    Some(Exploration {
        reachable,
        eccentricity,
        initial,
    })
}

/// Checks that every reachable state has at least one successor
/// (deadlock-freedom), a prerequisite of the Eq. (14) diameter encoding.
pub fn is_deadlock_free(model: &SymbolicModel) -> bool {
    let bits = model.bits();
    assert!(bits <= 24, "explicit exploration limited to 24 state bits");
    let n_states = 1usize << bits;
    let s_vars: Vec<Var> = (0..bits).map(Var::new).collect();
    let t_vars: Vec<Var> = (bits..2 * bits).map(Var::new).collect();
    let trans = model.trans(&s_vars, &t_vars);
    let reach = reachable_states(model, &s_vars, &t_vars, &trans);
    let mut env = vec![false; 2 * bits];
    'outer: for s in 0..n_states {
        if !reach[s] {
            continue;
        }
        for (i, slot) in env[..bits].iter_mut().enumerate() {
            *slot = s >> i & 1 == 1;
        }
        for t in 0..n_states {
            for (i, slot) in env[bits..].iter_mut().enumerate() {
                *slot = t >> i & 1 == 1;
            }
            if trans.eval(&env) {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

fn reachable_states(
    model: &SymbolicModel,
    s_vars: &[Var],
    _t_vars: &[Var],
    trans: &Formula,
) -> Vec<bool> {
    let bits = model.bits();
    let n_states = 1usize << bits;
    let init = model.init(s_vars);
    let mut env = vec![false; 2 * bits];
    let mut reach = vec![false; n_states];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n_states {
        for (i, slot) in env[..bits].iter_mut().enumerate() {
            *slot = s >> i & 1 == 1;
        }
        if init.eval(&env[..bits]) {
            reach[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for (i, slot) in env[..bits].iter_mut().enumerate() {
            *slot = s >> i & 1 == 1;
        }
        for t in 0..n_states {
            if reach[t] {
                continue;
            }
            for (i, slot) in env[bits..].iter_mut().enumerate() {
                *slot = t >> i & 1 == 1;
            }
            if trans.eval(&env) {
                reach[t] = true;
                queue.push_back(t);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;

    #[test]
    fn counter_eccentricity_is_exponential() {
        for n in 1..=5 {
            let e = explore(&model::counter(n)).unwrap();
            assert_eq!(e.reachable, 1 << n);
            assert_eq!(e.eccentricity, (1u32 << n) - 1, "counter<{n}>");
            assert_eq!(e.initial, 1);
        }
    }

    #[test]
    fn semaphore_eccentricity_is_constant() {
        let diameters: Vec<u32> = (1..=4)
            .map(|n| explore(&model::semaphore(n)).unwrap().eccentricity)
            .collect();
        // Constant from some small N on (the Fig. 6 right property).
        assert_eq!(diameters[1], diameters[2]);
        assert_eq!(diameters[2], diameters[3]);
        assert!(diameters[3] >= 2);
    }

    #[test]
    fn ring_explores() {
        let e = explore(&model::ring(4)).unwrap();
        assert!(e.reachable > 1);
        assert!(e.eccentricity >= 1);
    }

    #[test]
    fn gray_eccentricity_is_exponential() {
        for n in 1..=4 {
            let e = explore(&model::gray(n)).unwrap();
            assert_eq!(e.reachable, 1 << n, "gray<{n}> reachable");
            assert_eq!(e.eccentricity, (1u32 << n) - 1, "gray<{n}> ecc");
        }
    }

    #[test]
    fn dme_eccentricity_grows_with_cells() {
        let e3 = explore(&model::dme(3)).unwrap();
        let e5 = explore(&model::dme(5)).unwrap();
        assert!(e5.eccentricity > e3.eccentricity);
    }

    #[test]
    fn all_models_deadlock_free() {
        assert!(is_deadlock_free(&model::counter(3)));
        assert!(is_deadlock_free(&model::gray(3)));
        assert!(is_deadlock_free(&model::ring(3)));
        assert!(is_deadlock_free(&model::semaphore(2)));
        assert!(is_deadlock_free(&model::dme(3)));
    }
}
