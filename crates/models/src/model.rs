//! Symbolic transition systems: the NuSMV-model substrate of §VII-C.
//!
//! A [`SymbolicModel`] describes a finite-state machine by two formula
//! builders: `I(s)` over a vector of state variables and `T(s, s′)` over
//! two vectors. The builders are instantiated on fresh variable vectors by
//! the BMC-style unrolling of the diameter encoding, playing the role of
//! the `I`/`T` extraction the paper performs with NuSMV's BMC tool.
//!
//! The bundled models mirror the paper's selection: a binary counter
//! (`counter<N>`), a chain/ring of inverters (`ring<N>`), a semaphore-based
//! mutual exclusion protocol (`semaphore<N>`) and a token-ring distributed
//! mutual exclusion protocol (`dme<N>`). All are deadlock-free (every state
//! has a successor), which the diameter encoding of Eq. (14) requires.

use std::fmt;
use std::rc::Rc;

use qbf_core::Var;
use qbf_formula::Formula;

type InitFn = dyn Fn(&[Var]) -> Formula;
type TransFn = dyn Fn(&[Var], &[Var]) -> Formula;

/// A finite-state model given symbolically by `I(s)` and `T(s, s′)`.
#[derive(Clone)]
pub struct SymbolicModel {
    name: String,
    bits: usize,
    init: Rc<InitFn>,
    trans: Rc<TransFn>,
}

impl fmt::Debug for SymbolicModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolicModel")
            .field("name", &self.name)
            .field("bits", &self.bits)
            .finish_non_exhaustive()
    }
}

impl SymbolicModel {
    /// Builds a model from its name, state width and formula builders.
    pub fn new(
        name: impl Into<String>,
        bits: usize,
        init: impl Fn(&[Var]) -> Formula + 'static,
        trans: impl Fn(&[Var], &[Var]) -> Formula + 'static,
    ) -> Self {
        SymbolicModel {
            name: name.into(),
            bits,
            init: Rc::new(init),
            trans: Rc::new(trans),
        }
    }

    /// The model's name (e.g. `counter<4>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of boolean state variables.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Instantiates `I` on a state vector.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != self.bits()`.
    pub fn init(&self, s: &[Var]) -> Formula {
        assert_eq!(s.len(), self.bits, "state vector width mismatch");
        (self.init)(s)
    }

    /// Instantiates `T` on a pair of state vectors.
    ///
    /// # Panics
    ///
    /// Panics if a vector width differs from `self.bits()`.
    pub fn trans(&self, s: &[Var], s_next: &[Var]) -> Formula {
        assert_eq!(s.len(), self.bits, "state vector width mismatch");
        assert_eq!(s_next.len(), self.bits, "state vector width mismatch");
        (self.trans)(s, s_next)
    }

    /// The self-looped transition relation `T′` of Eq. (15):
    /// `T′(s, s′) = (I(s) ∧ I(s′)) ∨ T(s, s′)`.
    pub fn trans_prime(&self, s: &[Var], s_next: &[Var]) -> Formula {
        self.init(s).and(self.init(s_next)).or(self.trans(s, s_next))
    }
}

/// `v ↔ w` for vectors, i.e. the `xn+1 ≡ yn` of Eq. (14).
pub fn vector_equiv(v: &[Var], w: &[Var]) -> Formula {
    assert_eq!(v.len(), w.len(), "vector width mismatch");
    Formula::and_all(
        v.iter()
            .zip(w)
            .map(|(&a, &b)| Formula::var(a).iff(Formula::var(b))),
    )
}

/// `counter<N>`: an N-bit binary counter starting at 0 and incrementing
/// with wrap-around. Its reachable eccentricity is `2^N − 1` (every state
/// reachable, the all-ones state last).
pub fn counter(n: usize) -> SymbolicModel {
    assert!(n >= 1, "counter needs at least one bit");
    SymbolicModel::new(
        format!("counter<{n}>"),
        n,
        |s| Formula::and_all(s.iter().map(|&v| Formula::var(v).not())),
        |s, t| {
            // t = s + 1 (mod 2^n): bit i flips iff all lower bits are 1.
            //
            // The xor is expanded over raw literals (instead of
            // `Formula::xor` with a composite carry) so that every
            // clausification auxiliary occurs in a single polarity: that
            // keeps the monotone-literal cascade of the solver able to
            // satisfy the definitional clauses of irrelevant subformulas,
            // which is essential for good learning on the diameter QBFs.
            let mut conjuncts = Vec::new();
            for i in 0..s.len() {
                let carry = Formula::and_all((0..i).map(|j| Formula::var(s[j])));
                let not_carry = Formula::or_all((0..i).map(|j| Formula::var(s[j]).not()));
                let si = Formula::var(s[i]);
                let ti = Formula::var(t[i]);
                // t_i ↔ (s_i ⊕ carry), expanded:
                let flip = si.clone().and(not_carry.clone()).or(si.clone().not().and(carry.clone()));
                let keep = si.clone().and(carry).or(si.not().and(not_carry));
                conjuncts.push(ti.clone().not().or(flip));
                conjuncts.push(ti.or(keep));
            }
            Formula::and_all(conjuncts)
        },
    )
}

/// `ring<N>`: a ring of N inverters with asynchronous (interleaved)
/// updates: at each step exactly one gate recomputes its output as the
/// negation of its predecessor's, the others hold. Deadlock-free (a gate
/// whose output already equals the negated input yields a stutter step).
pub fn ring(n: usize) -> SymbolicModel {
    assert!(n >= 2, "ring needs at least two gates");
    SymbolicModel::new(
        format!("ring<{n}>"),
        n,
        |s| Formula::and_all(s.iter().map(|&v| Formula::var(v).not())),
        |s, t| {
            Formula::or_all((0..s.len()).map(|i| {
                let prev = s[(i + s.len() - 1) % s.len()];
                let update = Formula::var(t[i]).iff(Formula::var(prev).not());
                let holds = Formula::and_all(
                    (0..s.len())
                        .filter(|&j| j != i)
                        .map(|j| Formula::var(t[j]).iff(Formula::var(s[j]))),
                );
                update.and(holds)
            }))
        },
    )
}

/// Process phases of the semaphore protocol, two bits per process.
const IDLE: (bool, bool) = (false, false);
const TRYING: (bool, bool) = (false, true);
const CRITICAL: (bool, bool) = (true, true);
const EXITING: (bool, bool) = (true, false);

fn phase(s: &[Var], p: usize, (b1, b0): (bool, bool)) -> Formula {
    let hi = Formula::lit(s[2 * p], b1);
    let lo = Formula::lit(s[2 * p + 1], b0);
    hi.and(lo)
}

/// `semaphore<N>`: N processes cycling idle → trying → critical → exiting
/// → idle under a mutual-exclusion semaphore, composed synchronously with
/// critical-section handover. The reachable eccentricity is the constant 3
/// for every N (reaching an `exiting` process takes three steps), which is
/// exactly the scaling property Fig. 6 (right) exploits: instance size
/// grows with N while the diameter stays fixed.
pub fn semaphore(n: usize) -> SymbolicModel {
    assert!(n >= 1, "semaphore needs at least one process");
    SymbolicModel::new(
        format!("semaphore<{n}>"),
        2 * n,
        move |s| Formula::and_all((0..n).map(|p| phase(s, p, IDLE))),
        move |s, t| {
            let mut conj = Vec::new();
            // Per-process local moves.
            for p in 0..n {
                let stay_or = |from: (bool, bool), to: (bool, bool)| {
                    phase(s, p, from)
                        .implies(phase(t, p, from).or(phase(t, p, to)))
                };
                conj.push(stay_or(IDLE, TRYING));
                conj.push(stay_or(TRYING, CRITICAL));
                conj.push(stay_or(CRITICAL, EXITING));
                // Exiting completes immediately (forced), so two processes
                // can never be exiting at once and the eccentricity stays
                // at the constant 3 for every N (the paper's d = 3).
                conj.push(phase(s, p, EXITING).implies(phase(t, p, IDLE)));
            }
            // Mutual exclusion in the successor state.
            for p in 0..n {
                for q in (p + 1)..n {
                    conj.push(
                        phase(t, p, CRITICAL)
                            .and(phase(t, q, CRITICAL))
                            .not(),
                    );
                }
            }
            // Entering the critical section requires the semaphore: every
            // currently-critical process must be leaving (handover).
            for p in 0..n {
                let enters = phase(t, p, CRITICAL).and(phase(s, p, CRITICAL).not());
                for q in 0..n {
                    if q != p {
                        conj.push(
                            enters
                                .clone()
                                .implies(phase(s, q, CRITICAL).implies(phase(t, q, EXITING))),
                        );
                    }
                }
            }
            Formula::and_all(conj)
        },
    )
}

/// `gray<N>`: an N-bit Gray-code counter — at every step exactly one bit
/// flips, following the reflected-Gray successor rule. Like `counter<N>`
/// its reachable eccentricity is `2^N − 1`, but each transition touches a
/// single bit, giving the diameter QBFs a different clause shape.
pub fn gray(n: usize) -> SymbolicModel {
    assert!(n >= 1, "gray needs at least one bit");
    SymbolicModel::new(
        format!("gray<{n}>"),
        n,
        |s| Formula::and_all(s.iter().map(|&v| Formula::var(v).not())),
        |s, t| {
            // Reflected Gray successor: if parity(s) is even, flip bit 0;
            // otherwise flip the bit above the lowest set bit (with
            // wrap-around from the all-but-msb-zero code).
            let parity_even = |vars: &[Var], upto: usize| -> Vec<Formula> {
                // XOR of bits expressed as a disjunction over even subsets
                // would blow up; instead build parity incrementally as a
                // formula pair (even, odd) over raw literals.
                let mut even = Formula::constant(true);
                let mut odd = Formula::constant(false);
                for &v in &vars[..upto] {
                    let b = Formula::var(v);
                    let new_even = even
                        .clone()
                        .and(b.clone().not())
                        .or(odd.clone().and(b.clone()));
                    let new_odd = odd.and(b.clone().not()).or(even.and(b));
                    even = new_even;
                    odd = new_odd;
                }
                vec![even, odd]
            };
            let n = s.len();
            let flip_bit = |k: usize| -> Formula {
                Formula::and_all((0..n).map(|j| {
                    let sv = Formula::var(s[j]);
                    let tv = Formula::var(t[j]);
                    if j == k {
                        tv.iff(sv.not())
                    } else {
                        tv.iff(sv)
                    }
                }))
            };
            let par = parity_even(s, n);
            let (even, odd) = (par[0].clone(), par[1].clone());
            let mut cases = vec![even.and(flip_bit(0))];
            // odd parity: flip the bit above the lowest set bit
            for k in 0..n {
                let lowest_set_is_k = Formula::and_all(
                    (0..k)
                        .map(|j| Formula::var(s[j]).not())
                        .chain(std::iter::once(Formula::var(s[k]))),
                );
                let target = if k + 1 < n { k + 1 } else { k }; // wrap: flip msb again
                cases.push(odd.clone().and(lowest_set_is_k).and(flip_bit(target)));
            }
            Formula::or_all(cases)
        },
    )
}

/// `dme<N>`: a token-ring distributed mutual exclusion protocol with N
/// cells. One token circulates (it may move to the next cell or stay); a
/// cell may be in its critical section only while it holds the token.
/// State: N token bits (one-hot) + N critical bits.
pub fn dme(n: usize) -> SymbolicModel {
    assert!(n >= 2, "dme needs at least two cells");
    SymbolicModel::new(
        format!("dme<{n}>"),
        2 * n,
        move |s| {
            // token at cell 0, nobody critical
            let mut conj = vec![Formula::var(s[0])];
            for &v in &s[1..n] {
                conj.push(Formula::var(v).not());
            }
            for i in 0..n {
                conj.push(Formula::var(s[n + i]).not());
            }
            Formula::and_all(conj)
        },
        move |s, t| {
            let token = |vars: &[Var], i: usize| Formula::var(vars[i % n]);
            let crit = |vars: &[Var], i: usize| Formula::var(vars[n + i % n]);
            let mut conj = Vec::new();
            // The token stays or moves one cell to the right.
            let stay = Formula::and_all((0..n).map(|i| token(t, i).iff(token(s, i))));
            let shift =
                Formula::and_all((0..n).map(|i| token(t, (i + 1) % n).iff(token(s, i))));
            conj.push(stay.or(shift));
            // Criticality requires the token, in the successor state.
            for i in 0..n {
                conj.push(crit(t, i).implies(token(t, i)));
            }
            // A critical cell keeps the token (no move while critical).
            for i in 0..n {
                conj.push(
                    crit(s, i).implies(token(t, i)),
                );
            }
            Formula::and_all(conj)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(n: usize) -> Vec<Var> {
        (0..n).map(Var::new).collect()
    }

    #[test]
    fn counter_increments() {
        let m = counter(3);
        let s = vars(3);
        let t: Vec<Var> = (3..6).map(Var::new).collect();
        let trans = m.trans(&s, &t);
        // 011 -> 100 (lsb-first: s = [1,1,0], t = [0,0,1])
        let env = [true, true, false, false, false, true];
        assert!(trans.eval(&env));
        // 011 -> 101 is wrong
        let env = [true, true, false, true, false, true];
        assert!(!trans.eval(&env));
        // wrap: 111 -> 000
        let env = [true, true, true, false, false, false];
        assert!(trans.eval(&env));
        // init is all zeros
        assert!(m.init(&s).eval(&[false, false, false, false, false, false]));
        assert!(!m.init(&s).eval(&[true, false, false, false, false, false]));
    }

    #[test]
    fn trans_prime_adds_initial_self_loop() {
        let m = counter(2);
        let s = vars(2);
        let t: Vec<Var> = (2..4).map(Var::new).collect();
        let tp = m.trans_prime(&s, &t);
        // 00 -> 00 allowed by T' (initial self loop) though not by T.
        assert!(tp.eval(&[false, false, false, false]));
        assert!(!m.trans(&s, &t).eval(&[false, false, false, false]));
        // ordinary steps still allowed
        assert!(tp.eval(&[false, false, true, false]));
    }

    #[test]
    fn ring_single_gate_updates() {
        let m = ring(3);
        let s = vars(3);
        let t: Vec<Var> = (3..6).map(Var::new).collect();
        let trans = m.trans(&s, &t);
        // gate 0 takes ¬gate2: 000 -> 100
        assert!(trans.eval(&[false, false, false, true, false, false]));
        // two gates updating at once: 000 -> 110 is not a single step
        assert!(!trans.eval(&[false, false, false, true, true, false]));
        // no gate can stutter from 000 (each update flips a bit)
        assert!(!trans.eval(&[false; 6]));
        // stutter allowed when a gate is already stable: 100, gate 1 takes
        // ¬gate0 = 0 = its current value.
        assert!(trans.eval(&[true, false, false, true, false, false]));
    }

    #[test]
    fn semaphore_mutex_in_successor() {
        let m = semaphore(2);
        let s = vars(4);
        let t: Vec<Var> = (4..8).map(Var::new).collect();
        let trans = m.trans(&s, &t);
        // both trying -> both critical is forbidden
        // phases: trying = (0,1), critical = (1,1); bit order [hi, lo]
        let env = [
            false, true, false, true, // s: both trying
            true, true, true, true, // t: both critical
        ];
        assert!(!trans.eval(&env));
        // one enters
        let env = [
            false, true, false, true, // s: both trying
            true, true, false, true, // t: p0 critical, p1 trying
        ];
        assert!(trans.eval(&env));
    }

    #[test]
    fn dme_token_moves_or_stays() {
        let m = dme(3);
        let s = vars(6);
        let t: Vec<Var> = (6..12).map(Var::new).collect();
        let trans = m.trans(&s, &t);
        // token at 0 moves to 1, nobody critical
        let mut env = vec![false; 12];
        env[0] = true; // s token at 0
        env[6 + 1] = true; // t token at 1
        assert!(trans.eval(&env));
        // token jumps from 0 to 2: not allowed
        let mut env = vec![false; 12];
        env[0] = true;
        env[6 + 2] = true;
        assert!(!trans.eval(&env));
        // critical without token is forbidden
        let mut env = vec![false; 12];
        env[0] = true;
        env[6] = true; // token stays at 0
        env[6 + 3 + 1] = true; // cell 1 critical in t
        assert!(!trans.eval(&env));
    }

    #[test]
    fn gray_flips_exactly_one_bit() {
        let m = gray(3);
        let s = vars(3);
        let t: Vec<Var> = (3..6).map(Var::new).collect();
        let trans = m.trans(&s, &t);
        // 000 (even parity) -> flip bit 0 -> 100
        assert!(trans.eval(&[false, false, false, true, false, false]));
        // 000 -> 010 is not the Gray successor
        assert!(!trans.eval(&[false, false, false, false, true, false]));
        // 100 (odd parity, lowest set = 0) -> flip bit 1 -> 110
        assert!(trans.eval(&[true, false, false, true, true, false]));
    }

    #[test]
    fn vector_equiv_works() {
        let a = vars(2);
        let b: Vec<Var> = (2..4).map(Var::new).collect();
        let eq = vector_equiv(&a, &b);
        assert!(eq.eval(&[true, false, true, false]));
        assert!(!eq.eval(&[true, false, false, false]));
    }

    #[test]
    fn model_metadata() {
        let m = counter(4);
        assert_eq!(m.name(), "counter<4>");
        assert_eq!(m.bits(), 4);
        assert!(format!("{m:?}").contains("counter"));
    }
}
