//! Incremental diameter probing: the φ1, φ2, … sequence of §VII-C as one
//! long-lived [`IncrementalSolver`] session.
//!
//! The paper's DIA experiments solve *families* of closely related QBFs —
//! each probe differs only in the unrolling bound. The incremental
//! encoding here places every probe's quantifier forest side by side in
//! one **union universe**: probe φn's variables are shifted by the total
//! size of the earlier probes and its prefix trees become additional
//! roots of a shared forest (quantifier structure is preserved exactly —
//! distinct roots are independent games, so `≺` never relates two
//! probes). The base matrix is empty; probing φn is a `push`, the
//! (shifted) clauses of φn, a `solve`, and a `pop`:
//!
//! * frame-independent learned state — heuristic activity, the arena,
//!   the block caches — stays hot across probes;
//! * repeated queries of the *same* probe (no matrix change in between)
//!   additionally reuse every clause and cube learned in the frame,
//!   which the DIA regression test pins as `incremental ≤ cold`.

use qbf_core::solver::{IncrementalSolver, Outcome, SolverConfig};
use qbf_core::{Clause, Matrix, Prefix, PrefixBuilder, Qbf, Var};

use crate::diameter::{diameter_qbf, DiameterForm};
use crate::model::SymbolicModel;

/// One probe of a [`DiaSequence`]: the shifted clauses of φn over the
/// union universe.
#[derive(Debug, Clone)]
pub struct DiaProbe {
    /// The probed bound.
    pub n: u32,
    /// φn's clauses, with variables shifted into the union universe.
    pub clauses: Vec<Clause>,
}

/// The φ1..φk family over one union universe, ready for an incremental
/// session.
#[derive(Debug, Clone)]
pub struct DiaSequence {
    /// The shared base formula: the union prefix over an empty matrix.
    pub qbf: Qbf,
    /// The probes, in bound order.
    pub probes: Vec<DiaProbe>,
}

/// Appends `prefix`'s forest to `builder` with all variables shifted by
/// `offset`.
fn graft(builder: &mut PrefixBuilder, prefix: &Prefix, offset: usize) {
    fn copy(
        prefix: &Prefix,
        builder: &mut PrefixBuilder,
        src: qbf_core::BlockId,
        parent: qbf_core::BlockId,
        offset: usize,
    ) {
        let vars = prefix
            .block_vars(src)
            .iter()
            .map(|v| Var::new(v.index() + offset));
        let id = builder
            .add_child(parent, prefix.block_quant(src), vars)
            .expect("shifted variables are fresh");
        for &c in prefix.block_children(src) {
            copy(prefix, builder, c, id, offset);
        }
    }
    for &r in prefix.roots() {
        let vars = prefix
            .block_vars(r)
            .iter()
            .map(|v| Var::new(v.index() + offset));
        let id = builder
            .add_root(prefix.block_quant(r), vars)
            .expect("shifted variables are fresh");
        for &c in prefix.block_children(r) {
            copy(prefix, builder, c, id, offset);
        }
    }
}

/// Builds the union-universe sequence φ1..φ`max_n` for `model`.
pub fn diameter_sequence(model: &SymbolicModel, form: DiameterForm, max_n: u32) -> DiaSequence {
    let instances: Vec<_> = (1..=max_n).map(|n| diameter_qbf(model, n, form)).collect();
    let total_vars: usize = instances.iter().map(|i| i.qbf.num_vars()).sum();
    let mut builder = PrefixBuilder::new(total_vars);
    let mut probes = Vec::new();
    let mut offset = 0usize;
    for inst in &instances {
        graft(&mut builder, inst.qbf.prefix(), offset);
        let clauses = inst
            .qbf
            .matrix()
            .iter()
            .map(|c| {
                Clause::new(
                    c.iter()
                        .map(|l| Var::new(l.var().index() + offset).lit(l.is_positive())),
                )
                .expect("shifting preserves distinct variables")
            })
            .collect();
        probes.push(DiaProbe {
            n: inst.n,
            clauses,
        });
        offset += inst.qbf.num_vars();
    }
    let prefix = builder.finish().expect("disjoint shifted universes");
    let qbf = Qbf::new(prefix, Matrix::new(total_vars)).expect("empty matrix binds nothing");
    DiaSequence { qbf, probes }
}

/// The incremental session's record of one probe.
#[derive(Debug, Clone)]
pub struct DiaProbeResult {
    /// The probed bound.
    pub n: u32,
    /// The frame-restricted one-shot formula this probe is equivalent to
    /// (for cold cross-checks).
    pub equivalent: Qbf,
    /// One outcome per solve of this probe (`solves_per_probe` many).
    pub outcomes: Vec<Outcome>,
}

/// An incremental run over a [`DiaSequence`].
#[derive(Debug, Clone)]
pub struct DiaIncrementalRun {
    /// Per-probe results, in bound order.
    pub results: Vec<DiaProbeResult>,
}

impl DiaIncrementalRun {
    /// Total deterministic cost (assignments) across all solves.
    pub fn total_assignments(&self) -> u64 {
        self.results
            .iter()
            .flat_map(|r| &r.outcomes)
            .map(|o| o.stats.assignments())
            .sum()
    }

    /// Total backtracks (backjumps + chronological) across all solves.
    pub fn total_backtracks(&self) -> u64 {
        self.results
            .iter()
            .flat_map(|r| &r.outcomes)
            .map(|o| o.stats.backjumps + o.stats.chrono_backtracks)
            .sum()
    }
}

/// Runs the sequence in one incremental session: per probe, `push`, add
/// the probe's clauses, solve `solves_per_probe` times, `pop`. Repeat
/// solves of an unchanged frame reuse the frame's learned clauses *and*
/// cubes — the measurable benefit the DIA regression pins down.
pub fn run_diameter_incremental(
    seq: &DiaSequence,
    config: &SolverConfig,
    solves_per_probe: u32,
) -> DiaIncrementalRun {
    assert!(solves_per_probe >= 1, "at least one solve per probe");
    let mut inc = IncrementalSolver::new(seq.qbf.clone(), config.clone());
    let mut results = Vec::new();
    for probe in &seq.probes {
        inc.push();
        for clause in &probe.clauses {
            inc.add_clause(clause.lits()).expect("probe clauses are valid");
        }
        let equivalent = inc.equivalent_qbf();
        let outcomes = (0..solves_per_probe).map(|_| inc.solve()).collect();
        inc.pop().expect("matching push");
        results.push(DiaProbeResult {
            n: probe.n,
            equivalent,
            outcomes,
        });
    }
    DiaIncrementalRun { results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::explore;
    use crate::model;
    use qbf_core::solver::Solver;

    #[test]
    fn union_universe_preserves_probe_verdicts() {
        let m = model::counter(2);
        let d = explore(&m).unwrap().eccentricity; // 3
        let seq = diameter_sequence(&m, DiameterForm::Tree, 4);
        let run = run_diameter_incremental(&seq, &SolverConfig::partial_order(), 1);
        assert_eq!(run.results.len(), 4);
        for r in &run.results {
            let expected = r.n < d;
            assert_eq!(r.outcomes[0].value(), Some(expected), "n={}", r.n);
            // The captured equivalent agrees when solved cold.
            let cold = Solver::new(&r.equivalent, SolverConfig::partial_order()).solve();
            assert_eq!(cold.value(), Some(expected), "cold n={}", r.n);
        }
    }
}
