//! The diameter-calculation QBFs of §VII-C.
//!
//! For a model `M` and a bound `n`, Eq. (14) defines
//!
//! ```text
//! φn = ∃x_{n+1} ( ∃x_0…x_n (I(x_0) ∧ ⋀_{i=0}^{n} T(x_i, x_{i+1}))
//!               ∧ ∀y_0…y_n ¬(I(y_0) ∧ ⋀_{i=0}^{n-1} T′(y_i, y_{i+1}) ∧ x_{n+1} ≡ y_n) )
//! ```
//!
//! with `T′` of Eq. (15) adding a self-loop on the initial states. `φn` is
//! true exactly when `n < d` and false exactly when `n ≥ d`, where `d` is
//! the reachable eccentricity ([`crate::explore`] computes it explicitly).
//! The CNF conversion introduces auxiliary variables which are bound
//! existentially in the innermost position of their conjunct's scope —
//! reproducing the prefixes (18) (non-prenex) and (19) (prenex ∃↑∀↑,
//! Eq. 16) of the paper's worked example.

use qbf_core::solver::{Outcome, Solver, SolverConfig};
use qbf_core::{Matrix, Prefix, PrefixBuilder, Qbf, Quantifier, Var};
use qbf_formula::{clausify, Clausified, Formula, VarAlloc};

use crate::model::{vector_equiv, SymbolicModel};

/// Which prefix shape to build for φn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiameterForm {
    /// The non-prenex Eq. (14): the quantifier tree QUBE(PO) exploits.
    Tree,
    /// The prenex Eq. (16): the ∃↑∀↑ flattening QUBE(TO) consumes.
    Prenex,
}

/// A constructed diameter probe.
#[derive(Debug, Clone)]
pub struct DiameterInstance {
    /// The QBF φn.
    pub qbf: Qbf,
    /// The probed bound `n`.
    pub n: u32,
}

struct Unrolling {
    x_last: Vec<Var>,
    x_path: Vec<Var>,
    y_path: Vec<Var>,
    left: Clausified,
    right: Clausified,
    num_vars: usize,
}

fn unroll(model: &SymbolicModel, n: u32) -> Unrolling {
    let b = model.bits();
    let steps = n as usize + 1; // path x_0 … x_{n+1} has n+1 transitions
    let vec_at = |start: usize| -> Vec<Var> { (start..start + b).map(Var::new).collect() };
    // Layout: x_{n+1} | x_0..x_n | y_0..y_n | auxiliaries.
    let x_last = vec_at(0);
    let xs: Vec<Vec<Var>> = (0..steps).map(|i| vec_at(b * (1 + i))).collect();
    let ys: Vec<Vec<Var>> = (0..steps).map(|i| vec_at(b * (1 + steps + i))).collect();
    let mut alloc = VarAlloc::new(b * (1 + 2 * steps));

    // Left conjunct: I(x_0) ∧ T(x_0,x_1) ∧ … ∧ T(x_n, x_{n+1}).
    let mut left_parts = vec![model.init(&xs[0])];
    for i in 0..steps {
        let next = if i + 1 < steps { &xs[i + 1] } else { &x_last };
        left_parts.push(model.trans(&xs[i], next));
    }
    let left_formula = Formula::and_all(left_parts);
    let left = clausify(&left_formula, &mut alloc);

    // Right conjunct: ¬(I(y_0) ∧ T′(y_0,y_1) ∧ … ∧ T′(y_{n-1},y_n)
    //                   ∧ x_{n+1} ≡ y_n).
    let mut right_parts = vec![model.init(&ys[0])];
    for i in 0..steps - 1 {
        right_parts.push(model.trans_prime(&ys[i], &ys[i + 1]));
    }
    right_parts.push(vector_equiv(&x_last, &ys[steps - 1]));
    let right_formula = Formula::and_all(right_parts).not();
    let right = clausify(&right_formula, &mut alloc);

    Unrolling {
        x_last,
        x_path: xs.into_iter().flatten().collect(),
        y_path: ys.into_iter().flatten().collect(),
        left,
        right,
        num_vars: alloc.num_vars(),
    }
}

/// Builds φn for the model, in tree (Eq. 14) or prenex (Eq. 16) form.
///
/// # Examples
///
/// ```
/// let m = qbf_models::counter(2);
/// let probe = qbf_models::diameter_qbf(&m, 1, qbf_models::DiameterForm::Tree);
/// assert!(!probe.qbf.is_prenex());
/// // counter<2> has eccentricity 3, so φ1 (1 < 3) is true:
/// assert!(qbf_core::semantics::eval(&probe.qbf));
/// ```
pub fn diameter_qbf(model: &SymbolicModel, n: u32, form: DiameterForm) -> DiameterInstance {
    let u = unroll(model, n);
    let mut clauses = u.left.clauses.clone();
    clauses.extend(u.right.clauses.iter().cloned());
    let matrix = Matrix::from_clauses(u.num_vars, clauses);
    let prefix = match form {
        DiameterForm::Tree => {
            // ∃x_{n+1} ( ∃{x path, left aux} ∧ ∀{y path} ∃{right aux} )
            let mut builder = PrefixBuilder::new(u.num_vars);
            let root = builder
                .add_root(Quantifier::Exists, u.x_last.clone())
                .expect("fresh variables");
            let mut left_block = u.x_path.clone();
            left_block.extend(u.left.aux.iter().copied());
            builder
                .add_child(root, Quantifier::Exists, left_block)
                .expect("fresh variables");
            let y_block = builder
                .add_child(root, Quantifier::Forall, u.y_path.clone())
                .expect("fresh variables");
            if !u.right.aux.is_empty() {
                builder
                    .add_child(y_block, Quantifier::Exists, u.right.aux.clone())
                    .expect("fresh variables");
            }
            builder.finish().expect("valid forest")
        }
        DiameterForm::Prenex => {
            // ∃{x_{n+1}, x path, left aux} ∀{y path} ∃{right aux}
            let mut first = u.x_last.clone();
            first.extend(u.x_path.iter().copied());
            first.extend(u.left.aux.iter().copied());
            let mut blocks = vec![
                (Quantifier::Exists, first),
                (Quantifier::Forall, u.y_path.clone()),
            ];
            if !u.right.aux.is_empty() {
                blocks.push((Quantifier::Exists, u.right.aux.clone()));
            }
            Prefix::prenex(u.num_vars, blocks).expect("fresh variables")
        }
    };
    DiameterInstance {
        qbf: Qbf::new_closing_free(prefix, matrix).expect("all matrix variables bound"),
        n,
    }
}

/// One solved probe of a diameter computation.
#[derive(Debug, Clone)]
pub struct Probe {
    /// The probed bound.
    pub n: u32,
    /// The solver outcome for φn.
    pub outcome: Outcome,
    /// Wall time spent on this probe.
    pub time: std::time::Duration,
    /// Instance size (variables, clauses).
    pub size: (usize, usize),
}

/// A full diameter computation: probe φ0, φ1, … until some φn is false.
#[derive(Debug, Clone)]
pub struct DiameterRun {
    /// The computed diameter (`None` if a probe timed out or `max_n` was
    /// reached first).
    pub diameter: Option<u32>,
    /// All solved probes in order.
    pub probes: Vec<Probe>,
}

impl DiameterRun {
    /// Total deterministic cost (assignments) across the probes.
    pub fn total_assignments(&self) -> u64 {
        self.probes
            .iter()
            .map(|p| p.outcome.stats.assignments())
            .sum()
    }

    /// Total wall time across the probes.
    pub fn total_time(&self) -> std::time::Duration {
        self.probes.iter().map(|p| p.time).sum()
    }
}

/// Computes the diameter of a model by iterating φn probes with the given
/// solver configuration. `form` selects the tree (PO-friendly) or prenex
/// (TO) encoding; the configuration chooses the heuristic.
pub fn compute_diameter(
    model: &SymbolicModel,
    form: DiameterForm,
    config: &SolverConfig,
    max_n: u32,
) -> DiameterRun {
    let mut probes = Vec::new();
    for n in 0..=max_n {
        let inst = diameter_qbf(model, n, form);
        let size = (inst.qbf.num_vars(), inst.qbf.matrix().len());
        let start = std::time::Instant::now();
        let outcome = Solver::new(&inst.qbf, config.clone()).solve();
        let time = start.elapsed();
        let value = outcome.value();
        probes.push(Probe {
            n,
            outcome,
            time,
            size,
        });
        match value {
            Some(false) => {
                return DiameterRun {
                    diameter: Some(n),
                    probes,
                }
            }
            Some(true) => {}
            None => {
                return DiameterRun {
                    diameter: None,
                    probes,
                }
            }
        }
    }
    DiameterRun {
        diameter: None,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::explore;
    use crate::model;
    use qbf_core::semantics;

    #[test]
    fn phi_matches_eccentricity_counter2() {
        let m = model::counter(2);
        let d = explore(&m).unwrap().eccentricity; // 3
        assert_eq!(d, 3);
        for n in 0..=4u32 {
            for form in [DiameterForm::Tree, DiameterForm::Prenex] {
                let inst = diameter_qbf(&m, n, form);
                let expected = n < d;
                let got = Solver::new(&inst.qbf, SolverConfig::partial_order())
                    .solve()
                    .value();
                assert_eq!(got, Some(expected), "counter<2> n={n} {form:?}");
            }
        }
    }

    #[test]
    fn phi_matches_eccentricity_small_models_by_semantics() {
        // Semantic (naive) evaluation keeps this exact but limits size.
        let m = model::counter(1); // d = 1
        for n in 0..=2u32 {
            let inst = diameter_qbf(&m, n, DiameterForm::Tree);
            assert_eq!(semantics::eval(&inst.qbf), n < 1, "n={n}");
        }
    }

    #[test]
    fn compute_diameter_agrees_with_bfs() {
        for (m, max_n) in [
            (model::counter(2), 8),
            (model::counter(3), 12),
            (model::ring(3), 12),
            (model::semaphore(2), 10),
            (model::dme(2), 10),
        ] {
            let d = explore(&m).unwrap().eccentricity;
            for form in [DiameterForm::Tree, DiameterForm::Prenex] {
                let run = compute_diameter(&m, form, &SolverConfig::partial_order(), max_n);
                assert_eq!(run.diameter, Some(d), "{} {form:?}", m.name());
                assert_eq!(run.probes.len() as u32, d + 1);
            }
        }
    }

    #[test]
    fn total_order_solver_agrees_on_prenex_form() {
        let m = model::counter(2);
        let d = explore(&m).unwrap().eccentricity;
        let run = compute_diameter(
            &m,
            DiameterForm::Prenex,
            &SolverConfig::total_order(),
            8,
        );
        assert_eq!(run.diameter, Some(d));
        assert!(run.total_assignments() > 0);
        assert!(run.total_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn tree_form_prefix_shape() {
        let m = model::counter(2);
        let inst = diameter_qbf(&m, 1, DiameterForm::Tree);
        let p = inst.qbf.prefix();
        assert!(!p.is_prenex());
        assert_eq!(p.roots().len(), 1);
        let root = p.roots()[0];
        // the root binds x_{n+1} (2 bits)
        assert_eq!(p.block_vars(root).len(), 2);
        assert_eq!(p.block_children(root).len(), 2);
    }

    #[test]
    fn prenex_form_prefix_shape() {
        let m = model::counter(2);
        let inst = diameter_qbf(&m, 1, DiameterForm::Prenex);
        assert!(inst.qbf.is_prenex());
        let blocks = inst.qbf.prefix().linear_blocks();
        // ∃ ∀ ∃ as in (19) (the right aux block exists for counters).
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].0, Quantifier::Exists);
        assert_eq!(blocks[1].0, Quantifier::Forall);
        assert_eq!(blocks[2].0, Quantifier::Exists);
    }
}
