//! The FIXED class: structured prenex QBFs with recoverable quantifier
//! structure (§VII-D).
//!
//! QBFEVAL's "fixed" instances are structured encodings whose prenex
//! prefixes often hide independent subproblems. This generator reproduces
//! that situation directly: it composes several *independent* small games
//! over disjoint variables, then flattens the natural forest prefix with a
//! prenexing strategy. Miniscoping the flat instance recovers the groups,
//! so the PO/TO ratio of §VII-D is high and the instance qualifies for the
//! Fig. 7 test set.

use qbf_core::{Clause, Matrix, PrefixBuilder, Qbf, Quantifier, Var};
use qbf_prenex::{prenex, Strategy};
use crate::rng::Rng;

/// Parameters of the FIXED-class generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedParams {
    /// Number of independent groups.
    pub groups: u32,
    /// Alternation depth of each group (`∃∀∃…`, depth blocks).
    pub depth: u32,
    /// Variables per block.
    pub block_vars: u32,
    /// Clauses per group.
    pub clauses_per_group: u32,
    /// Literals per clause.
    pub lpc: u32,
}

impl std::fmt::Display for FixedParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fixed(groups={}, depth={}, blk={}, cls={}, lpc={})",
            self.groups, self.depth, self.block_vars, self.clauses_per_group, self.lpc
        )
    }
}

/// A generated FIXED instance: the flat (prenex) QBF the solver suite
/// receives, plus the structured original for reference.
#[derive(Debug, Clone)]
pub struct FixedInstance {
    /// The prenex instance (what QBFEVAL would distribute).
    pub prenex: Qbf,
    /// The underlying non-prenex structure (ground truth for tests).
    pub structured: Qbf,
}

/// Generates one FIXED instance.
///
/// # Examples
///
/// ```
/// use qbf_gen::{fixed, FixedParams};
/// let inst = fixed(&FixedParams { groups: 3, depth: 3, block_vars: 2,
///                                 clauses_per_group: 6, lpc: 3 }, 5);
/// assert!(inst.prenex.is_prenex());
/// assert_eq!(inst.structured.prefix().roots().len(), 3);
/// ```
pub fn fixed(params: &FixedParams, seed: u64) -> FixedInstance {
    assert!(params.groups >= 1 && params.depth >= 1 && params.block_vars >= 1);
    let mut rng = Rng::seed_from_u64(seed ^ 0x1656_67b1_9e37_79f9);
    let mut next_var = 0usize;
    let mut builder_blocks: Vec<Vec<(Quantifier, Vec<Var>)>> = Vec::new();
    let mut clauses = Vec::new();

    for _ in 0..params.groups {
        let mut group_blocks = Vec::new();
        let mut visible: Vec<(Var, Quantifier)> = Vec::new();
        for level in 0..params.depth {
            let quant = if level % 2 == 0 {
                Quantifier::Exists
            } else {
                Quantifier::Forall
            };
            let vars: Vec<Var> = (0..params.block_vars as usize)
                .map(|i| Var::new(next_var + i))
                .collect();
            next_var += params.block_vars as usize;
            visible.extend(vars.iter().map(|&v| (v, quant)));
            group_blocks.push((quant, vars));
        }
        let existentials: Vec<Var> = visible
            .iter()
            .filter(|(_, q)| q.is_exists())
            .map(|(v, _)| *v)
            .collect();
        let universals: Vec<Var> = visible
            .iter()
            .filter(|(_, q)| !q.is_exists())
            .map(|(v, _)| *v)
            .collect();
        // Chen–Interian mix (as in the NCF generator): ⌊lpc/2⌋ universal
        // literals, the rest existential — keeps the groups near the phase
        // transition rather than trivially decided.
        let n_univ = if universals.is_empty() {
            0
        } else {
            (params.lpc / 2).max(1)
        };
        let n_exist = (params.lpc - n_univ).max(1);
        for _ in 0..params.clauses_per_group {
            let clause = loop {
                let mut lits = Vec::new();
                for _ in 0..n_exist {
                    let v = existentials[rng.gen_range(0..existentials.len())];
                    lits.push(v.lit(rng.gen_bool(0.5)));
                }
                for _ in 0..n_univ {
                    let v = universals[rng.gen_range(0..universals.len())];
                    lits.push(v.lit(rng.gen_bool(0.5)));
                }
                if let Ok(c) = Clause::new(lits) {
                    break c;
                }
            };
            clauses.push(clause);
        }
        builder_blocks.push(group_blocks);
    }

    let mut builder = PrefixBuilder::new(next_var);
    for group in builder_blocks {
        let mut parent: Option<qbf_core::BlockId> = None;
        for (quant, vars) in group {
            let id = match parent {
                None => builder.add_root(quant, vars),
                Some(p) => builder.add_child(p, quant, vars),
            }
            .expect("fresh variables");
            parent = Some(id);
        }
    }
    let prefix = builder.finish().expect("valid forest");
    let matrix = Matrix::from_clauses(next_var, clauses);
    let structured = Qbf::new(prefix, matrix).expect("clauses over bound variables");
    let flat = prenex(&structured, Strategy::ExistsUpForallUp);
    FixedInstance {
        prenex: flat,
        structured,
    }
}

/// Draws `count` seeded instances for one parameter setting.
pub fn fixed_batch(params: &FixedParams, base_seed: u64, count: usize) -> Vec<FixedInstance> {
    (0..count as u64)
        .map(|i| fixed(params, base_seed.wrapping_add(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::semantics;
    use qbf_prenex::{miniscope, po_to_ratio};

    fn small() -> FixedParams {
        FixedParams {
            groups: 2,
            depth: 3,
            block_vars: 1,
            clauses_per_group: 4,
            lpc: 2,
        }
    }

    #[test]
    fn deterministic_and_prenex() {
        let a = fixed(&small(), 1);
        let b = fixed(&small(), 1);
        assert_eq!(a.prenex, b.prenex);
        assert!(a.prenex.is_prenex());
        assert!(!a.structured.is_prenex());
    }

    #[test]
    fn prenex_and_structured_agree_semantically() {
        for seed in 0..8 {
            let inst = fixed(&small(), seed);
            assert_eq!(
                semantics::eval(&inst.prenex),
                semantics::eval(&inst.structured),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn miniscoping_recovers_structure_with_high_ratio() {
        let p = FixedParams {
            groups: 3,
            depth: 3,
            block_vars: 2,
            clauses_per_group: 8,
            lpc: 3,
        };
        let inst = fixed(&p, 7);
        let rec = miniscope(&inst.prenex).unwrap();
        let ratio = po_to_ratio(&rec.qbf, &inst.prenex);
        assert!(ratio > 20.0, "ratio {ratio}: structure not recovered");
    }
}
