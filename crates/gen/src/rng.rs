//! Seed-stable in-tree PRNG: SplitMix64 seeding into xoshiro256**.
//!
//! The workspace builds **hermetically** (no crates.io access), so the
//! generators cannot depend on the `rand` crate. This module provides the
//! small deterministic API they need: [`Rng::seed_from_u64`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`], mirroring the `rand` method
//! names so call sites read identically.
//!
//! The stream is a **stability contract**: instances are addressed by seed
//! throughout the test- and bench-suites, so changing the algorithm (or the
//! seeding path) silently re-labels every generated instance. Don't.
//!
//! # Examples
//!
//! ```
//! use qbf_gen::rng::Rng;
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0..10);
//! assert!(x < 10);
//! ```

/// SplitMix64 step: the standard seeding finalizer (Steele et al.),
/// also usable as a tiny standalone generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** seeded via SplitMix64 (the reference seeding procedure:
/// never feed correlated words directly into the state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is the one forbidden point of the xoshiro cycle;
        // SplitMix64 cannot produce four zero outputs in a row, but keep
        // the guard explicit for refactor safety.
        debug_assert!(s.iter().any(|&w| w != 0));
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256** scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[range.start, range.end)`. Panics on an empty
    /// range, like `rand::Rng::gen_range`.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        // Widening-multiply bounded draw (Lemire); the slight modulo-free
        // bias (< 2^-64 · span) is irrelevant for instance generation and
        // keeps the draw a single multiplication on the hot path.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn stream_is_pinned() {
        // Guard the stability contract: the first outputs for seed 0 must
        // never change (they address every generated instance in the repo).
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r2 = Rng::seed_from_u64(0);
            (0..4).map(|_| r2.next_u64()).collect()
        };
        assert_eq!(first, again);
        // xoshiro256** reference vectors depend on seeding; pin ours.
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = Rng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..400 {
            let x = r.gen_range(2..7);
            assert!((2..7).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::seed_from_u64(2);
        for _ in 0..64 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "fair coin grossly biased: {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        Rng::seed_from_u64(3).gen_range(4..4);
    }
}
