//! The PROB class: random prenex QBFs in the generalized fixed-clause-length
//! model (§VII-D, [35] in the paper).
//!
//! Instances are prenex with a fixed block structure; every clause draws
//! `lpc` distinct variables uniformly, with at least one existential
//! literal (an all-universal clause is contradictory by Lemma 4 and random
//! generators conventionally reject it).

use crate::rng::Rng;
use qbf_core::{Clause, Matrix, Prefix, Qbf, Quantifier, Var};

/// Parameters of the random prenex generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandParams {
    /// Alternating block sizes, outermost first, starting with ∃.
    pub block_sizes: Vec<u32>,
    /// Number of clauses.
    pub clauses: u32,
    /// Literals per clause.
    pub lpc: u32,
    /// Latent locality groups: variables are partitioned (by index modulo
    /// `locality_groups`) and each clause draws its variables within one
    /// group, except with `cross_percent` probability. `1` is the pure
    /// model-A generator. Structured-random classes (e.g. the conformant
    /// planning encodings the paper counts as "probabilistic") exhibit
    /// exactly this partial locality, which is what lets miniscoping
    /// recover scope structure on a minority of instances.
    pub locality_groups: u32,
    /// Percent of clauses drawn across groups (0..=100).
    pub cross_percent: u32,
}

impl RandParams {
    /// A classical 2QBF-ish setting: `∃ e ∀ a ∃ e` with the given sizes
    /// (pure model A, no locality).
    pub fn three_block(e1: u32, a: u32, e2: u32, clauses: u32, lpc: u32) -> Self {
        RandParams {
            block_sizes: vec![e1, a, e2],
            clauses,
            lpc,
            locality_groups: 1,
            cross_percent: 100,
        }
    }

    /// Adds latent locality, builder-style.
    pub fn with_locality(mut self, groups: u32, cross_percent: u32) -> Self {
        self.locality_groups = groups.max(1);
        self.cross_percent = cross_percent.min(100);
        self
    }
}

impl std::fmt::Display for RandParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rand(blocks={:?}, cls={}, lpc={})",
            self.block_sizes, self.clauses, self.lpc
        )
    }
}

/// Generates one random prenex QBF.
///
/// # Examples
///
/// ```
/// use qbf_gen::{rand_qbf, RandParams};
/// let q = rand_qbf(&RandParams::three_block(4, 4, 4, 20, 3), 1);
/// assert!(q.is_prenex());
/// assert_eq!(q.num_vars(), 12);
/// assert_eq!(q.matrix().len(), 20);
/// ```
pub fn rand_qbf(params: &RandParams, seed: u64) -> Qbf {
    assert!(!params.block_sizes.is_empty() && params.lpc >= 1);
    let mut rng = Rng::seed_from_u64(seed ^ 0xc2b2_ae3d_27d4_eb4f);
    let num_vars: usize = params.block_sizes.iter().map(|&s| s as usize).sum();
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut quants: Vec<Quantifier> = Vec::with_capacity(num_vars);
    for (i, &size) in params.block_sizes.iter().enumerate() {
        let quant = if i % 2 == 0 {
            Quantifier::Exists
        } else {
            Quantifier::Forall
        };
        let vars: Vec<Var> = (start..start + size as usize).map(Var::new).collect();
        quants.extend(std::iter::repeat_n(quant, size as usize));
        blocks.push((quant, vars));
        start += size as usize;
    }
    let prefix = Prefix::prenex(num_vars, blocks).expect("fresh variables");

    let groups = params.locality_groups.max(1) as usize;
    let outer = params.block_sizes[0] as usize;
    let e_vars: Vec<usize> = (0..num_vars)
        .filter(|&v| quants[v] == Quantifier::Exists)
        .collect();
    let a_vars: Vec<usize> = (0..num_vars)
        .filter(|&v| quants[v] == Quantifier::Forall)
        .collect();
    // Stratified clause widths (the Chen–Interian refinement of model A):
    // ⌊lpc/2⌋ universal + the rest existential literals. Plain model A
    // (uniform variable choice) produces overwhelmingly trivially-false
    // formulas, as the QBF literature observed.
    let n_univ = if a_vars.is_empty() {
        0
    } else {
        (params.lpc as usize / 2).max(1)
    };
    let n_exist = (params.lpc as usize - n_univ).max(1);
    let mut clauses = Vec::new();
    while clauses.len() < params.clauses as usize {
        let local = groups == 1 || !rng.gen_bool(params.cross_percent as f64 / 100.0);
        let group = rng.gen_range(0..groups);
        // Distinct variables, within the chosen group for local clauses;
        // cross-group clauses only touch the outermost existential block,
        // so the latent groups stay separable below it (like independent
        // subgoals sharing a plan prefix).
        let mut vars: Vec<usize> = Vec::new();
        let mut attempts = 0;
        let pick = |pool: &[usize], vars: &mut Vec<usize>, rng: &mut Rng| {
            if pool.is_empty() {
                return;
            }
            let v = pool[rng.gen_range(0..pool.len())];
            if local && groups > 1 && v % groups != group {
                return;
            }
            if !vars.contains(&v) {
                vars.push(v);
            }
        };
        if local {
            while vars.len() < n_exist && attempts < 10_000 {
                attempts += 1;
                pick(&e_vars, &mut vars, &mut rng);
            }
            let want = vars.len() + n_univ.min(a_vars.len());
            while vars.len() < want && attempts < 10_000 {
                attempts += 1;
                pick(&a_vars, &mut vars, &mut rng);
            }
        } else {
            // cross clause over the outermost existential block
            while vars.len() < n_exist.max(2).min(outer) && attempts < 10_000 {
                attempts += 1;
                let v = rng.gen_range(0..outer.max(1));
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        if vars.len() < 2 || !vars.iter().any(|&v| quants[v] == Quantifier::Exists) {
            continue;
        }
        let lits = vars
            .into_iter()
            .map(|v| Var::new(v).lit(rng.gen_bool(0.5)));
        clauses.push(Clause::new(lits).expect("distinct variables"));
    }
    Qbf::new(prefix, Matrix::from_clauses(num_vars, clauses))
        .expect("clauses mention bound variables only")
}

/// Draws `count` seeded instances for one parameter setting.
pub fn rand_batch(params: &RandParams, base_seed: u64, count: usize) -> Vec<Qbf> {
    (0..count as u64)
        .map(|i| rand_qbf(params, base_seed.wrapping_add(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::semantics;
    use qbf_core::solver::{Solver, SolverConfig};

    #[test]
    fn deterministic_per_seed() {
        let p = RandParams::three_block(3, 3, 3, 12, 3);
        assert_eq!(rand_qbf(&p, 9), rand_qbf(&p, 9));
        assert_ne!(rand_qbf(&p, 9), rand_qbf(&p, 10));
    }

    #[test]
    fn no_all_universal_clauses() {
        let p = RandParams::three_block(2, 6, 2, 30, 3);
        let q = rand_qbf(&p, 0);
        for c in q.matrix().iter() {
            assert!(c.iter().any(|l| q.prefix().is_existential(l.var())));
        }
    }

    #[test]
    fn solver_agrees_with_semantics() {
        let p = RandParams::three_block(2, 2, 2, 10, 3);
        for seed in 0..15 {
            let q = rand_qbf(&p, seed);
            let expected = semantics::eval(&q);
            assert_eq!(
                Solver::new(&q, SolverConfig::total_order()).solve().value(),
                Some(expected),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn locality_groups_partition_most_clauses() {
        let p = RandParams::three_block(6, 6, 6, 40, 3).with_locality(3, 10);
        let q = rand_qbf(&p, 1);
        let local = q
            .matrix()
            .iter()
            .filter(|c| {
                let g: Vec<usize> = c.iter().map(|l| l.var().index() % 3).collect();
                g.windows(2).all(|w| w[0] == w[1])
            })
            .count();
        assert!(local * 2 > q.matrix().len(), "locality not applied: {local}");
    }

    #[test]
    fn block_structure() {
        let p = RandParams {
            block_sizes: vec![2, 3, 1, 2],
            clauses: 5,
            lpc: 2,
            locality_groups: 1,
            cross_percent: 100,
        };
        let q = rand_qbf(&p, 2);
        let blocks = q.prefix().linear_blocks();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[1].0, Quantifier::Forall);
        assert_eq!(blocks[1].1.len(), 3);
    }
}
