//! Conformant planning QBFs: the "bomb in the toilet" family.
//!
//! The paper's PROB class explicitly includes "structured problems like the
//! conformant planning problems from reference 36" (Castellini, Giunchiglia,
//! Tacchella, reference 36 of the paper). This module provides a faithful small instance of that
//! species: `packages` parcels, exactly one of which is armed (the
//! uncertainty, universally quantified), `steps` time steps in each of
//! which the agent dunks one parcel into one of `toilets` toilets; a toilet
//! clogs for the following step after a dunk. The plan (existential) must
//! disarm the bomb whatever the uncertainty: the instance is true iff
//! enough steps are available given the toilet bottleneck.
//!
//! Encoding (prenex ∃∀∃, the natural conformant shape):
//!
//! * `∃` plan: `dunk(t, p, w)` — at step `t`, parcel `p` goes into toilet
//!   `w` (at most one dunk per toilet per step, clogging permitting);
//! * `∀` uncertainty: `armed(p)` bits;
//! * `∃` auxiliaries from clausification.
//!
//! The matrix asserts: *if* the armed bits designate exactly one parcel,
//! then that parcel is dunked at some step. (If the adversary violates the
//! exactly-one assumption the matrix is satisfied vacuously.)

use qbf_core::{Matrix, Prefix, Qbf, Quantifier, Var};
use qbf_formula::{clausify, Formula, VarAlloc};

/// Parameters of the bomb-in-the-toilet generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanningParams {
    /// Number of parcels (one is armed).
    pub packages: u32,
    /// Number of time steps available.
    pub steps: u32,
    /// Number of toilets usable in parallel per step.
    pub toilets: u32,
    /// Whether a dunk clogs the toilet for the next step.
    pub clogging: bool,
}

impl PlanningParams {
    /// The minimal number of steps that make the instance true.
    pub fn optimal_steps(&self) -> u32 {
        let per_step = self.toilets.max(1);
        let full = self.packages.div_ceil(per_step);
        if self.clogging && self.toilets > 0 {
            // a clogged toilet skips every other step
            let rounds = self.packages.div_ceil(per_step);
            2 * rounds - 1
        } else {
            full
        }
    }
}

impl std::fmt::Display for PlanningParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bomb(p={}, t={}, w={}, clog={})",
            self.packages, self.steps, self.toilets, self.clogging
        )
    }
}

/// Builds one bomb-in-the-toilet QBF.
///
/// The instance is **true** iff a conformant plan exists, which for this
/// domain is decided by counting: `steps ≥ optimal_steps()`.
///
/// # Examples
///
/// ```
/// use qbf_gen::{bomb_in_toilet, PlanningParams};
/// use qbf_core::solver::{Solver, SolverConfig};
/// let p = PlanningParams { packages: 3, steps: 3, toilets: 1, clogging: false };
/// let q = bomb_in_toilet(&p);
/// let out = Solver::new(&q, SolverConfig::partial_order()).solve();
/// assert_eq!(out.value(), Some(true)); // 3 steps suffice for 3 parcels
/// ```
pub fn bomb_in_toilet(params: &PlanningParams) -> Qbf {
    let packages = params.packages as usize;
    let steps = params.steps as usize;
    let toilets = params.toilets.max(1) as usize;
    assert!(packages >= 1, "need at least one parcel");

    // Variable layout: dunk[t][p][w] | armed[p] | aux…
    let mut next = 0usize;
    let mut fresh = |n: usize| -> Vec<Var> {
        let v: Vec<Var> = (next..next + n).map(Var::new).collect();
        next += n;
        v
    };
    let dunk = fresh(steps * packages * toilets);
    let dunk_at = |t: usize, p: usize, w: usize| dunk[(t * packages + p) * toilets + w];
    let armed = fresh(packages);
    let mut alloc = VarAlloc::new(next);

    let mut parts: Vec<Formula> = Vec::new();

    // Plan well-formedness: per step and toilet, at most one parcel.
    for t in 0..steps {
        for w in 0..toilets {
            for p1 in 0..packages {
                for p2 in (p1 + 1)..packages {
                    parts.push(
                        Formula::var(dunk_at(t, p1, w))
                            .not()
                            .or(Formula::var(dunk_at(t, p2, w)).not()),
                    );
                }
            }
        }
    }
    // A parcel goes into at most one toilet at a time.
    for t in 0..steps {
        for p in 0..packages {
            for w1 in 0..toilets {
                for w2 in (w1 + 1)..toilets {
                    parts.push(
                        Formula::var(dunk_at(t, p, w1))
                            .not()
                            .or(Formula::var(dunk_at(t, p, w2)).not()),
                    );
                }
            }
        }
    }
    // Clogging: a used toilet is unusable in the following step.
    if params.clogging {
        for t in 0..steps.saturating_sub(1) {
            for w in 0..toilets {
                let used_now = Formula::or_all(
                    (0..packages).map(|p| Formula::var(dunk_at(t, p, w))),
                );
                let used_next = Formula::or_all(
                    (0..packages).map(|p| Formula::var(dunk_at(t + 1, p, w))),
                );
                parts.push(used_now.not().or(used_next.not()));
            }
        }
    }

    // Goal, conditioned on the exactly-one-armed assumption:
    //   (exactly-one armed) → (the armed parcel is dunked at some step).
    // Encoded as: ¬valid(armed) ∨ ⋀_p (armed_p → dunked_p), pushed to:
    // for each p: (¬armed_p ∨ dunked_p ∨ ¬valid') — we expand ¬valid as a
    // disjunct once via a shared formula.
    let not_valid = {
        let none = Formula::and_all(
            (0..packages).map(|p| Formula::var(armed[p]).not()),
        );
        let two = Formula::or_all((0..packages).flat_map(|p1| {
            ((p1 + 1)..packages)
                .map(move |p2| (p1, p2))
        })
        .map(|(p1, p2)| Formula::var(armed[p1]).and(Formula::var(armed[p2]))));
        none.or(two)
    };
    for (p, &armed_p) in armed.iter().enumerate() {
        let dunked = Formula::or_all(
            (0..steps)
                .flat_map(|t| (0..toilets).map(move |w| (t, w)))
                .map(|(t, w)| Formula::var(dunk_at(t, p, w))),
        );
        parts.push(Formula::var(armed_p).not().or(dunked).or(not_valid.clone()));
    }

    let cnf = clausify(&Formula::and_all(parts), &mut alloc);
    let num_vars = alloc.num_vars();
    let mut blocks = vec![
        (Quantifier::Exists, dunk),
        (Quantifier::Forall, armed),
    ];
    if !cnf.aux.is_empty() {
        blocks.push((Quantifier::Exists, cnf.aux.clone()));
    }
    let prefix = Prefix::prenex(num_vars, blocks).expect("fresh variables");
    Qbf::new_closing_free(prefix, Matrix::from_clauses(num_vars, cnf.clauses))
        .expect("all matrix variables bound")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::semantics;
    use qbf_core::solver::{Solver, SolverConfig};

    fn value(params: &PlanningParams) -> Option<bool> {
        let q = bomb_in_toilet(params);
        Solver::new(&q, SolverConfig::partial_order().with_node_limit(5_000_000))
            .solve()
            .value()
    }

    #[test]
    fn one_toilet_no_clogging() {
        // B parcels need exactly B steps with one toilet.
        for b in 1..=3 {
            for steps in 1..=b + 1 {
                let p = PlanningParams {
                    packages: b,
                    steps,
                    toilets: 1,
                    clogging: false,
                };
                assert_eq!(value(&p), Some(steps >= b), "{p}");
            }
        }
    }

    #[test]
    fn two_toilets_halve_the_plan() {
        let p = PlanningParams {
            packages: 4,
            steps: 2,
            toilets: 2,
            clogging: false,
        };
        assert_eq!(value(&p), Some(true), "{p}");
        let p = PlanningParams {
            packages: 4,
            steps: 1,
            toilets: 2,
            clogging: false,
        };
        assert_eq!(value(&p), Some(false), "{p}");
    }

    #[test]
    fn clogging_doubles_the_plan() {
        // 2 parcels, 1 toilet, clogging: dunk at t0 and t2 → needs 3 steps.
        let base = PlanningParams {
            packages: 2,
            steps: 3,
            toilets: 1,
            clogging: true,
        };
        assert_eq!(base.optimal_steps(), 3);
        assert_eq!(value(&base), Some(true), "{base}");
        let tight = PlanningParams {
            steps: 2,
            ..base
        };
        assert_eq!(value(&tight), Some(false), "{tight}");
    }

    #[test]
    fn matches_naive_semantics_small() {
        let p = PlanningParams {
            packages: 2,
            steps: 2,
            toilets: 1,
            clogging: false,
        };
        let q = bomb_in_toilet(&p);
        assert_eq!(value(&p), Some(semantics::eval(&q)));
    }

    #[test]
    fn prefix_shape_is_conformant() {
        let p = PlanningParams {
            packages: 3,
            steps: 2,
            toilets: 1,
            clogging: false,
        };
        let q = bomb_in_toilet(&p);
        assert!(q.is_prenex());
        let blocks = q.prefix().linear_blocks();
        assert_eq!(blocks.len(), 3, "∃ plan ∀ armed ∃ aux");
        assert_eq!(blocks[0].0, Quantifier::Exists);
        assert_eq!(blocks[1].0, Quantifier::Forall);
    }
}
