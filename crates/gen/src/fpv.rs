//! The FPV suite: formal-property-verification-style non-prenex QBFs
//! (§VII-B).
//!
//! The paper's FPV instances come from model checking early requirements of
//! web-service compositions (Tropos, [9]/[29]); each model-checking problem
//! yields non-prenex QBFs. Those models are not available, so this module
//! generates a synthetic family with the structural signature the paper
//! attributes to FPV: a *shallow* quantifier tree — one shared existential
//! configuration block over several independent `∀ environment ∃ response`
//! subtrees (one per requirement branch), optionally one alternation
//! deeper. On such instances the PO/TO separation is real but less
//! dramatic than on NCF, and TO occasionally wins, which is exactly the
//! Fig. 4 picture.

use qbf_core::{Clause, Matrix, PrefixBuilder, Qbf, Quantifier, Var};
use crate::rng::Rng;

/// Parameters of the FPV-style generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpvParams {
    /// Shared existential configuration variables at the root.
    pub config_vars: u32,
    /// Number of independent requirement branches (subtrees).
    pub branches: u32,
    /// Alternation depth of each branch (1 = `∀∃`, 2 = `∀∃∀∃`).
    pub branch_depth: u32,
    /// Variables per block inside a branch.
    pub block_vars: u32,
    /// Clauses per branch.
    pub clauses_per_branch: u32,
    /// Literals per clause.
    pub lpc: u32,
}

impl FpvParams {
    /// A grid of settings around the phase transition (calibrated so runs
    /// range from trivial to near-timeout, with both TO and PO wins).
    pub fn grid() -> Vec<FpvParams> {
        let mut grid = Vec::new();
        for branches in [2, 3, 4] {
            for branch_depth in [1, 2] {
                for block_vars in [6, 8] {
                    for ratio in [8, 10] {
                        grid.push(FpvParams {
                            config_vars: 4,
                            branches,
                            branch_depth,
                            block_vars,
                            clauses_per_branch: ratio * block_vars * branch_depth,
                            lpc: 5,
                        });
                    }
                }
            }
        }
        grid
    }
}

impl std::fmt::Display for FpvParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fpv(cfg={}, br={}, depth={}, blk={}, cls={}, lpc={})",
            self.config_vars,
            self.branches,
            self.branch_depth,
            self.block_vars,
            self.clauses_per_branch,
            self.lpc
        )
    }
}

/// Generates one FPV-style instance (non-prenex).
///
/// # Examples
///
/// ```
/// use qbf_gen::{fpv, FpvParams};
/// let p = FpvParams { config_vars: 3, branches: 3, branch_depth: 1,
///                     block_vars: 2, clauses_per_branch: 6, lpc: 3 };
/// let q = fpv(&p, 11);
/// assert!(!q.is_prenex());
/// assert_eq!(q.prefix().roots().len(), 1);
/// assert_eq!(q.prefix().block_children(q.prefix().roots()[0]).len(), 3);
/// ```
pub fn fpv(params: &FpvParams, seed: u64) -> Qbf {
    assert!(params.config_vars >= 1 && params.block_vars >= 1 && params.lpc >= 2);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5bd1_e995_9d5c_8d1b);
    let mut next_var = 0usize;
    let mut fresh = |n: u32| -> Vec<Var> {
        let vars: Vec<Var> = (0..n as usize).map(|i| Var::new(next_var + i)).collect();
        next_var += n as usize;
        vars
    };

    let config = fresh(params.config_vars);
    // Reserve branch blocks: per branch, alternating ∀/∃ blocks.
    let mut branch_blocks: Vec<Vec<(Quantifier, Vec<Var>)>> = Vec::new();
    for _ in 0..params.branches {
        let mut blocks = Vec::new();
        for level in 0..(2 * params.branch_depth) {
            let quant = if level % 2 == 0 {
                Quantifier::Forall
            } else {
                Quantifier::Exists
            };
            blocks.push((quant, fresh(params.block_vars)));
        }
        branch_blocks.push(blocks);
    }

    // Clauses: per branch, mixing universal environment literals with
    // existential config/response literals (Chen–Interian style, keeping
    // the instances near the phase transition instead of trivially easy).
    let mut clauses = Vec::new();
    for blocks in &branch_blocks {
        let mut existentials: Vec<Var> = config.clone();
        let mut universals: Vec<Var> = Vec::new();
        let mut responses: Vec<Var> = Vec::new();
        for (q, vars) in blocks {
            if q.is_exists() {
                existentials.extend(vars.iter().copied());
                responses.extend(vars.iter().copied());
            } else {
                universals.extend(vars.iter().copied());
            }
        }
        let n_univ = (params.lpc / 2).max(1);
        let n_exist = (params.lpc - n_univ).max(1);
        for _ in 0..params.clauses_per_branch {
            let clause = loop {
                let mut lits = Vec::new();
                // one guaranteed response literal anchors the clause in the
                // branch's existential scope
                let v = responses[rng.gen_range(0..responses.len())];
                lits.push(v.lit(rng.gen_bool(0.5)));
                for _ in 1..n_exist {
                    let v = existentials[rng.gen_range(0..existentials.len())];
                    lits.push(v.lit(rng.gen_bool(0.5)));
                }
                for _ in 0..n_univ {
                    let v = universals[rng.gen_range(0..universals.len())];
                    lits.push(v.lit(rng.gen_bool(0.5)));
                }
                if let Ok(c) = Clause::new(lits) {
                    break c;
                }
            };
            clauses.push(clause);
        }
    }

    let mut builder = PrefixBuilder::new(next_var);
    let root = builder
        .add_root(Quantifier::Exists, config)
        .expect("fresh variables");
    for blocks in branch_blocks {
        let mut parent = root;
        for (quant, vars) in blocks {
            parent = builder
                .add_child(parent, quant, vars)
                .expect("fresh variables");
        }
    }
    let prefix = builder.finish().expect("valid tree");
    let matrix = Matrix::from_clauses(next_var, clauses);
    Qbf::new(prefix, matrix).expect("clauses mention bound variables only")
}

/// Draws `count` seeded instances for one parameter setting.
pub fn fpv_batch(params: &FpvParams, base_seed: u64, count: usize) -> Vec<Qbf> {
    (0..count as u64)
        .map(|i| fpv(params, base_seed.wrapping_add(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::semantics;
    use qbf_core::solver::{Solver, SolverConfig};

    fn small() -> FpvParams {
        FpvParams {
            config_vars: 2,
            branches: 2,
            branch_depth: 1,
            block_vars: 1,
            clauses_per_branch: 4,
            lpc: 3,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(fpv(&small(), 3), fpv(&small(), 3));
        assert_ne!(fpv(&small(), 3), fpv(&small(), 4));
    }

    #[test]
    fn shape() {
        let p = FpvParams {
            config_vars: 3,
            branches: 4,
            branch_depth: 2,
            block_vars: 2,
            clauses_per_branch: 5,
            lpc: 3,
        };
        let q = fpv(&p, 0);
        let prefix = q.prefix();
        assert_eq!(prefix.roots().len(), 1);
        let root = prefix.roots()[0];
        assert_eq!(prefix.block_children(root).len(), 4);
        assert_eq!(prefix.prefix_level(), 1 + 2 * p.branch_depth);
        assert_eq!(
            q.matrix().len(),
            (p.branches * p.clauses_per_branch) as usize
        );
    }

    #[test]
    fn solver_agrees_with_semantics() {
        for seed in 0..10 {
            let q = fpv(&small(), seed);
            let expected = semantics::eval(&q);
            for config in [SolverConfig::partial_order(), SolverConfig::basic()] {
                assert_eq!(
                    Solver::new(&q, config).solve().value(),
                    Some(expected),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn grid_is_nonempty() {
        assert!(FpvParams::grid().len() >= 20);
    }
}
