//! # qbf-gen
//!
//! Benchmark instance generators for the experimental suites of
//! *“Quantifier structure in search based procedures for QBFs”* (§VII):
//!
//! * [`ncf`] — nested-counterfactual-style non-prenex QBFs
//!   (〈DEP, VAR, CLS, LPC〉 parameterization of §VII-A);
//! * [`fpv`] — formal-property-verification-style shallow non-prenex QBFs
//!   (§VII-B);
//! * [`rand_qbf`] — random prenex QBFs, stratified fixed-clause-length
//!   model with latent locality (the random part of the PROB class of
//!   §VII-D);
//! * [`bomb_in_toilet`] — conformant planning QBFs (the structured part of
//!   the PROB class: reference 36 of the paper);
//! * [`fixed`] — structured prenex QBFs hiding independent groups (the
//!   FIXED class of §VII-D).
//!
//! All generators are deterministic per seed.
//!
//! # Examples
//!
//! ```
//! use qbf_gen::{ncf, NcfParams};
//! let q = ncf(&NcfParams { dep: 4, var: 2, cls_ratio: 2, lpc: 3 }, 42);
//! assert!(!q.is_prenex());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fixed;
mod fpv;
mod ncf;
mod planning;
mod rand_qbf;
pub mod rng;

pub use fixed::{fixed, fixed_batch, FixedInstance, FixedParams};
pub use fpv::{fpv, fpv_batch, FpvParams};
pub use ncf::{ncf, ncf_batch, NcfParams};
pub use planning::{bomb_in_toilet, PlanningParams};
pub use rand_qbf::{rand_batch, rand_qbf, RandParams};
