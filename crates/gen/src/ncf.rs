//! The NCF suite: nested-counterfactual-style non-prenex QBFs (§VII-A).
//!
//! The paper uses the generator of Egly, Seidl, Tompits, Woltran and Zolda
//! [12], which encodes nested counterfactual reasoning problems into
//! non-prenex QBFs parameterized by 〈DEP, VAR, CLS, LPC〉. The original
//! tool is not available; this module re-implements the published
//! parameterization: instances are quantifier *trees* of alternation depth
//! `DEP` whose scopes hold `VAR` fresh variables each, with `CLS/VAR`
//! random clauses of `LPC` literals attached per scope, drawn from the
//! variables visible on the scope's root path. This preserves what the
//! paper's experiment measures: deep non-prenex trees whose sibling scopes
//! are `≺`-incomparable, which a prenexing strategy must serialize.

use qbf_core::{Clause, Matrix, PrefixBuilder, Qbf, Quantifier, Var};
use crate::rng::Rng;

/// Parameters of the NCF generator, mirroring 〈DEP, VAR, CLS, LPC〉.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NcfParams {
    /// Alternation depth of the quantifier tree (the paper fixes 6).
    pub dep: u32,
    /// Variables per scope (the paper varies 4, 8, 16).
    pub var: u32,
    /// Clauses per scope = `cls_ratio * var` (the paper varies the ratio
    /// CLS/VAR in 1..=5).
    pub cls_ratio: u32,
    /// Literals per clause (the paper varies 3..=6).
    pub lpc: u32,
}

impl NcfParams {
    /// The paper's full parameter grid (DEP = 6).
    pub fn paper_grid() -> Vec<NcfParams> {
        let mut grid = Vec::new();
        for var in [4, 8, 16] {
            for cls_ratio in 1..=5 {
                for lpc in 3..=6 {
                    grid.push(NcfParams {
                        dep: 6,
                        var,
                        cls_ratio,
                        lpc,
                    });
                }
            }
        }
        grid
    }

    /// A downscaled grid for quick runs: around the phase transition at
    /// DEP = 6 with small scopes.
    pub fn small_grid() -> Vec<NcfParams> {
        let mut grid = Vec::new();
        for (var, cls_ratio) in [(4, 3), (4, 4), (4, 5), (8, 2), (8, 3), (8, 4)] {
            grid.push(NcfParams {
                dep: 6,
                var,
                cls_ratio,
                lpc: 5,
            });
        }
        grid
    }
}

impl std::fmt::Display for NcfParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ncf(dep={}, var={}, cls/var={}, lpc={})",
            self.dep, self.var, self.cls_ratio, self.lpc
        )
    }
}

struct Gen<'a> {
    rng: Rng,
    params: &'a NcfParams,
    next_var: usize,
    clauses: Vec<Clause>,
}

impl Gen<'_> {
    fn fresh_block(&mut self) -> Vec<Var> {
        let vars: Vec<Var> = (0..self.params.var)
            .map(|i| Var::new(self.next_var + i as usize))
            .collect();
        self.next_var += self.params.var as usize;
        vars
    }

    /// Generates clauses for an existential scope: each clause mixes
    /// `⌊lpc/2⌋` universal literals from the ancestor ∀ blocks with
    /// existential literals from the path (at least one from the current
    /// block), the Chen–Interian recipe that puts random QBFs near their
    /// phase transition. A clause without existential literals would be
    /// contradictory by Lemma 4, which real encodings do not produce.
    fn emit_clauses(&mut self, current: &[Var], path_e: &[Var], path_a: &[Var]) {
        if path_a.is_empty() {
            // The root scope has no universal ancestors; its variables are
            // constrained through the descendant scopes' clauses instead
            // (purely local root clauses make instances trivially false).
            return;
        }
        let n_univ = (self.params.lpc / 2).max(1);
        let n_exist = (self.params.lpc - n_univ).max(1);
        let n_clauses = self.params.cls_ratio * self.params.var;
        for _ in 0..n_clauses {
            let clause = loop {
                let mut lits = Vec::new();
                // One guaranteed literal over the current block.
                let v = current[self.rng.gen_range(0..current.len())];
                lits.push(v.lit(self.rng.gen_bool(0.5)));
                for _ in 1..n_exist {
                    let v = path_e[self.rng.gen_range(0..path_e.len())];
                    lits.push(v.lit(self.rng.gen_bool(0.5)));
                }
                for _ in 0..n_univ {
                    let v = path_a[self.rng.gen_range(0..path_a.len())];
                    lits.push(v.lit(self.rng.gen_bool(0.5)));
                }
                if let Ok(c) = Clause::new(lits) {
                    break c;
                }
            };
            self.clauses.push(clause);
        }
    }
}

/// Generates one NCF instance (non-prenex).
///
/// # Examples
///
/// ```
/// use qbf_gen::{ncf, NcfParams};
/// let q = ncf(&NcfParams { dep: 4, var: 2, cls_ratio: 2, lpc: 3 }, 7);
/// assert!(!q.is_prenex());
/// assert_eq!(q.prefix().prefix_level(), 5); // dep alternations below the root
/// ```
pub fn ncf(params: &NcfParams, seed: u64) -> Qbf {
    assert!(params.var >= 1 && params.lpc >= 1, "degenerate parameters");
    // Upper bound on variables: ∃-levels branch in two, ∀-levels chain.
    let mut gen = Gen {
        rng: Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        params,
        next_var: 0,
        clauses: Vec::new(),
    };

    // First pass: reserve variables and record the tree shape.
    struct Node {
        vars: Vec<Var>,
        quant: Quantifier,
        children: Vec<Node>,
    }
    fn build(gen: &mut Gen<'_>, quant: Quantifier, depth_left: u32) -> Node {
        let vars = gen.fresh_block();
        let mut children = Vec::new();
        if depth_left > 0 {
            // Existential scopes branch (the ∧ of counterfactual
            // antecedent/consequent encodings); universal scopes chain.
            let fanout = if quant.is_exists() { 2 } else { 1 };
            for _ in 0..fanout {
                children.push(build(gen, quant.dual(), depth_left - 1));
            }
        }
        Node {
            vars,
            quant,
            children,
        }
    }
    let root = build(&mut gen, Quantifier::Exists, params.dep);

    // Second pass: emit clauses per existential scope from the visible
    // path, split into existential and universal ancestors.
    fn walk(gen: &mut Gen<'_>, node: &Node, path_e: &mut Vec<Var>, path_a: &mut Vec<Var>) {
        let existential = node.quant == Quantifier::Exists;
        if existential {
            path_e.extend(node.vars.iter().copied());
            gen.emit_clauses(&node.vars, path_e, path_a);
        } else {
            path_a.extend(node.vars.iter().copied());
        }
        for c in &node.children {
            walk(gen, c, path_e, path_a);
        }
        if existential {
            path_e.truncate(path_e.len() - node.vars.len());
        } else {
            path_a.truncate(path_a.len() - node.vars.len());
        }
    }
    let mut path_e = Vec::new();
    let mut path_a = Vec::new();
    walk(&mut gen, &root, &mut path_e, &mut path_a);

    // Third pass: build the prefix.
    let mut builder = PrefixBuilder::new(gen.next_var);
    fn emit(
        builder: &mut PrefixBuilder,
        node: &Node,
        parent: Option<qbf_core::BlockId>,
    ) {
        let id = match parent {
            None => builder.add_root(node.quant, node.vars.iter().copied()),
            Some(p) => builder.add_child(p, node.quant, node.vars.iter().copied()),
        }
        .expect("fresh variables bound once");
        for c in &node.children {
            emit(builder, c, Some(id));
        }
    }
    emit(&mut builder, &root, None);
    let prefix = builder.finish().expect("valid tree");
    let matrix = Matrix::from_clauses(gen.next_var, std::mem::take(&mut gen.clauses));
    Qbf::new(prefix, matrix).expect("clauses mention bound variables only")
}

/// Convenience: draws `count` seeded instances for one parameter setting.
pub fn ncf_batch(params: &NcfParams, base_seed: u64, count: usize) -> Vec<Qbf> {
    (0..count as u64)
        .map(|i| ncf(params, base_seed.wrapping_add(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::semantics;
    use qbf_core::solver::{Solver, SolverConfig};

    #[test]
    fn deterministic_per_seed() {
        let p = NcfParams {
            dep: 4,
            var: 2,
            cls_ratio: 2,
            lpc: 3,
        };
        assert_eq!(ncf(&p, 42), ncf(&p, 42));
        assert_ne!(ncf(&p, 42), ncf(&p, 43));
    }

    #[test]
    fn shape_matches_parameters() {
        let p = NcfParams {
            dep: 4,
            var: 3,
            cls_ratio: 2,
            lpc: 3,
        };
        let q = ncf(&p, 1);
        assert!(!q.is_prenex());
        assert_eq!(q.prefix().prefix_level(), p.dep + 1);
        // every scope holds `var` variables
        for b in q.prefix().blocks() {
            assert_eq!(q.prefix().block_vars(b).len(), p.var as usize);
        }
        // clause width
        for c in q.matrix().iter() {
            assert!(c.len() <= p.lpc as usize);
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn no_contradictory_clauses() {
        let p = NcfParams {
            dep: 6,
            var: 4,
            cls_ratio: 3,
            lpc: 4,
        };
        let q = ncf(&p, 99);
        for c in q.matrix().iter() {
            assert!(
                c.iter().any(|l| q.prefix().is_existential(l.var())),
                "contradictory clause generated"
            );
        }
    }

    #[test]
    fn solvable_and_consistent_small() {
        let p = NcfParams {
            dep: 3,
            var: 1,
            cls_ratio: 2,
            lpc: 2,
        };
        for seed in 0..10 {
            let q = ncf(&p, seed);
            let expected = semantics::eval(&q);
            let got = Solver::new(&q, SolverConfig::partial_order())
                .solve()
                .value();
            assert_eq!(got, Some(expected), "seed {seed}");
        }
    }

    #[test]
    fn batch_produces_distinct_instances() {
        let p = NcfParams {
            dep: 4,
            var: 2,
            cls_ratio: 1,
            lpc: 3,
        };
        let batch = ncf_batch(&p, 5, 4);
        assert_eq!(batch.len(), 4);
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    fn paper_grid_size() {
        // 3 VAR values × 5 ratios × 4 LPC values.
        assert_eq!(NcfParams::paper_grid().len(), 60);
        assert!(NcfParams::paper_grid().iter().all(|p| p.dep == 6));
    }
}
