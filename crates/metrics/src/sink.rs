//! The zero-cost engine hook: [`MetricsSink`].
//!
//! Mirrors the `SearchObserver` / `ProofSink` pattern from `qbf-core`:
//! the solver takes a `M: MetricsSink` type parameter defaulting to
//! [`NoopMetrics`], guards every hook site with `if M::ENABLED`, and the
//! hooks themselves are empty-bodied `#[inline]` defaults — so with the
//! default sink monomorphization deletes the instrumentation entirely
//! and the hot path compiles to the same code as before this module
//! existed (pinned by a `Stats`-bit-identity test in `qbf-core`).
//!
//! The engine never reads a clock: it only announces *what* is happening
//! ([`Phase`] boundaries) and *how big* things are ([`EngineGauge`]
//! samples). [`EngineMetrics`] is the live implementation that turns
//! phase boundaries into durations by reading its own [`Clock`] — which
//! is how `ManualClock` determinism reaches engine timing without the
//! engine knowing about time at all.

use crate::clock::Clock;
use crate::hist::LogHistogram;

/// A timed region of the search. Phases never nest in the engine, and
/// start/end always pair up within one search.
///
/// The first five phases belong to the search engine (`qbf-core`); the
/// last two are emitted by the expansion engine (`qbf-expand`) — one
/// engine never emits the other's phases, so the shared histogram space
/// stays disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Boolean/quantifier constraint propagation to fixpoint.
    Propagate,
    /// Clause learning from a conflicting clause.
    ConflictAnalysis,
    /// Cube learning from a solution / satisfied state.
    SolutionAnalysis,
    /// Learned-constraint database reduction.
    ReduceDb,
    /// Arena compaction.
    Compaction,
    /// One (possibly partial) SAT-oracle call of the expansion engine.
    SatSolve,
    /// One abstraction-refinement round of the expansion engine
    /// (candidate/counterexample extraction plus instantiation).
    Refine,
}

impl Phase {
    /// All phases, in render order.
    pub const ALL: [Phase; 7] = [
        Phase::Propagate,
        Phase::ConflictAnalysis,
        Phase::SolutionAnalysis,
        Phase::ReduceDb,
        Phase::Compaction,
        Phase::SatSolve,
        Phase::Refine,
    ];

    /// Stable snake_case name used in metric series.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Propagate => "propagate",
            Phase::ConflictAnalysis => "conflict_analysis",
            Phase::SolutionAnalysis => "solution_analysis",
            Phase::ReduceDb => "reduce_db",
            Phase::Compaction => "compaction",
            Phase::SatSolve => "sat_solve",
            Phase::Refine => "refine",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Phase::Propagate => 0,
            Phase::ConflictAnalysis => 1,
            Phase::SolutionAnalysis => 2,
            Phase::ReduceDb => 3,
            Phase::Compaction => 4,
            Phase::SatSolve => 5,
            Phase::Refine => 6,
        }
    }
}

/// A resource level the engine samples at decision boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineGauge {
    /// Bytes held by the constraint arena.
    ArenaBytes,
    /// Learned constraints (clauses + cubes) currently in the database.
    LearnedConstraints,
    /// Assignment-trail depth.
    TrailDepth,
    /// Expansion-engine abstraction size: conjuncts across both dual
    /// abstractions (|A| + |B|), sampled once per refinement round.
    AbstractionConjuncts,
}

impl EngineGauge {
    /// All gauges, in render order.
    pub const ALL: [EngineGauge; 4] = [
        EngineGauge::ArenaBytes,
        EngineGauge::LearnedConstraints,
        EngineGauge::TrailDepth,
        EngineGauge::AbstractionConjuncts,
    ];

    /// Stable snake_case name used in metric series.
    pub fn name(self) -> &'static str {
        match self {
            EngineGauge::ArenaBytes => "arena_bytes",
            EngineGauge::LearnedConstraints => "learned_constraints",
            EngineGauge::TrailDepth => "trail_depth",
            EngineGauge::AbstractionConjuncts => "abstraction_conjuncts",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            EngineGauge::ArenaBytes => 0,
            EngineGauge::LearnedConstraints => 1,
            EngineGauge::TrailDepth => 2,
            EngineGauge::AbstractionConjuncts => 3,
        }
    }
}

/// Receiver for engine instrumentation events. All methods default to
/// empty inline bodies; `ENABLED` lets the engine skip even the argument
/// computation for gauge samples when the sink is a no-op.
pub trait MetricsSink {
    /// `false` compiles every hook site out of the engine.
    const ENABLED: bool;

    /// The engine enters `phase`.
    #[inline]
    fn phase_start(&mut self, _phase: Phase) {}

    /// The engine leaves `phase` (always pairs with the last start).
    #[inline]
    fn phase_end(&mut self, _phase: Phase) {}

    /// A resource gauge observed at a decision boundary.
    #[inline]
    fn sample(&mut self, _gauge: EngineGauge, _value: u64) {}
}

/// The default sink: compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopMetrics;

impl MetricsSink for NoopMetrics {
    const ENABLED: bool = false;
}

impl<M: MetricsSink> MetricsSink for &mut M {
    const ENABLED: bool = true;

    #[inline]
    fn phase_start(&mut self, phase: Phase) {
        (**self).phase_start(phase)
    }

    #[inline]
    fn phase_end(&mut self, phase: Phase) {
        (**self).phase_end(phase)
    }

    #[inline]
    fn sample(&mut self, gauge: EngineGauge, value: u64) {
        (**self).sample(gauge, value)
    }
}

/// The live sink: per-phase duration histograms (nanoseconds, from its
/// own [`Clock`]) and last/peak tracking per gauge.
#[derive(Debug)]
pub struct EngineMetrics<C: Clock> {
    clock: C,
    open: [u64; Phase::ALL.len()],
    durations: [LogHistogram; Phase::ALL.len()],
    last: [u64; EngineGauge::ALL.len()],
    peak: [u64; EngineGauge::ALL.len()],
}

impl<C: Clock> EngineMetrics<C> {
    /// A sink timing against `clock`.
    pub fn new(clock: C) -> Self {
        EngineMetrics {
            clock,
            open: [0; Phase::ALL.len()],
            durations: Default::default(),
            last: [0; EngineGauge::ALL.len()],
            peak: [0; EngineGauge::ALL.len()],
        }
    }

    /// Duration histogram (ns) for `phase`.
    pub fn phase_hist(&self, phase: Phase) -> &LogHistogram {
        &self.durations[phase.index()]
    }

    /// Most recent sample of `gauge`.
    pub fn gauge_last(&self, gauge: EngineGauge) -> u64 {
        self.last[gauge.index()]
    }

    /// Largest sample of `gauge` seen so far.
    pub fn gauge_peak(&self, gauge: EngineGauge) -> u64 {
        self.peak[gauge.index()]
    }

    /// One-line deterministic JSON snapshot of every phase and gauge,
    /// matching the registry snapshot dialect. Deterministic whenever
    /// the clock is (i.e. under `ManualClock`).
    pub fn snapshot_json(&self) -> String {
        let mut parts = Vec::new();
        for p in Phase::ALL {
            let h = self.phase_hist(p);
            parts.push(format!(
                "\"phase_{}_ns\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                p.name(),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99)
            ));
        }
        for g in EngineGauge::ALL {
            parts.push(format!(
                "\"gauge_{n}\":{},\"gauge_{n}_peak\":{}",
                self.gauge_last(g),
                self.gauge_peak(g),
                n = g.name()
            ));
        }
        format!("{{{}}}", parts.join(","))
    }
}

impl<C: Clock> MetricsSink for EngineMetrics<C> {
    const ENABLED: bool = true;

    #[inline]
    fn phase_start(&mut self, phase: Phase) {
        self.open[phase.index()] = self.clock.now_ns();
    }

    #[inline]
    fn phase_end(&mut self, phase: Phase) {
        let now = self.clock.now_ns();
        let dur = now.saturating_sub(self.open[phase.index()]);
        self.durations[phase.index()].record(dur);
    }

    #[inline]
    fn sample(&mut self, gauge: EngineGauge, value: u64) {
        let i = gauge.index();
        self.last[i] = value;
        self.peak[i] = self.peak[i].max(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn noop_is_disabled_and_forwarding_is_enabled() {
        // Compile-time contract, pinned in const blocks so a flipped
        // ENABLED fails the build, not just the test.
        const { assert!(!NoopMetrics::ENABLED) };
        const { assert!(<&mut NoopMetrics as MetricsSink>::ENABLED) };
        const { assert!(<EngineMetrics<ManualClock> as MetricsSink>::ENABLED) };
    }

    #[test]
    fn phase_spans_record_clock_deltas() {
        let mut m = EngineMetrics::new(ManualClock::new(10));
        m.phase_start(Phase::Propagate); // read 0
        m.phase_end(Phase::Propagate); // read 10 → dur 10
        m.phase_start(Phase::Propagate); // read 20
        m.phase_end(Phase::Propagate); // read 30 → dur 10
        m.phase_start(Phase::ReduceDb); // read 40
        m.phase_end(Phase::ReduceDb); // read 50 → dur 10
        assert_eq!(m.phase_hist(Phase::Propagate).count(), 2);
        assert_eq!(m.phase_hist(Phase::Propagate).sum(), 20);
        assert_eq!(m.phase_hist(Phase::ReduceDb).count(), 1);
        assert_eq!(m.phase_hist(Phase::ConflictAnalysis).count(), 0);
    }

    #[test]
    fn gauges_track_last_and_peak() {
        let mut m = EngineMetrics::new(ManualClock::new(1));
        m.sample(EngineGauge::TrailDepth, 5);
        m.sample(EngineGauge::TrailDepth, 9);
        m.sample(EngineGauge::TrailDepth, 2);
        assert_eq!(m.gauge_last(EngineGauge::TrailDepth), 2);
        assert_eq!(m.gauge_peak(EngineGauge::TrailDepth), 9);
        assert_eq!(m.gauge_peak(EngineGauge::ArenaBytes), 0);
    }

    #[test]
    fn snapshot_is_deterministic_under_manual_clock() {
        let run = || {
            let mut m = EngineMetrics::new(ManualClock::new(3));
            for _ in 0..4 {
                m.phase_start(Phase::Propagate);
                m.phase_end(Phase::Propagate);
            }
            m.sample(EngineGauge::ArenaBytes, 1 << 20);
            m.snapshot_json()
        };
        assert_eq!(run(), run());
        assert!(run().contains("\"phase_propagate_ns\":{\"count\":4"));
        assert!(run().contains("\"gauge_arena_bytes\":1048576"));
    }

    #[test]
    fn forwarding_impl_reaches_the_underlying_sink() {
        fn drive<M: MetricsSink>(mut sink: M) {
            sink.phase_start(Phase::Compaction);
            sink.phase_end(Phase::Compaction);
        }
        let mut m = EngineMetrics::new(ManualClock::new(1));
        drive(&mut m);
        assert_eq!(m.phase_hist(Phase::Compaction).count(), 1);
    }
}
