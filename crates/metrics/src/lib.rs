//! Hermetic service-grade metrics for the QBF workspace.
//!
//! Four pieces, no external dependencies:
//!
//! * [`clock`] — the [`Clock`] abstraction separating production wall
//!   time ([`WallClock`]) from byte-deterministic test time
//!   ([`ManualClock`]).
//! * [`hist`] — [`LogHistogram`], a fixed-shape log-bucketed histogram
//!   with exact-rank percentile reads.
//! * [`registry`] — [`Registry`], an insertion-ordered store of named
//!   counters/gauges/histograms rendering to Prometheus text exposition
//!   and one-line JSON snapshots.
//! * [`sink`] — [`MetricsSink`], the zero-cost-when-disabled engine
//!   hook (mirroring `SearchObserver`/`ProofSink` in `qbf-core`), with
//!   [`NoopMetrics`] and the live [`EngineMetrics`].
//!
//! The crate-wide invariant: **every render is a pure function of the
//! recorded values**, and under [`ManualClock`] the recorded values are
//! a pure function of the event sequence — so a deterministic engine
//! plus a deterministic clock yields byte-identical metrics artifacts,
//! which CI pins with `cmp`.

pub mod clock;
pub mod hist;
pub mod registry;
pub mod sink;

pub use clock::{Clock, ManualClock, WallClock};
pub use hist::LogHistogram;
pub use registry::{CounterId, GaugeId, HistId, Registry};
pub use sink::{EngineGauge, EngineMetrics, MetricsSink, NoopMetrics, Phase};
