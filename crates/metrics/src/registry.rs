//! An insertion-ordered registry of named counters, gauges and
//! histograms with two deterministic render targets.
//!
//! The registry is deliberately dumb: typed handles (`CounterId`,
//! `GaugeId`, `HistId`) are indices into flat `Vec`s, registration order
//! is render order, and there is no interior mutability, sharding or
//! locking — the solver is single-threaded per query and `qbfserve`
//! owns its registry outright. What the registry *does* guarantee is
//! that rendering is a pure function of the recorded values:
//!
//! * [`Registry::render_prometheus`] emits the Prometheus text
//!   exposition format (`# HELP` / `# TYPE` plus cumulative
//!   `_bucket{le="…"}`, `_sum`, `_count` series for histograms), and
//! * [`Registry::snapshot_json`] emits a single-line JSON object that
//!   `qbf_bench::json::parse` round-trips.
//!
//! Both outputs are byte-deterministic for equal registry contents,
//! which is what lets CI replay a `ManualClock` serve session twice and
//! `cmp` the snapshots.

use crate::hist::LogHistogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Debug)]
struct Named<T> {
    name: &'static str,
    help: &'static str,
    value: T,
}

/// See the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<Named<u64>>,
    gauges: Vec<Named<u64>>,
    hists: Vec<Named<LogHistogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a monotonically increasing counter.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> CounterId {
        self.counters.push(Named { name, help, value: 0 });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (a settable level).
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> GaugeId {
        self.gauges.push(Named { name, help, value: 0 });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a log-bucketed histogram.
    pub fn histogram(&mut self, name: &'static str, help: &'static str) -> HistId {
        self.hists.push(Named {
            name,
            help,
            value: LogHistogram::new(),
        });
        HistId(self.hists.len() - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0].value = v;
    }

    /// Raises a gauge to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, v: u64) {
        let g = &mut self.gauges[id.0].value;
        *g = (*g).max(v);
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].value.record(v);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].value
    }

    /// Read access to a histogram.
    pub fn hist(&self, id: HistId) -> &LogHistogram {
        &self.hists[id.0].value
    }

    /// Renders the Prometheus text exposition format. Ends with a
    /// newline; byte-deterministic for equal contents.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!(
                "# HELP {n} {h}\n# TYPE {n} counter\n{n} {v}\n",
                n = c.name,
                h = c.help,
                v = c.value
            ));
        }
        for g in &self.gauges {
            out.push_str(&format!(
                "# HELP {n} {h}\n# TYPE {n} gauge\n{n} {v}\n",
                n = g.name,
                h = g.help,
                v = g.value
            ));
        }
        for h in &self.hists {
            out.push_str(&format!(
                "# HELP {n} {h}\n# TYPE {n} histogram\n",
                n = h.name,
                h = h.help
            ));
            for (le, cum) in h.value.cumulative_buckets() {
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{le}\"}} {cum}\n",
                    n = h.name
                ));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {c}\n{n}_sum {s}\n{n}_count {c}\n",
                n = h.name,
                s = h.value.sum(),
                c = h.value.count()
            ));
        }
        out
    }

    /// Renders a one-line JSON snapshot: counters and gauges as numbers,
    /// each histogram as `{"count","sum","min","max","p50","p90","p99"}`.
    /// Parsable by `qbf_bench::json::parse`; byte-deterministic for equal
    /// contents. No trailing newline.
    pub fn snapshot_json(&self) -> String {
        let mut parts = Vec::new();
        for c in &self.counters {
            parts.push(format!("\"{}\":{}", c.name, c.value));
        }
        for g in &self.gauges {
            parts.push(format!("\"{}\":{}", g.name, g.value));
        }
        for h in &self.hists {
            let v = &h.value;
            parts.push(format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.name,
                v.count(),
                v.sum(),
                v.min(),
                v.max(),
                v.quantile(0.5),
                v.quantile(0.9),
                v.quantile(0.99)
            ));
        }
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        let c = r.counter("qbf_queries_total", "Queries served");
        let g = r.gauge("qbf_arena_bytes", "Arena footprint");
        let h = r.histogram("qbf_latency_ns", "Per-query latency");
        r.inc(c, 3);
        r.set(g, 4096);
        r.set_max(g, 1024); // lower: no-op
        for v in [10, 100, 1000] {
            r.observe(h, v);
        }
        r
    }

    #[test]
    fn handles_read_back() {
        let mut r = Registry::new();
        let c = r.counter("c", "a counter");
        let g = r.gauge("g", "a gauge");
        let h = r.histogram("h", "a histogram");
        r.inc(c, 2);
        r.inc(c, 2);
        r.set(g, 7);
        r.set_max(g, 9);
        r.observe(h, 42);
        assert_eq!(r.counter_value(c), 4);
        assert_eq!(r.gauge_value(g), 9);
        assert_eq!(r.hist(h).count(), 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# TYPE qbf_queries_total counter\nqbf_queries_total 3\n"));
        assert!(text.contains("# TYPE qbf_arena_bytes gauge\nqbf_arena_bytes 4096\n"));
        assert!(text.contains("# TYPE qbf_latency_ns histogram\n"));
        assert!(text.contains("qbf_latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("qbf_latency_ns_sum 1110\n"));
        assert!(text.contains("qbf_latency_ns_count 3\n"));
        // Cumulative buckets are non-decreasing and end at count.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("qbf_latency_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cums.last(), Some(&3));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn snapshot_is_one_deterministic_json_line() {
        let a = sample_registry().snapshot_json();
        let b = sample_registry().snapshot_json();
        assert_eq!(a, b, "equal contents must render identical bytes");
        assert!(!a.contains('\n'));
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"qbf_queries_total\":3"));
        assert!(a.contains("\"count\":3"));
        assert!(a.contains("\"p50\":"));
    }
}
