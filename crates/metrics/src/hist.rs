//! A log-bucketed histogram of `u64` samples with exact-rank percentile
//! reads.
//!
//! Bucketing is by bit width: sample `v` lands in bucket
//! `64 - v.leading_zeros()` (bucket 0 holds exactly the value 0), so
//! bucket `i > 0` covers `[2^(i-1), 2^i - 1]` — 65 fixed buckets spanning
//! the full `u64` range with relative error bounded by 2×. Recording is
//! O(1) and allocation-free; the whole histogram is 65 counters plus
//! count/sum/min/max, cheap enough to keep per phase and per query
//! stream.
//!
//! Percentile reads are **exact rank selections** over the recorded
//! multiset at bucket resolution: [`LogHistogram::quantile`] walks the
//! cumulative counts to the bucket holding the ⌈q·n⌉-th smallest sample
//! and returns that bucket's upper bound (clamped to the observed
//! maximum, so `quantile(1.0) == max()` exactly). No sampling, decay or
//! approximation beyond the bucket width is involved, which keeps reads
//! deterministic: the same sample multiset always renders the same
//! percentiles — the property the `qbfserve` snapshot `cmp` gate pins.

/// Number of buckets: one for 0, one per bit width 1..=64.
pub const NUM_BUCKETS: usize = 65;

/// A fixed-shape log-bucketed histogram. See the module docs.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket index of a sample.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (0 for bucket 0).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0).
#[inline]
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the ⌈q·count⌉-th smallest sample, clamped to the observed
    /// min/max (so `quantile(0.0) == min()` and `quantile(1.0) == max()`
    /// exactly). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(lower, upper, count)` triples
    /// in increasing value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
    }

    /// Cumulative counts per bucket upper bound, Prometheus style:
    /// `(le, cumulative_count)` for every non-empty bucket, in increasing
    /// order. The caller appends the implicit `+Inf` bucket (`count()`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_of(bucket_lower(i)), i, "lower bound of {i}");
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound of {i}");
        }
    }

    #[test]
    fn counts_sums_and_extremes() {
        let mut h = LogHistogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.quantile(0.5)), (0, 0, 0, 0));
        for v in [0, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_exact_rank_selections_at_bucket_resolution() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // rank 50 → value 50 → bucket [32,63] → upper bound 63
        assert_eq!(h.quantile(0.5), 63);
        // rank 90 → value 90 → bucket [64,127] → clamped to max 100
        assert_eq!(h.quantile(0.9), 100);
        assert_eq!(h.quantile(0.0), 1, "q0 is the min");
        assert_eq!(h.quantile(1.0), 100, "q1 is the max");
        // The selected bound always brackets the true rank value within 2x.
        for (q, truth) in [(0.25, 25u64), (0.75, 75u64)] {
            let got = h.quantile(q);
            assert!(got >= truth && got <= truth * 2, "q{q}: {got} vs {truth}");
        }
    }

    #[test]
    fn cumulative_buckets_end_at_count() {
        let mut h = LogHistogram::new();
        for v in [3, 3, 900, 70_000] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().map(|&(_, c)| c), Some(h.count()));
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(h.nonzero_buckets().count(), cum.len());
    }

    #[test]
    fn same_samples_same_reads() {
        let feed = |h: &mut LogHistogram| {
            for v in [9u64, 81, 729, 6561, 59049] {
                h.record(v);
            }
        };
        let (mut a, mut b) = (LogHistogram::new(), LogHistogram::new());
        feed(&mut a);
        feed(&mut b);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
        assert_eq!(a.cumulative_buckets(), b.cumulative_buckets());
    }
}
