//! The time source behind every duration metric.
//!
//! Metrics that touch wall-clock time are inherently non-deterministic,
//! which conflicts with the repo-wide byte-determinism contract (committed
//! artifacts, CI `cmp` gates, replayable `qbfserve` transcripts). The
//! [`Clock`] trait keeps the conflict contained: production code runs on
//! [`WallClock`]; every test and every CI determinism gate runs on
//! [`ManualClock`], whose reads are a pure function of the call sequence.
//! Wall-clock values therefore never enter a deterministic artifact — the
//! artifact is either produced under `ManualClock` or keeps timing fields
//! out of the committed bytes (the same discipline `BENCH_qbf.json`
//! already follows for `time_ms`).

use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// `now_ns` takes `&mut self` so deterministic clocks can advance
/// internal state per read without interior mutability.
pub trait Clock: std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin. Monotone
    /// non-decreasing across calls.
    fn now_ns(&mut self) -> u64;
}

impl<C: Clock + ?Sized> Clock for Box<C> {
    fn now_ns(&mut self) -> u64 {
        (**self).now_ns()
    }
}

/// Production clock: [`Instant`] elapsed time since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&mut self) -> u64 {
        // Saturates after ~584 years of process uptime; fine.
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Deterministic clock for tests and CI gates: every read returns the
/// current value and then advances it by a fixed step, so the observed
/// timeline is a pure function of how many reads happened — which, for a
/// deterministic engine, is itself a pure function of the input. Two
/// identical runs therefore produce **byte-identical** duration metrics.
#[derive(Debug, Clone)]
pub struct ManualClock {
    now: u64,
    step: u64,
}

impl ManualClock {
    /// Starts at 0, advancing `step` nanoseconds per read.
    pub fn new(step: u64) -> Self {
        ManualClock { now: 0, step }
    }

    /// Explicitly advances the clock by `ns` (on top of the per-read step).
    pub fn advance(&mut self, ns: u64) {
        self.now = self.now.saturating_add(ns);
    }

    /// The current value without advancing.
    pub fn peek(&self) -> u64 {
        self.now
    }
}

impl Clock for ManualClock {
    fn now_ns(&mut self) -> u64 {
        let t = self.now;
        self.now = self.now.saturating_add(self.step);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let mut c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_a_pure_function_of_the_read_count() {
        let mut c = ManualClock::new(7);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 7);
        c.advance(100);
        assert_eq!(c.peek(), 114);
        assert_eq!(c.now_ns(), 114);
        // A fresh clock replays the same timeline.
        let mut d = ManualClock::new(7);
        assert_eq!((d.now_ns(), d.now_ns()), (0, 7));
    }
}
