//! Mutation fuzzing of the certificate checker: take certificates the
//! solver actually emits, corrupt them in targeted ways, and require the
//! checker to reject each corruption with the *specific* rule violation —
//! not merely "some error". A checker that rejects everything would pass
//! a weaker test; pinning error codes shows each rule fires for the
//! defect it guards against.

use std::collections::HashMap;

use qbf_core::proof::ProofLog;
use qbf_core::solver::{Solver, SolverConfig};
use qbf_core::{Qbf, Var};
use qbf_gen::rng::Rng;
use qbf_gen::{rand_qbf, RandParams};
use qbf_proof::{check_proof, ErrorCode};

/// Derivation lines replayed from the proof text: id → (DIMACS literal
/// set, is-cube). Mirrors the checker's semantics just enough for the
/// mutations to know what a line contains.
fn replay(qbf: &Qbf, proof: &str) -> HashMap<u64, (Vec<i64>, bool)> {
    let mut map: HashMap<u64, (Vec<i64>, bool)> = HashMap::new();
    for (i, c) in qbf.matrix().iter().enumerate() {
        let lits = c.lits().iter().map(|l| l.to_dimacs()).collect();
        map.insert(i as u64 + 1, (lits, false));
    }
    for line in proof.lines() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let id = |t: &str| t.parse::<u64>().unwrap();
        let lit = |t: &str| t.parse::<i64>().unwrap();
        match toks.first() {
            Some(&"i") => {
                let lits = toks[2..toks.len() - 1].iter().map(|t| lit(t)).collect();
                map.insert(id(toks[1]), (lits, true));
            }
            Some(&"l") => {
                let lits = toks[3..toks.len() - 1].iter().map(|t| lit(t)).collect();
                let cube = map[&id(toks[2])].1;
                map.insert(id(toks[1]), (lits, cube));
            }
            Some(&"u") => {
                let removed: Vec<i64> = toks[3..toks.len() - 1].iter().map(|t| lit(t)).collect();
                let (ant, cube) = map[&id(toks[2])].clone();
                let lits = ant.into_iter().filter(|l| !removed.contains(l)).collect();
                map.insert(id(toks[1]), (lits, cube));
            }
            Some(&"r") => {
                let p = lit(toks[4]);
                let (a1, cube) = map[&id(toks[2])].clone();
                let (a2, _) = map[&id(toks[3])].clone();
                let mut lits: Vec<i64> = a1.into_iter().filter(|&l| l != p).collect();
                for l in a2 {
                    if l != -p && !lits.contains(&l) {
                        lits.push(l);
                    }
                }
                map.insert(id(toks[1]), (lits, cube));
            }
            _ => {}
        }
    }
    map
}

fn expect_code(qbf: &Qbf, mutated: &[String], want: ErrorCode, what: &str) {
    let text = mutated.join("\n") + "\n";
    match check_proof(qbf, &text) {
        Ok(v) => panic!("{what}: mutated certificate still verified ({v})"),
        Err(e) => assert_eq!(e.code, want, "{what}: wrong rejection: {e}"),
    }
}

/// One literal of `qbf` guaranteed absent from `lits` (a derivation line
/// never contains both phases of a variable, so the opposite phase of
/// any present literal — or either phase of an absent variable — works).
fn absent_literal(lits: &[i64]) -> i64 {
    if lits.contains(&1) {
        -1
    } else {
        1
    }
}

#[test]
fn mutations_are_rejected_with_the_matching_rule() {
    let mut rng = Rng::seed_from_u64(0x5eed_f00d);
    // Count how often each mutation kind actually ran: a pool whose
    // proofs lack, say, `r` records would silently skip the swap case.
    let (mut swaps, mut flips, mut drops, mut forged_missing, mut forged_relevant) =
        (0u32, 0u32, 0u32, 0u32, 0u32);
    // Bench-scale instances: small random formulas conclude on their
    // first conflict and emit no learn or resolution records at all.
    let params = RandParams::three_block(12, 9, 12, 110, 5).with_locality(3, 10);
    for seed in 0..8u64 {
        let qbf = rand_qbf(&params, seed);
        let mut log = ProofLog::new();
        let out = Solver::with_proof(&qbf, SolverConfig::partial_order(), &mut log).solve();
        out.value().expect("no budget configured");
        check_proof(&qbf, log.as_text()).expect("pristine certificate must verify");
        let lines: Vec<String> = log.as_text().lines().map(str::to_string).collect();
        let entries = replay(&qbf, log.as_text());
        let pick = |rng: &mut Rng, tag: &str| {
            let idx: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.starts_with(tag))
                .map(|(i, _)| i)
                .collect();
            (!idx.is_empty()).then(|| idx[rng.gen_range(0..idx.len())])
        };

        // Swapping the antecedents of a resolution step puts the pivot
        // on the side that holds its negation.
        if let Some(i) = pick(&mut rng, "r ") {
            let mut m = lines.clone();
            let toks: Vec<&str> = m[i].split_whitespace().collect();
            m[i] = format!("r {} {} {} {}", toks[1], toks[3], toks[2], toks[4]);
            expect_code(&qbf, &m, ErrorCode::PivotNotPresent, "swapped antecedents");
            swaps += 1;
        }

        // Flipping one literal of a learn record breaks set equality
        // with the chain it claims to copy.
        if let Some(i) = pick(&mut rng, "l ") {
            let toks: Vec<&str> = lines[i].split_whitespace().collect();
            if toks.len() > 4 {
                let mut m = lines.clone();
                let j = rng.gen_range(3..toks.len() - 1);
                let flipped: Vec<String> = toks
                    .iter()
                    .enumerate()
                    .map(|(k, t)| {
                        if k == j {
                            (-t.parse::<i64>().unwrap()).to_string()
                        } else {
                            t.to_string()
                        }
                    })
                    .collect();
                m[i] = flipped.join(" ");
                expect_code(&qbf, &m, ErrorCode::LearnMismatch, "flipped learned literal");
                flips += 1;
            }
        }

        // Dropping the step that derives the concluded constraint leaves
        // the conclusion pointing at an unknown id; dropping the
        // conclusion itself leaves the certificate open.
        if let Some(ci) = lines.iter().position(|l| l.starts_with("c ")) {
            let concluded = lines[ci].split_whitespace().nth(2).unwrap();
            if let Some(di) = lines
                .iter()
                .position(|l| l.split_whitespace().nth(1) == Some(concluded))
            {
                let mut m = lines.clone();
                m.remove(di);
                expect_code(&qbf, &m, ErrorCode::UnknownId, "dropped concluded step");
                drops += 1;
            }
            let mut m = lines.clone();
            m.remove(ci);
            expect_code(&qbf, &m, ErrorCode::MissingConclusion, "dropped conclusion");
        }

        // Forged reductions: claim to remove a literal the antecedent
        // does not contain, or one whose quantifier is relevant.
        if let Some(i) = pick(&mut rng, "u ") {
            let toks: Vec<&str> = lines[i].split_whitespace().collect();
            let (uid, ant) = (
                toks[1].parse::<u64>().unwrap(),
                toks[2].parse::<u64>().unwrap(),
            );
            let (ant_lits, cube) = &entries[&ant];
            let body = toks[1..toks.len() - 1].join(" ");

            let mut m = lines.clone();
            m[i] = format!("u {body} {} 0", absent_literal(ant_lits));
            expect_code(&qbf, &m, ErrorCode::ReducedLitMissing, "forged removal");
            forged_missing += 1;

            // Any literal surviving a maximal reduction with the
            // relevant quantifier is irreducible by definition.
            let survivor = entries[&uid].0.iter().copied().find(|&l| {
                let v = Var::new(l.unsigned_abs() as usize - 1);
                qbf.prefix().is_existential(v) != *cube
            });
            if let Some(s) = survivor {
                let mut m = lines.clone();
                m[i] = format!("u {body} {s} 0");
                expect_code(&qbf, &m, ErrorCode::IllegalReduction, "forged relevant removal");
                forged_relevant += 1;
            }
        }
    }
    for (n, what) in [
        (swaps, "antecedent swaps"),
        (flips, "literal flips"),
        (drops, "dropped steps"),
        (forged_missing, "forged removals"),
        (forged_relevant, "forged relevant removals"),
    ] {
        assert!(n >= 5, "pool exercised only {n} {what}; widen the pool");
    }
}
