//! # qbf-proof
//!
//! Independent verifier for the `qrp` certificates emitted by the search
//! solver's proof logger (`qbf_core::proof`). A certificate is a
//! Q-resolution refutation (FALSE) or a Q-consensus confirmation (TRUE);
//! the verifier replays every derivation step against the instance with
//! its **own** implementations of resolution, ∀/∃-reduction and the
//! partial-order test `≺` — nothing is shared with the solver beyond the
//! `qbf-core` types — so a bug in the engine's analysis or in the
//! logger's lockstep mirroring cannot silently self-certify.
//!
//! The `≺` test here walks `block_parent` links (an explicit
//! ancestor-of check on the quantifier forest) rather than the solver's
//! DFS-timestamp intervals, which is the point of the exercise: the
//! paper's parenthesis criterion and the tree-walk criterion must agree
//! on every reduction a PO run performs.
//!
//! See the format grammar in `qbf_core::proof`; the checker's error
//! vocabulary is [`ErrorCode`]. The `qbfcheck` binary wraps
//! [`check_proof`] for the command line.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;

use qbf_core::{Lit, Prefix, Qbf, Var};

/// Why a certificate was rejected. The stable `Exx` names (see
/// [`ErrorCode::as_str`]) are the contract of the mutation tests and of
/// `qbfcheck`'s stderr output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// E01 — malformed record (syntax, bad integer, out-of-range variable).
    Parse,
    /// E10 — missing or mismatched `p qrp` header line.
    BadHeader,
    /// E11 — prefix/matrix fingerprint does not match the instance.
    HashMismatch,
    /// E20 — a record references a proof line that does not exist.
    UnknownId,
    /// E21 — a record references a line deleted by an earlier `d`.
    UseAfterDelete,
    /// E22 — a derived line's id is not strictly increasing.
    NonMonotoneId,
    /// E30 — resolution pivot missing from an antecedent.
    PivotNotPresent,
    /// E31 — resolution pivot has the wrong quantifier for the
    /// constraint kind (clause pivots are existential, cube pivots
    /// universal).
    PivotWrongQuantifier,
    /// E32 — resolvent contains a complementary pair that neither the
    /// relevant-quantifier rule nor the long-distance side condition
    /// (`pivot ≺ x`) admits.
    Tautology,
    /// E33 — resolution antecedents of different kinds (clause × cube).
    KindMismatch,
    /// E40 — a reduction removes a literal the partial order does not
    /// allow it to remove.
    IllegalReduction,
    /// E41 — a reduction removes a literal absent from the antecedent.
    ReducedLitMissing,
    /// E50 — an initial cube does not touch every matrix clause.
    InitCubeNotImplicant,
    /// E51 — an initial cube contains a complementary pair.
    InitCubeContradictory,
    /// E60 — a `l` record's literals differ from its antecedent.
    LearnMismatch,
    /// E70 — the conclusion line is not the empty constraint of the
    /// claimed kind (or a second conclusion appears).
    BadConclusion,
    /// E71 — the certificate ends without a conclusion record.
    MissingConclusion,
}

impl ErrorCode {
    /// The stable short name (`"E01"` … `"E71"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "E01",
            ErrorCode::BadHeader => "E10",
            ErrorCode::HashMismatch => "E11",
            ErrorCode::UnknownId => "E20",
            ErrorCode::UseAfterDelete => "E21",
            ErrorCode::NonMonotoneId => "E22",
            ErrorCode::PivotNotPresent => "E30",
            ErrorCode::PivotWrongQuantifier => "E31",
            ErrorCode::Tautology => "E32",
            ErrorCode::KindMismatch => "E33",
            ErrorCode::IllegalReduction => "E40",
            ErrorCode::ReducedLitMissing => "E41",
            ErrorCode::InitCubeNotImplicant => "E50",
            ErrorCode::InitCubeContradictory => "E51",
            ErrorCode::LearnMismatch => "E60",
            ErrorCode::BadConclusion => "E70",
            ErrorCode::MissingConclusion => "E71",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rejected certificate: the violated rule, the 1-based line of the
/// proof text, and a human-readable account.
#[derive(Debug, Clone)]
pub struct ProofError {
    /// The violated rule.
    pub code: ErrorCode,
    /// 1-based line number in the proof text (0 for end-of-file errors).
    pub line: usize,
    /// Human-readable account of the violation.
    pub message: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {}): {}", self.code, self.line, self.message)
    }
}

impl std::error::Error for ProofError {}

/// One derived (or original) constraint the checker holds.
#[derive(Debug)]
struct Entry {
    lits: Vec<Lit>,
    cube: bool,
    deleted: bool,
}

/// `a ≺ b`: the block of `a` is a **proper** ancestor of the block of
/// `b` in the quantifier forest. Deliberately implemented as a parent
/// walk, not via the solver's DFS-interval test.
fn precedes(prefix: &Prefix, a: Var, b: Var) -> bool {
    let (Some(ba), Some(bb)) = (prefix.block_of(a), prefix.block_of(b)) else {
        return false;
    };
    if ba == bb {
        return false;
    }
    let mut cur = bb;
    while let Some(p) = prefix.block_parent(cur) {
        if p == ba {
            return true;
        }
        cur = p;
    }
    false
}

/// FNV-1a 64 over the canonical prefix/matrix serialization — an
/// independent re-implementation of `qbf_core::proof::instance_fingerprints`
/// (kept separate on purpose: logger and checker must agree byte for
/// byte without sharing the code).
fn fingerprints(qbf: &Qbf) -> (u64, u64) {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(acc: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *acc ^= b as u64;
            *acc = acc.wrapping_mul(PRIME);
        }
    }
    fn walk(prefix: &Prefix, b: qbf_core::BlockId, acc: &mut u64) {
        eat(acc, b"(");
        eat(acc, if prefix.block_quant(b).is_exists() { b"e" } else { b"a" });
        for &v in prefix.block_vars(b) {
            eat(acc, (v.index() + 1).to_string().as_bytes());
            eat(acc, b" ");
        }
        for &c in prefix.block_children(b) {
            walk(prefix, c, acc);
        }
        eat(acc, b")");
    }
    let mut ph = OFFSET;
    for &b in qbf.prefix().roots() {
        walk(qbf.prefix(), b, &mut ph);
    }
    let mut mh = OFFSET;
    for c in qbf.matrix().iter() {
        for &l in c.lits() {
            eat(&mut mh, l.to_dimacs().to_string().as_bytes());
            eat(&mut mh, b" ");
        }
        eat(&mut mh, b"0\n");
    }
    (ph, mh)
}

struct Checker<'a> {
    qbf: &'a Qbf,
    lines: HashMap<u64, Entry>,
    last_id: u64,
    conclusion: Option<bool>,
}

impl<'a> Checker<'a> {
    fn err(code: ErrorCode, line: usize, message: impl Into<String>) -> ProofError {
        ProofError {
            code,
            line,
            message: message.into(),
        }
    }

    fn get(&self, id: u64, line: usize) -> Result<&Entry, ProofError> {
        let entry = self
            .lines
            .get(&id)
            .ok_or_else(|| Self::err(ErrorCode::UnknownId, line, format!("no proof line {id}")))?;
        if entry.deleted {
            return Err(Self::err(
                ErrorCode::UseAfterDelete,
                line,
                format!("proof line {id} was deleted"),
            ));
        }
        Ok(entry)
    }

    fn fresh(&mut self, id: u64, line: usize) -> Result<(), ProofError> {
        if id <= self.last_id {
            return Err(Self::err(
                ErrorCode::NonMonotoneId,
                line,
                format!("id {id} not above {}", self.last_id),
            ));
        }
        self.last_id = id;
        Ok(())
    }

    fn parse_lit(&self, tok: &str, line: usize) -> Result<Lit, ProofError> {
        let n: i64 = tok
            .parse()
            .map_err(|_| Self::err(ErrorCode::Parse, line, format!("bad literal `{tok}`")))?;
        if n == 0 || n.unsigned_abs() as usize > self.qbf.num_vars() {
            return Err(Self::err(
                ErrorCode::Parse,
                line,
                format!("literal {n} out of range (1..={} vars)", self.qbf.num_vars()),
            ));
        }
        Ok(Lit::from_dimacs(n))
    }

    fn parse_id(tok: &str, line: usize) -> Result<u64, ProofError> {
        tok.parse()
            .map_err(|_| Self::err(ErrorCode::Parse, line, format!("bad id `{tok}`")))
    }

    /// Whether `v`'s quantifier is the *relevant* one for the constraint
    /// kind (existential for clauses, universal for cubes).
    fn relevant(&self, v: Var, cube: bool) -> bool {
        self.qbf.prefix().is_existential(v) != cube
    }

    /// `r <id> <ant1> <ant2> <pivot>`
    fn rule_resolve(&mut self, toks: &[&str], line: usize) -> Result<(), ProofError> {
        let [id, a1, a2, piv] = toks else {
            return Err(Self::err(ErrorCode::Parse, line, "r takes 4 operands"));
        };
        let id = Self::parse_id(id, line)?;
        let a1 = Self::parse_id(a1, line)?;
        let a2 = Self::parse_id(a2, line)?;
        let pivot = self.parse_lit(piv, line)?;
        let ant1 = self.get(a1, line)?;
        let cube = ant1.cube;
        let ant1_lits = ant1.lits.clone();
        let ant2 = self.get(a2, line)?;
        if ant2.cube != cube {
            return Err(Self::err(
                ErrorCode::KindMismatch,
                line,
                format!("line {a1} and line {a2} have different kinds"),
            ));
        }
        let ant2_lits = ant2.lits.clone();
        if !self.relevant(pivot.var(), cube) {
            // Clause pivots must be existential, cube pivots universal.
            return Err(Self::err(
                ErrorCode::PivotWrongQuantifier,
                line,
                format!(
                    "pivot {} is not {} in a {}",
                    pivot.to_dimacs(),
                    if cube { "universal" } else { "existential" },
                    if cube { "cube" } else { "clause" },
                ),
            ));
        }
        if !ant1_lits.contains(&pivot) {
            return Err(Self::err(
                ErrorCode::PivotNotPresent,
                line,
                format!("pivot {} not in line {a1}", pivot.to_dimacs()),
            ));
        }
        if !ant2_lits.contains(&!pivot) {
            return Err(Self::err(
                ErrorCode::PivotNotPresent,
                line,
                format!("negated pivot {} not in line {a2}", (!pivot).to_dimacs()),
            ));
        }
        let mut lits: Vec<Lit> = ant1_lits.iter().copied().filter(|&l| l != pivot).collect();
        for &x in &ant2_lits {
            if x != !pivot && !lits.contains(&x) {
                lits.push(x);
            }
        }
        // Tautology / long-distance admission: a merged complementary
        // pair of relevant-quantifier literals is never a constraint; an
        // irrelevant pair {x, ¬x} is admitted only under the
        // Balabanov–Jiang side condition `pivot ≺ x`, transplanted to the
        // tree order.
        for &l in &lits {
            if !l.is_positive() || !lits.contains(&!l) {
                continue;
            }
            let v = l.var();
            if self.relevant(v, cube) {
                return Err(Self::err(
                    ErrorCode::Tautology,
                    line,
                    format!("complementary relevant pair on variable {}", v.index() + 1),
                ));
            }
            if !precedes(self.qbf.prefix(), pivot.var(), v) {
                return Err(Self::err(
                    ErrorCode::Tautology,
                    line,
                    format!(
                        "merged pair on variable {} without pivot ≺ it",
                        v.index() + 1
                    ),
                ));
            }
        }
        self.fresh(id, line)?;
        self.lines.insert(
            id,
            Entry {
                lits,
                cube,
                deleted: false,
            },
        );
        Ok(())
    }

    /// `u <id> <ant> <removed…> 0`
    fn rule_reduce(&mut self, toks: &[&str], line: usize) -> Result<(), ProofError> {
        if toks.len() < 4 || *toks.last().expect("len checked") != "0" {
            return Err(Self::err(ErrorCode::Parse, line, "u record truncated"));
        }
        let id = Self::parse_id(toks[0], line)?;
        let ant_id = Self::parse_id(toks[1], line)?;
        let removed = &toks[2..toks.len() - 1];
        let removed: Vec<Lit> = removed
            .iter()
            .map(|t| self.parse_lit(t, line))
            .collect::<Result<_, _>>()?;
        let entry = self.get(ant_id, line)?;
        let cube = entry.cube;
        let ant_lits = entry.lits.clone();
        for &l in &removed {
            if !ant_lits.contains(&l) {
                return Err(Self::err(
                    ErrorCode::ReducedLitMissing,
                    line,
                    format!("{} not in line {ant_id}", l.to_dimacs()),
                ));
            }
            if self.relevant(l.var(), cube) {
                return Err(Self::err(
                    ErrorCode::IllegalReduction,
                    line,
                    format!(
                        "{} has the relevant quantifier and cannot reduce",
                        l.to_dimacs()
                    ),
                ));
            }
        }
        let lits: Vec<Lit> = ant_lits
            .iter()
            .copied()
            .filter(|l| !removed.contains(l))
            .collect();
        // Lemma 3 (and its dual): a reduced literal must precede no
        // surviving relevant-quantifier literal. Anchors are never
        // reducible, so checking against the result equals checking any
        // removal order.
        for &l in &removed {
            if let Some(&a) = lits
                .iter()
                .find(|&&a| self.relevant(a.var(), cube) && precedes(self.qbf.prefix(), l.var(), a.var()))
            {
                return Err(Self::err(
                    ErrorCode::IllegalReduction,
                    line,
                    format!(
                        "{} precedes surviving literal {}",
                        l.to_dimacs(),
                        a.to_dimacs()
                    ),
                ));
            }
        }
        self.fresh(id, line)?;
        self.lines.insert(
            id,
            Entry {
                lits,
                cube,
                deleted: false,
            },
        );
        Ok(())
    }

    /// `i <id> <lits…> 0`
    fn rule_init_cube(&mut self, toks: &[&str], line: usize) -> Result<(), ProofError> {
        if toks.len() < 2 || *toks.last().expect("len checked") != "0" {
            return Err(Self::err(ErrorCode::Parse, line, "i record truncated"));
        }
        let id = Self::parse_id(toks[0], line)?;
        let lit_toks = &toks[1..toks.len() - 1];
        let lits: Vec<Lit> = lit_toks
            .iter()
            .map(|t| self.parse_lit(t, line))
            .collect::<Result<_, _>>()?;
        for &l in &lits {
            if lits.contains(&!l) {
                return Err(Self::err(
                    ErrorCode::InitCubeContradictory,
                    line,
                    format!("cube asserts both phases of variable {}", l.var().index() + 1),
                ));
            }
        }
        // An implicant: assigning every cube literal true satisfies the
        // matrix, i.e. each clause contains one of the cube's literals.
        for (ci, c) in self.qbf.matrix().iter().enumerate() {
            if !c.lits().iter().any(|l| lits.contains(l)) {
                return Err(Self::err(
                    ErrorCode::InitCubeNotImplicant,
                    line,
                    format!("matrix clause {} untouched by the cube", ci + 1),
                ));
            }
        }
        self.fresh(id, line)?;
        self.lines.insert(
            id,
            Entry {
                lits,
                cube: true,
                deleted: false,
            },
        );
        Ok(())
    }

    /// `l <id> <ant> <lits…> 0`
    fn rule_learn(&mut self, toks: &[&str], line: usize) -> Result<(), ProofError> {
        if toks.len() < 3 || *toks.last().expect("len checked") != "0" {
            return Err(Self::err(ErrorCode::Parse, line, "l record truncated"));
        }
        let id = Self::parse_id(toks[0], line)?;
        let ant_id = Self::parse_id(toks[1], line)?;
        let lit_toks = &toks[2..toks.len() - 1];
        let lits: Vec<Lit> = lit_toks
            .iter()
            .map(|t| self.parse_lit(t, line))
            .collect::<Result<_, _>>()?;
        let entry = self.get(ant_id, line)?;
        let cube = entry.cube;
        let same_set = entry.lits.len() == lits.len()
            && lits.iter().all(|l| entry.lits.contains(l))
            && entry.lits.iter().all(|l| lits.contains(l));
        if !same_set {
            return Err(Self::err(
                ErrorCode::LearnMismatch,
                line,
                format!("learned literals are not set-equal to line {ant_id}"),
            ));
        }
        self.fresh(id, line)?;
        self.lines.insert(
            id,
            Entry {
                lits,
                cube,
                deleted: false,
            },
        );
        Ok(())
    }

    /// `d <id>`
    fn rule_delete(&mut self, toks: &[&str], line: usize) -> Result<(), ProofError> {
        let [id] = toks else {
            return Err(Self::err(ErrorCode::Parse, line, "d takes 1 operand"));
        };
        let id = Self::parse_id(id, line)?;
        self.get(id, line)?;
        self.lines.get_mut(&id).expect("checked above").deleted = true;
        Ok(())
    }

    /// `c 0 <id>` / `c 1 <id>`
    fn rule_conclude(&mut self, toks: &[&str], line: usize) -> Result<(), ProofError> {
        if self.conclusion.is_some() {
            return Err(Self::err(ErrorCode::BadConclusion, line, "second conclusion"));
        }
        let [value, id] = toks else {
            return Err(Self::err(ErrorCode::Parse, line, "c takes 2 operands"));
        };
        let value = match *value {
            "0" => false,
            "1" => true,
            other => {
                return Err(Self::err(
                    ErrorCode::Parse,
                    line,
                    format!("bad conclusion value `{other}`"),
                ))
            }
        };
        let id = Self::parse_id(id, line)?;
        let entry = self.get(id, line)?;
        if entry.cube != value {
            return Err(Self::err(
                ErrorCode::BadConclusion,
                line,
                format!(
                    "conclusion {} needs an empty {}, line {id} is a {}",
                    u8::from(value),
                    if value { "cube" } else { "clause" },
                    if entry.cube { "cube" } else { "clause" },
                ),
            ));
        }
        if !entry.lits.is_empty() {
            return Err(Self::err(
                ErrorCode::BadConclusion,
                line,
                format!("line {id} is not empty"),
            ));
        }
        self.conclusion = Some(value);
        Ok(())
    }
}

/// Verifies `proof` against `qbf`. Returns the certified truth value
/// (`false` for a Q-resolution refutation ending in the empty clause,
/// `true` for a Q-consensus confirmation ending in the empty cube), or
/// the first rule violation.
pub fn check_proof(qbf: &Qbf, proof: &str) -> Result<bool, ProofError> {
    let mut checker = Checker {
        qbf,
        lines: HashMap::new(),
        last_id: 0,
        conclusion: None,
    };
    // The original clauses implicitly occupy ids 1..=m in matrix order.
    for (i, c) in qbf.matrix().iter().enumerate() {
        checker.lines.insert(
            i as u64 + 1,
            Entry {
                lits: c.lits().to_vec(),
                cube: false,
                deleted: false,
            },
        );
    }
    checker.last_id = qbf.matrix().len() as u64;

    let mut saw_p = false;
    let mut saw_h = false;
    for (idx, raw) in proof.lines().enumerate() {
        let line = idx + 1;
        let toks: Vec<&str> = raw.split_ascii_whitespace().collect();
        let Some((&head, rest)) = toks.split_first() else {
            continue; // blank line
        };
        if !saw_p {
            let ok = head == "p"
                && rest.first() == Some(&"qrp")
                && rest.get(1) == Some(&"1")
                && rest.get(2).and_then(|t| t.parse::<usize>().ok()) == Some(qbf.num_vars())
                && rest.get(3).and_then(|t| t.parse::<usize>().ok()) == Some(qbf.matrix().len())
                && rest.len() == 4;
            if !ok {
                return Err(Checker::err(
                    ErrorCode::BadHeader,
                    line,
                    format!(
                        "expected `p qrp 1 {} {}`, got `{raw}`",
                        qbf.num_vars(),
                        qbf.matrix().len()
                    ),
                ));
            }
            saw_p = true;
            continue;
        }
        if !saw_h {
            let (ph, mh) = fingerprints(qbf);
            let want = (format!("{ph:016x}"), format!("{mh:016x}"));
            if head != "h" || rest.len() != 2 {
                return Err(Checker::err(
                    ErrorCode::BadHeader,
                    line,
                    format!("expected the `h` fingerprint line, got `{raw}`"),
                ));
            }
            if rest[0] != want.0 || rest[1] != want.1 {
                return Err(Checker::err(
                    ErrorCode::HashMismatch,
                    line,
                    format!(
                        "instance fingerprints {} {} do not match the certificate's {} {}",
                        want.0, want.1, rest[0], rest[1]
                    ),
                ));
            }
            saw_h = true;
            continue;
        }
        if checker.conclusion.is_some() {
            return Err(Checker::err(
                ErrorCode::BadConclusion,
                line,
                "record after the conclusion",
            ));
        }
        match head {
            "r" => checker.rule_resolve(rest, line)?,
            "u" => checker.rule_reduce(rest, line)?,
            "i" => checker.rule_init_cube(rest, line)?,
            "l" => checker.rule_learn(rest, line)?,
            "d" => checker.rule_delete(rest, line)?,
            "c" => checker.rule_conclude(rest, line)?,
            other => {
                return Err(Checker::err(
                    ErrorCode::Parse,
                    line,
                    format!("unknown record `{other}`"),
                ))
            }
        }
    }
    if !saw_p || !saw_h {
        return Err(Checker::err(ErrorCode::BadHeader, 0, "missing header"));
    }
    checker.conclusion.ok_or_else(|| {
        Checker::err(
            ErrorCode::MissingConclusion,
            0,
            "certificate has no conclusion record",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::proof::ProofLog;
    use qbf_core::samples;
    use qbf_core::solver::{Solver, SolverConfig};

    fn prove(qbf: &Qbf, config: SolverConfig) -> (Option<bool>, String) {
        let mut log = ProofLog::new();
        let out = Solver::with_proof(qbf, config, &mut log).solve();
        (out.value(), log.as_text().to_string())
    }

    #[test]
    fn verifies_sample_proofs_both_configs() {
        let cases = [
            (samples::paper_example(), false),
            (samples::forall_exists_xor(), true),
            (samples::exists_forall_xor(), false),
            (samples::two_independent_games(), true),
            (samples::sat_instance(), true),
            (samples::unsat_instance(), false),
        ];
        for (qbf, expected) in &cases {
            for config in [SolverConfig::partial_order(), SolverConfig::total_order()] {
                let (value, proof) = prove(qbf, config);
                assert_eq!(value, Some(*expected));
                let verdict = check_proof(qbf, &proof).unwrap_or_else(|e| {
                    panic!("rejected: {e}\n{proof}");
                });
                assert_eq!(verdict, *expected);
            }
        }
    }

    #[test]
    fn rejects_proof_for_wrong_instance() {
        let (_, proof) = prove(&samples::paper_example(), SolverConfig::partial_order());
        let err = check_proof(&samples::sat_instance(), &proof).unwrap_err();
        assert!(matches!(
            err.code,
            ErrorCode::HashMismatch | ErrorCode::BadHeader
        ));
    }

    #[test]
    fn rejects_truncated_proof() {
        let (_, proof) = prove(&samples::paper_example(), SolverConfig::partial_order());
        let truncated: String = proof
            .lines()
            .filter(|l| !l.starts_with("c "))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = check_proof(&samples::paper_example(), &truncated).unwrap_err();
        assert_eq!(err.code, ErrorCode::MissingConclusion);
    }
}
