//! `qbfcheck` — standalone verifier for `qrp` certificates.
//!
//! ```text
//! qbfcheck <INSTANCE> <PROOF>
//!
//!   INSTANCE   QDIMACS (`p cnf`) or non-prenex qtree (`p qtree`) document
//!   PROOF      qrp certificate written by `qbfsolve --proof`
//! ```
//!
//! Prints `s VERIFIED 0|1` and exits 0 when the certificate is a valid
//! Q-resolution/Q-consensus derivation for the instance; prints the
//! violated rule (`Exx`) to stderr and exits 1 otherwise; exits 2 on
//! usage or I/O errors.

use std::process::ExitCode;

use qbf_core::{io, Qbf};
use qbf_proof::check_proof;

fn parse_qbf(text: &str) -> Result<Qbf, String> {
    let keyword = text
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("p "))
        .unwrap_or("");
    if keyword.starts_with("p qtree") {
        io::qtree::parse(text).map_err(|e| e.to_string())
    } else {
        io::qdimacs::parse(text).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [instance_path, proof_path] = args.as_slice() else {
        eprintln!("usage: qbfcheck <INSTANCE> <PROOF>");
        return ExitCode::from(2);
    };
    let instance_text = match std::fs::read_to_string(instance_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {instance_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let proof_text = match std::fs::read_to_string(proof_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {proof_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let qbf = match parse_qbf(&instance_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: parse failed: {e}");
            return ExitCode::from(2);
        }
    };
    match check_proof(&qbf, &proof_text) {
        Ok(value) => {
            println!("s VERIFIED {}", u8::from(value));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("s REJECTED {e}");
            ExitCode::from(1)
        }
    }
}
