//! SAT-core isolation suite: the CDCL solver is differentially tested
//! against an exhaustive reference on randomized CNF built with the
//! workspace PRNG (`qbf_gen::rng::Rng`, whose stream is a pinned
//! stability contract), plus unsat-core sanity and minimality smoke
//! checks.

use qbf_core::{Lit, Var};
use qbf_expand::sat::{SatSolver, SolveResult};
use qbf_gen::rng::Rng;

/// Exhaustive reference: is there an assignment over `num_vars`
/// satisfying every clause and every assumption literal?
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>], assumptions: &[Lit]) -> bool {
    assert!(num_vars <= 16, "reference is exhaustive");
    'models: for bits in 0u32..(1u32 << num_vars) {
        let value = |l: Lit| (bits >> l.var().index()) & 1 == u32::from(l.is_positive());
        if !assumptions.iter().all(|&l| value(l)) {
            continue;
        }
        for clause in clauses {
            if !clause.iter().any(|&l| value(l)) {
                continue 'models;
            }
        }
        return true;
    }
    false
}

fn random_cnf(rng: &mut Rng, num_vars: usize, num_clauses: usize) -> Vec<Vec<Lit>> {
    (0..num_clauses)
        .map(|_| {
            let width = 1 + rng.gen_range(0..3);
            (0..width)
                .map(|_| Var::new(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5)))
                .collect()
        })
        .collect()
}

fn load(clauses: &[Vec<Lit>], num_vars: usize) -> SatSolver {
    let mut solver = SatSolver::new();
    solver.ensure_vars(num_vars);
    for clause in clauses {
        if !solver.add_clause(clause) {
            break; // root-level contradiction; solve() still answers Unsat
        }
    }
    solver
}

#[test]
fn random_cnf_differential_vs_exhaustive_reference() {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for round in 0..300 {
        let num_vars = 3 + rng.gen_range(0..8);
        let num_clauses = 1 + rng.gen_range(0..4 * num_vars);
        let clauses = random_cnf(&mut rng, num_vars, num_clauses);
        let expected = brute_force_sat(num_vars, &clauses, &[]);
        let mut solver = load(&clauses, num_vars);
        let got = solver.solve(&[]) == SolveResult::Sat;
        assert_eq!(got, expected, "round {round}: {clauses:?}");
        if got {
            // The produced model must actually satisfy the formula.
            for clause in &clauses {
                assert!(
                    clause.iter().any(|&l| solver.model_value(l.var()) == l.is_positive()),
                    "round {round}: model violates {clause:?}"
                );
            }
        }
    }
}

#[test]
fn random_assumption_differential_and_core_sanity() {
    let mut rng = Rng::seed_from_u64(0xBEEF);
    for round in 0..300 {
        let num_vars = 3 + rng.gen_range(0..7);
        let num_clauses = 1 + rng.gen_range(0..3 * num_vars);
        let clauses = random_cnf(&mut rng, num_vars, num_clauses);
        // A random consistent assumption set over distinct variables.
        let mut assumptions = Vec::new();
        for v in 0..num_vars {
            if rng.gen_bool(0.4) {
                assumptions.push(Var::new(v).lit(rng.gen_bool(0.5)));
            }
        }
        let expected = brute_force_sat(num_vars, &clauses, &assumptions);
        let mut solver = load(&clauses, num_vars);
        let got = solver.solve(&assumptions) == SolveResult::Sat;
        assert_eq!(got, expected, "round {round}: {clauses:?} / {assumptions:?}");
        if !got {
            let core = solver.unsat_core().to_vec();
            for l in &core {
                assert!(assumptions.contains(l), "round {round}: core lit {l:?} not assumed");
            }
            // The core alone must still be unsatisfiable — checked both
            // by the solver (incremental re-solve) and the reference.
            assert_eq!(solver.solve(&core), SolveResult::Unsat, "round {round}");
            assert!(!brute_force_sat(num_vars, &clauses, &core), "round {round}");
        }
    }
}

#[test]
fn unsat_core_minimality_smoke() {
    // (¬a0 ∨ ¬a1) with irrelevant assumptions around: the core must
    // shrink to exactly {a0, a1}, and dropping either literal is sat.
    let mut solver = SatSolver::new();
    solver.ensure_vars(4);
    solver.add_clause(&[Var::new(0).negative(), Var::new(1).negative()]);
    let assumptions: Vec<Lit> =
        (0..4).map(|v| Var::new(v).positive()).collect();
    assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
    let core = solver.unsat_core().to_vec();
    let mut sorted: Vec<Lit> = core.clone();
    sorted.sort_by_key(|l| l.code());
    assert_eq!(sorted, vec![Var::new(0).positive(), Var::new(1).positive()]);
    for drop in 0..core.len() {
        let reduced: Vec<Lit> = core
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop)
            .map(|(_, &l)| l)
            .collect();
        assert_eq!(
            solver.solve(&reduced),
            SolveResult::Sat,
            "core is not minimal: still unsat without {:?}",
            core[drop]
        );
    }
}

#[test]
fn chained_implications_produce_unsat_core_endpoints() {
    // x0 → x1 → … → x5 and a final ¬x5: assuming x0 is contradictory,
    // and the core must mention x0 (the only assumption).
    let mut solver = SatSolver::new();
    solver.ensure_vars(6);
    for v in 0..5 {
        solver.add_clause(&[Var::new(v).negative(), Var::new(v + 1).positive()]);
    }
    solver.add_clause(&[Var::new(5).negative()]);
    assert_eq!(solver.solve(&[Var::new(0).positive()]), SolveResult::Unsat);
    assert_eq!(solver.unsat_core(), &[Var::new(0).positive()]);
    // Without the assumption the chain is satisfiable (all false).
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
}

#[test]
fn solver_replays_byte_identically() {
    let run = || {
        let mut rng = Rng::seed_from_u64(42);
        let mut transcript = String::new();
        for _ in 0..40 {
            let num_vars = 4 + rng.gen_range(0..6);
            let num_clauses = 2 + rng.gen_range(0..3 * num_vars);
            let clauses = random_cnf(&mut rng, num_vars, num_clauses);
            let mut solver = load(&clauses, num_vars);
            let result = solver.solve(&[]);
            transcript.push_str(&format!("{result:?} {:?}\n", solver.stats));
        }
        transcript
    };
    assert_eq!(run(), run());
}
