//! A self-contained CDCL SAT solver used as the oracle of the expansion
//! engine.
//!
//! The design follows MiniSat's skeleton specialised for this workspace:
//!
//! * literals and variables are `qbf_core`'s packed [`Lit`]/[`Var`]
//!   primitives (`code()` doubles as the watch-list index);
//! * clauses live in a single `Vec<u32>` arena (`[len, lit codes…]`,
//!   clause references are `u32` word offsets) — the same layout idiom
//!   as `qbf_core`'s constraint arena;
//! * two watched literals with blocker literals, VSIDS over an indexed
//!   binary heap, first-UIP conflict learning, phase saving, and Luby
//!   restarts;
//! * incremental solving under assumptions in the MiniSat style: each
//!   assumption occupies one decision level and is re-established by the
//!   decide loop after backjumps and restarts, and an assumption found
//!   false at decide time yields an unsat core (a subset of the
//!   assumptions) via `analyze_final`.
//!
//! Two properties matter beyond plain correctness:
//!
//! 1. **Determinism.** Every tie (equal VSIDS activity) breaks on the
//!    smaller variable index, watch lists mutate by a fixed rule, and no
//!    clock or pointer value is ever read — the same clause stream under
//!    the same budgets replays bit-identically, which the expansion
//!    engine's byte-reproducible `Stats` contract relies on.
//! 2. **Pausability.** [`SatSolver::solve_limited`] accepts an absolute
//!    cost budget (`decisions + propagations`) and a cancellation flag,
//!    checked only at decision boundaries. On `Paused` the trail is kept
//!    intact, and the next `solve_limited` call with the *same*
//!    assumptions resumes mid-search — this is what lets the portfolio
//!    driver run expansion in deterministic lockstep with the search
//!    workers.

use std::sync::atomic::{AtomicBool, Ordering};

use qbf_core::{Lit, Var};

/// Clause reference: word offset of the clause header in the arena.
pub type CRef = u32;

/// Result of a (possibly budgeted) solver call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable under the given assumptions; a model is available.
    Sat,
    /// Unsatisfiable under the given assumptions; an unsat core (a
    /// subset of the assumptions) is available. An empty core means the
    /// clause set itself is unsatisfiable.
    Unsat,
    /// The cost budget ran out at a decision boundary. State is kept;
    /// calling again with the same assumptions resumes the search.
    Paused,
    /// The stop flag was raised. State is reset to the root level.
    Cancelled,
}

/// Cumulative solver counters. All fields are exact operation counts —
/// no timing — so they replay byte-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions (including assumption establishments).
    pub decisions: u64,
    /// Literals assigned by unit propagation.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned (including units).
    pub learned: u64,
}

/// VSIDS activity decay factor (activities are divided by this after
/// each conflict by growing the increment).
const VAR_DECAY: f64 = 0.95;
/// Rescale threshold for activities.
const RESCALE_LIMIT: f64 = 1e100;
/// Luby restart unit, in conflicts.
const RESTART_BASE: u64 = 100;

/// The `i`-th term (1-based) of the Luby sequence: 1 1 2 1 1 2 4 …
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing i, walk down.
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    while (1u64 << k) - 1 != i {
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
    1u64 << (k - 1)
}

/// A watch-list entry: the watching clause plus a blocker literal whose
/// truth lets propagation skip the clause without touching the arena.
#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: CRef,
    blocker: Lit,
}

/// Indexed binary max-heap ordering variables by VSIDS activity, ties
/// broken toward the smaller variable index (determinism).
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// `pos[v] == u32::MAX` means "not in the heap".
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarOrder {
    fn grow_to(&mut self, n: usize) {
        self.pos.resize(n, ABSENT);
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    fn before(act: &[f64], a: u32, b: u32) -> bool {
        let (aa, ab) = (act[a as usize], act[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, act: &[f64], mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::before(act, v, self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                self.pos[self.heap[i] as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn sift_down(&mut self, act: &[f64], mut i: usize) {
        let v = self.heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && Self::before(act, self.heap[right], self.heap[left])
            {
                right
            } else {
                left
            };
            if Self::before(act, self.heap[child], v) {
                self.heap[i] = self.heap[child];
                self.pos[self.heap[i] as usize] = i as u32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn insert(&mut self, act: &[f64], v: u32) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.pos[v as usize] = (self.heap.len() - 1) as u32;
        self.sift_up(act, self.heap.len() - 1);
    }

    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(act, 0);
        }
        Some(top)
    }

    /// Re-establish the heap property after `v`'s activity increased.
    fn bumped(&mut self, act: &[f64], v: u32) {
        if self.contains(v) {
            let i = self.pos[v as usize] as usize;
            self.sift_up(act, i);
        }
    }
}

/// The CDCL solver. See the module docs for the design contract.
#[derive(Debug, Default)]
pub struct SatSolver {
    /// Clause arena: `[len, lit codes…]*`.
    arena: Vec<u32>,
    /// Original (non-learned) clause references, for debugging aids.
    n_clauses: usize,
    watches: Vec<Vec<Watch>>,
    /// Current assignment per variable index (`None` = unassigned).
    assign: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Reason clause of each propagated variable.
    reason: Vec<Option<CRef>>,
    /// Saved phase per variable (initially `false`).
    polarity: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Scratch marker array for conflict analysis.
    seen: Vec<bool>,
    /// `false` once an unconditional contradiction is derived.
    ok: bool,
    /// Assumptions of the solve in progress (kept across `Paused`).
    assumptions: Vec<Lit>,
    /// Whether a budgeted solve is paused mid-search.
    paused: bool,
    /// Model from the most recent `Sat` answer (by variable index).
    model: Vec<Option<bool>>,
    /// Unsat core (subset of the assumptions) from the most recent
    /// `Unsat` answer.
    core: Vec<Lit>,
    conflicts_until_restart: u64,
    restart_seq: u64,
    /// Cumulative counters.
    pub stats: SatStats,
}

impl SatSolver {
    /// An empty solver (no variables, no clauses).
    pub fn new() -> Self {
        SatSolver {
            var_inc: 1.0,
            ok: true,
            conflicts_until_restart: RESTART_BASE,
            restart_seq: 1,
            ..SatSolver::default()
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learned) clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.n_clauses
    }

    /// Create the next variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len();
        self.assign.push(None);
        self.level.push(0);
        self.reason.push(None);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(v + 1);
        self.order.insert(&self.activity, v as u32);
        Var::new(v)
    }

    /// Ensure variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|b| b == l.is_positive())
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Total search cost so far: decisions plus propagations. This is
    /// the metric budgets and portfolio epochs are expressed in.
    pub fn cost(&self) -> u64 {
        self.stats.decisions + self.stats.propagations
    }

    /// Model value of `v` after a `Sat` answer; unassigned variables
    /// (eliminated or never touched) default to `false` so downstream
    /// extraction is deterministic.
    pub fn model_value(&self, v: Var) -> bool {
        self.model.get(v.index()).copied().flatten().unwrap_or(false)
    }

    /// The unsat core of the most recent `Unsat` answer: a subset of
    /// the assumptions that is already unsatisfiable with the clauses.
    /// Empty when the clause set is unsatisfiable on its own.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Add a clause. Must not be called while a solve is paused.
    /// Returns `false` iff the solver is now in an unconditionally
    /// unsatisfiable state (the clause — after root-level
    /// simplification — was empty or produced a root conflict).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            !self.paused,
            "add_clause while a budgeted solve is paused"
        );
        assert_eq!(self.decision_level(), 0, "add_clause above root level");
        if !self.ok {
            return false;
        }
        // Normalise: sort by code (groups the two literals of one
        // variable adjacently), drop duplicates, detect tautologies and
        // root-satisfied clauses, drop root-falsified literals.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(l.var().index() < self.num_vars(), "literal out of range");
            c.push(l);
        }
        c.sort_by_key(|l| l.code());
        c.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        let mut i = 0;
        while i < c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1].var() == l.var() {
                return true; // tautology: x ∨ ¬x
            }
            match self.value_lit(l) {
                Some(true) => return true, // satisfied at root
                Some(false) => {}          // drop falsified literal
                None => out.push(l),
            }
            i += 1;
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(&out);
                self.n_clauses += 1;
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit]) -> CRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.len() as CRef;
        self.arena.push(lits.len() as u32);
        for &l in lits {
            self.arena.push(l.code() as u32);
        }
        self.watches[lits[0].code()].push(Watch { cref, blocker: lits[1] });
        self.watches[lits[1].code()].push(Watch { cref, blocker: lits[0] });
        cref
    }

    #[inline]
    fn clause(&self, cref: CRef) -> (usize, usize) {
        let start = cref as usize;
        (start + 1, self.arena[start] as usize)
    }

    #[inline]
    fn enqueue(&mut self, l: Lit, reason: Option<CRef>) {
        debug_assert!(self.value_lit(l).is_none());
        let v = l.var().index();
        self.assign[v] = Some(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
        if reason.is_some() {
            self.stats.propagations += 1;
        }
    }

    /// Unit propagation to fixpoint; returns the conflicting clause, if
    /// any.
    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let key = false_lit.code();
            let mut ws = std::mem::take(&mut self.watches[key]);
            let mut i = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                if self.value_lit(w.blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let (start, len) = self.clause(w.cref);
                // Normalise so the falsified watch sits at slot 1.
                if Lit::from_code(self.arena[start] as usize) == false_lit {
                    self.arena.swap(start, start + 1);
                }
                let first = Lit::from_code(self.arena[start] as usize);
                if first != w.blocker && self.value_lit(first) == Some(true) {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Hunt for a replacement watch.
                for k in 2..len {
                    let lk = Lit::from_code(self.arena[start + k] as usize);
                    if self.value_lit(lk) != Some(false) {
                        self.arena[start + 1] = lk.code() as u32;
                        self.arena[start + k] = false_lit.code() as u32;
                        self.watches[lk.code()]
                            .push(Watch { cref: w.cref, blocker: first });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // Clause is unit or conflicting under `first`.
                match self.value_lit(first) {
                    Some(false) => {
                        self.watches[key] = ws;
                        self.qhead = self.trail.len();
                        return Some(w.cref);
                    }
                    _ => {
                        self.enqueue(first, Some(w.cref));
                        i += 1;
                    }
                }
            }
            self.watches[key] = ws;
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.order.bumped(&self.activity, v as u32);
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: CRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0: UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            let (start, len) = self.clause(confl);
            let skip = usize::from(p.is_some());
            for k in skip..len {
                let q = Lit::from_code(self.arena[start + k] as usize);
                let qv = q.var().index();
                if !self.seen[qv] && self.level[qv] > 0 {
                    self.seen[qv] = true;
                    self.bump(qv);
                    if self.level[qv] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail back to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var().index()]
                .expect("marked non-decision literal has a reason");
            p = Some(pl);
        }
        for l in learnt.iter().skip(1) {
            self.seen[l.var().index()] = false;
        }
        // Backjump level: highest level among the non-UIP literals; move
        // that literal into the second watch slot.
        let mut bt = 0u32;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for (k, l) in learnt.iter().enumerate().skip(1) {
                if self.level[l.var().index()] > self.level[learnt[max_i].var().index()]
                {
                    max_i = k;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var().index()];
        }
        (learnt, bt)
    }

    /// Derive the unsat core when assumption `p` is found false at
    /// decide time: every assumption-level decision reachable from `p`
    /// in the implication graph, plus `p` itself.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.trail_lim.is_empty() {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i];
            let xv = x.var().index();
            if !self.seen[xv] {
                continue;
            }
            match self.reason[xv] {
                None => self.core.push(x),
                Some(cref) => {
                    let (start, len) = self.clause(cref);
                    for k in 1..len {
                        let q = Lit::from_code(self.arena[start + k] as usize);
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[xv] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.polarity[v] = l.is_positive();
            self.assign[v] = None;
            self.order.insert(&self.activity, v as u32);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = bound;
    }

    /// Record a learnt clause, backjump, and assert its UIP literal.
    fn learn(&mut self, learnt: Vec<Lit>, bt: u32) {
        self.stats.learned += 1;
        self.cancel_until(bt);
        if learnt.len() == 1 {
            debug_assert_eq!(self.decision_level(), 0);
            self.enqueue(learnt[0], None);
        } else {
            let cref = self.attach_clause(&learnt);
            self.enqueue(learnt[0], Some(cref));
        }
        self.var_inc *= 1.0 / VAR_DECAY;
    }

    /// Solve under `assumptions` with an optional absolute cost budget
    /// and cancellation flag. The budget is compared against [`cost`]
    /// (`decisions + propagations`, cumulative over the solver's
    /// lifetime); when it runs out at a decision boundary the search
    /// pauses, keeping the trail, and a later call with the *same*
    /// assumptions resumes where it left off.
    ///
    /// [`cost`]: SatSolver::cost
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        budget: Option<u64>,
        stop: Option<&AtomicBool>,
    ) -> SolveResult {
        if !self.ok {
            self.core.clear();
            return SolveResult::Unsat;
        }
        if self.paused {
            debug_assert_eq!(
                self.assumptions, assumptions,
                "resume must repeat the paused assumptions"
            );
        } else {
            self.assumptions = assumptions.to_vec();
        }
        self.paused = false;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.conflicts_until_restart =
                    self.conflicts_until_restart.saturating_sub(1);
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.core.clear();
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.learn(learnt, bt);
                continue;
            }
            // Decision boundary: cancellation, budget, restart, decide.
            if let Some(flag) = stop {
                if flag.load(Ordering::Relaxed) {
                    self.cancel_until(0);
                    return SolveResult::Cancelled;
                }
            }
            if let Some(b) = budget {
                if self.cost() >= b {
                    self.paused = true;
                    return SolveResult::Paused;
                }
            }
            if self.conflicts_until_restart == 0 {
                self.stats.restarts += 1;
                self.restart_seq += 1;
                self.conflicts_until_restart =
                    luby(self.restart_seq) * RESTART_BASE;
                self.cancel_until(0);
                continue;
            }
            // Re-establish assumptions, one decision level each.
            let dl = self.decision_level() as usize;
            if dl < self.assumptions.len() {
                let p = self.assumptions[dl];
                match self.value_lit(p) {
                    Some(true) => {
                        // Dummy level so level k ↔ assumption k holds.
                        self.trail_lim.push(self.trail.len());
                    }
                    Some(false) => {
                        self.analyze_final(p);
                        self.cancel_until(0);
                        return SolveResult::Unsat;
                    }
                    None => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(p, None);
                    }
                }
                continue;
            }
            // Pick a branching variable.
            let mut picked = None;
            while let Some(v) = self.order.pop(&self.activity) {
                if self.assign[v as usize].is_none() {
                    picked = Some(v as usize);
                    break;
                }
            }
            match picked {
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(Var::new(v).lit(self.polarity[v]), None);
                }
                None => {
                    self.model = self.assign.clone();
                    self.cancel_until(0);
                    return SolveResult::Sat;
                }
            }
        }
    }

    /// Unbudgeted convenience wrapper: `Sat` or `Unsat`, never pauses.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Lit {
        Var::new(v).lit(positive)
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = SatSolver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_conflict_is_unsat_with_empty_core() {
        let mut s = SatSolver::new();
        s.ensure_vars(1);
        assert!(s.add_clause(&[lit(0, true)]));
        assert!(!s.add_clause(&[lit(0, false)]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn simple_sat_model() {
        let mut s = SatSolver::new();
        s.ensure_vars(3);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        s.add_clause(&[lit(0, false), lit(2, true)]);
        s.add_clause(&[lit(1, false), lit(2, false)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let m = |v| s.model_value(Var::new(v));
        assert!(m(0) || m(1));
        assert!(!m(0) || m(2));
        assert!(!m(1) || !m(2));
    }

    #[test]
    fn assumption_core_is_subset_of_assumptions() {
        // x0 ∧ x1 contradictory via clauses; x2 free.
        let mut s = SatSolver::new();
        s.ensure_vars(3);
        s.add_clause(&[lit(0, false), lit(1, false)]);
        let asm = [lit(2, true), lit(0, true), lit(1, true)];
        assert_eq!(s.solve(&asm), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(asm.contains(l), "core literal {l:?} not an assumption");
        }
        // x2 is irrelevant to the contradiction.
        assert!(!core.contains(&lit(2, true)));
        // The core itself must still be unsat, and dropping it is sat.
        assert_eq!(s.solve(&core), SolveResult::Unsat);
        assert_eq!(s.solve(&[lit(2, true)]), SolveResult::Sat);
    }

    #[test]
    fn contradictory_assumption_pair() {
        let mut s = SatSolver::new();
        s.ensure_vars(2);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        assert_eq!(
            s.solve(&[lit(0, true), lit(0, false)]),
            SolveResult::Unsat
        );
        let core = s.unsat_core();
        assert!(core.contains(&lit(0, true)) && core.contains(&lit(0, false)));
    }

    #[test]
    fn incremental_solving_between_calls() {
        let mut s = SatSolver::new();
        s.ensure_vars(2);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.add_clause(&[lit(0, false)]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(Var::new(1)));
        s.add_clause(&[lit(1, false)]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn budget_pauses_and_resumes_to_same_answer() {
        // A moderately hard pigeonhole-ish instance solved twice: once
        // in one shot, once in 1-cost steps; answers and stats agree.
        let build = || {
            let mut s = SatSolver::new();
            s.ensure_vars(12);
            // 4 pigeons, 3 holes: pigeon p in some hole; no two share.
            let slot = |p: usize, h: usize| lit(3 * p + h, true);
            for p in 0..4 {
                s.add_clause(&[slot(p, 0), slot(p, 1), slot(p, 2)]);
            }
            for h in 0..3 {
                for p1 in 0..4 {
                    for p2 in (p1 + 1)..4 {
                        s.add_clause(&[!slot(p1, h), !slot(p2, h)]);
                    }
                }
            }
            s
        };
        let mut one = build();
        assert_eq!(one.solve(&[]), SolveResult::Unsat);
        let mut stepped = build();
        let mut bound = 0;
        let answer = loop {
            bound += 1;
            match stepped.solve_limited(&[], Some(bound), None) {
                SolveResult::Paused => continue,
                other => break other,
            }
        };
        assert_eq!(answer, SolveResult::Unsat);
        assert_eq!(one.stats, stepped.stats);
    }

    #[test]
    fn cancellation_returns_cancelled() {
        let mut s = SatSolver::new();
        s.ensure_vars(2);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        let flag = AtomicBool::new(true);
        assert_eq!(
            s.solve_limited(&[], None, Some(&flag)),
            SolveResult::Cancelled
        );
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn tautologies_and_duplicates_are_normalised() {
        let mut s = SatSolver::new();
        s.ensure_vars(2);
        assert!(s.add_clause(&[lit(0, true), lit(0, false)]));
        assert_eq!(s.num_clauses(), 0);
        assert!(s.add_clause(&[lit(0, true), lit(0, true), lit(1, true)]));
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(s.solve(&[lit(0, false)]), SolveResult::Sat);
        assert!(s.model_value(Var::new(1)));
    }
}
