//! Non-recursive dual abstraction refinement over the CDCL SAT core.
//!
//! The engine keeps **two** propositional abstractions of the QBF
//! `φ = Q₁X₁…QₙXₙ. M` and refines each with assignments extracted from
//! the other, in the style of expansion-based solving without recursion
//! (which generalises counterexample-guided abstraction refinement to
//! arbitrary prefixes):
//!
//! * the **existential abstraction** `φ∃ = ∧_{μ∈A} M[U←μ]`, one
//!   conjunct per universal assignment `μ`, with each existential `x`
//!   renamed to the copy `x^{μ↾D(x)}` — `D(x)` being the universal
//!   variables `x` may depend on. `φ∃` unsatisfiable proves the QBF
//!   **false** (a winning existential strategy would satisfy it);
//! * the **universal abstraction** `φ∀ = ∧_{τ∈B} ¬M[E←τ]`, one conjunct
//!   per existential assignment `τ`, with each universal `u` renamed to
//!   `u^{τ↾D(u)}`. `φ∀` unsatisfiable proves the QBF **true**.
//!
//! When both are satisfiable the round refines: from the `φ∃` model a
//! candidate `τ_μ(x) = σ(x^{μ↾D(x)})` is read off for *every* `μ ∈ A`
//! and the new ones join `B`; dually, counterexamples
//! `μ_τ(u) = ρ(u^{τ↾D(u)})` for every `τ ∈ B` join `A`. Copies are
//! globally shared across conjuncts through their `(variable, pattern)`
//! key, so agreement on the dependency pattern forces agreement on the
//! copy — the dependency-aware analogue of `∀`-expansion.
//!
//! ## Dependency schemes
//!
//! `D(·)` comes from the prefix *tree* ([`DepScheme`]):
//!
//! * [`DepScheme::Tree`] — opposite-quantifier variables in strict
//!   ancestor blocks on the (unique) root path. This is the partial
//!   order the paper's QUBE(PO) search exploits: siblings stay
//!   independent, so their copies collapse.
//! * [`DepScheme::Ordered`] — opposite-quantifier variables that occur
//!   strictly earlier in the depth-first preorder linearisation of the
//!   prefix (`Prefix::bound_vars`), i.e. the same total-order prenexing
//!   QUBE(TO) searches. `Ordered` dependencies are a superset of `Tree`
//!   dependencies; both are sound.
//!
//! ## Conjunct encoding
//!
//! Each conjunct gets a fresh selector variable and is solved under the
//! assumption set of all selectors, so an unsatisfiable answer comes
//! with an unsat core naming the responsible conjuncts (recorded in
//! [`ExpandStats::final_core`]). `φ∀` conjuncts — negations of CNF —
//! are Tseitin-encoded with one definition variable per clause that
//! keeps two or more universal literals.
//!
//! ## Determinism and progress
//!
//! Everything is insertion-ordered (`A`/`B` are vectors with a
//! `BTreeSet` of projection keys for dedup; copy maps are `BTreeMap`s;
//! the SAT core breaks every tie on variable index), no clock is read,
//! and all counters are exact, so [`ExpandStats`] replays
//! byte-identically. A refinement round that fails to grow `A` — which
//! would repeat forever, since `φ∃` depends only on `A` — falls back to
//! *forced* refinement: a deterministic odometer enumerates the first
//! universal assignment not yet in `A` (counted in
//! [`ExpandStats::forced_refinements`]); if the odometer wraps, `A` is
//! the full expansion and the satisfiable `φ∃` answer is definitive.
//! This makes termination unconditional at `|A| ≤ 2^|U|`, `|B| ≤ 2^|E|`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::AtomicBool;

use qbf_core::metrics::{EngineGauge, MetricsSink, NoopMetrics, Phase};
use qbf_core::{Lit, Qbf, Quantifier, Var};

use crate::sat::{SatSolver, SolveResult};

/// Which dependency sets drive the expansion copies (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepScheme {
    /// Partial order from the prefix tree (the PO view).
    Tree,
    /// Total order from the DFS-preorder linearisation (the TO view).
    Ordered,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpandConfig {
    /// Dependency scheme for both abstractions.
    pub dep_scheme: DepScheme,
    /// Give up (value `None`) once the engine cost — cumulative SAT
    /// decisions plus propagations — exceeds this bound.
    pub step_limit: Option<u64>,
}

impl Default for ExpandConfig {
    fn default() -> Self {
        ExpandConfig { dep_scheme: DepScheme::Tree, step_limit: None }
    }
}

impl ExpandConfig {
    /// Tree-scheme configuration (the PO analogue).
    pub fn tree() -> Self {
        ExpandConfig { dep_scheme: DepScheme::Tree, step_limit: None }
    }

    /// Ordered-scheme configuration (the TO analogue).
    pub fn ordered() -> Self {
        ExpandConfig { dep_scheme: DepScheme::Ordered, step_limit: None }
    }

    /// Replace the step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = Some(limit);
        self
    }
}

/// Deterministic engine counters; every field is an exact operation
/// count, so two runs of the same instance produce identical values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpandStats {
    /// Completed refinement rounds.
    pub rounds: u64,
    /// Completed SAT-oracle answers (paused/cancelled calls excluded,
    /// so stepped and one-shot runs agree).
    pub sat_calls: u64,
    /// Conjuncts in the existential abstraction (`|A|`).
    pub exists_conjuncts: u64,
    /// Conjuncts in the universal abstraction (`|B|`).
    pub forall_conjuncts: u64,
    /// Existential copy variables allocated.
    pub exists_copies: u64,
    /// Universal copy variables allocated.
    pub forall_copies: u64,
    /// Refinements forced by the progress odometer (normally 0).
    pub forced_refinements: u64,
    /// Size of the selector unsat core of the final answer (0 until an
    /// abstraction goes unsatisfiable).
    pub final_core: u64,
    /// Decisions across both SAT solvers.
    pub sat_decisions: u64,
    /// Propagations across both SAT solvers.
    pub sat_propagations: u64,
    /// Conflicts across both SAT solvers.
    pub sat_conflicts: u64,
    /// Learned clauses across both SAT solvers.
    pub sat_learned: u64,
    /// Restarts across both SAT solvers.
    pub sat_restarts: u64,
}

impl ExpandStats {
    /// `(name, value)` pairs in display order — the expansion analogue
    /// of `Stats::fields`, used by transcripts and stat lines.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("rounds", self.rounds),
            ("sat-calls", self.sat_calls),
            ("exists-conjuncts", self.exists_conjuncts),
            ("forall-conjuncts", self.forall_conjuncts),
            ("exists-copies", self.exists_copies),
            ("forall-copies", self.forall_copies),
            ("forced-refinements", self.forced_refinements),
            ("final-core", self.final_core),
            ("sat-decisions", self.sat_decisions),
            ("sat-propagations", self.sat_propagations),
            ("sat-conflicts", self.sat_conflicts),
            ("sat-learned", self.sat_learned),
            ("sat-restarts", self.sat_restarts),
        ]
    }
}

impl fmt::Display for ExpandStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, value) in self.fields() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{name}={value}")?;
            first = false;
        }
        Ok(())
    }
}

/// Result of an expansion solve: the truth value (`None` when the step
/// limit ran out) plus the deterministic counters.
#[derive(Debug, Clone)]
pub struct ExpandOutcome {
    /// `Some(true)` / `Some(false)` when decided, `None` on step limit.
    pub value: Option<bool>,
    /// Counter snapshot at the end of the call.
    pub stats: ExpandStats,
}

impl ExpandOutcome {
    /// The decided truth value, if any.
    pub fn value(&self) -> Option<bool> {
        self.value
    }
}

/// Where the refinement loop stands between (budgeted) calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnginePhase {
    /// Next action: solve the existential abstraction.
    SolveExists,
    /// Next action: solve the universal abstraction.
    SolveForall,
    /// A truth value has been established.
    Done,
}

/// Outcome of one `advance` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Advance {
    Done,
    Paused,
    Cancelled,
}

/// The expansion engine. Resumable: [`step_to`](ExpandSolver::step_to)
/// advances the refinement loop up to a cost bound and can be called
/// repeatedly, which is how the portfolio races it against the search
/// workers in deterministic lockstep.
pub struct ExpandSolver<'a, M: MetricsSink = NoopMetrics> {
    qbf: &'a Qbf,
    config: ExpandConfig,
    metrics: M,
    /// Quantifier per variable index (`None` = unused/free).
    quant: Vec<Option<Quantifier>>,
    /// Dependency set per variable index, sorted by preorder position.
    deps: Vec<Vec<u32>>,
    /// Universal variables in preorder (projection order for `μ` keys).
    u_vars: Vec<u32>,
    /// Existential variables in preorder, free variables first
    /// (projection order for `τ` keys).
    e_vars: Vec<u32>,
    /// The existential abstraction `φ∃` and its selector assumptions.
    sat_e: SatSolver,
    sel_e: Vec<Lit>,
    copy_e: BTreeMap<(u32, Vec<bool>), Var>,
    /// The universal abstraction `φ∀` and its selector assumptions.
    sat_a: SatSolver,
    sel_a: Vec<Lit>,
    copy_a: BTreeMap<(u32, Vec<bool>), Var>,
    /// Universal assignments expanded so far (insertion order).
    a_set: Vec<Vec<bool>>,
    a_keys: BTreeSet<Vec<bool>>,
    /// Existential assignments expanded so far (insertion order).
    b_set: Vec<Vec<bool>>,
    b_keys: BTreeSet<Vec<bool>>,
    /// Forced-refinement odometer over `u_vars` (lexicographic).
    odometer: Vec<bool>,
    phase: EnginePhase,
    value: Option<bool>,
    rounds: u64,
    sat_calls: u64,
    forced_refinements: u64,
    final_core: u64,
}

impl<'a> ExpandSolver<'a, NoopMetrics> {
    /// An engine over `qbf` with no instrumentation.
    pub fn new(qbf: &'a Qbf, config: ExpandConfig) -> Self {
        Self::with_metrics(qbf, config, NoopMetrics)
    }
}

impl<'a, M: MetricsSink> ExpandSolver<'a, M> {
    /// An engine over `qbf` reporting to `metrics`.
    pub fn with_metrics(qbf: &'a Qbf, config: ExpandConfig, metrics: M) -> Self {
        let n = qbf.num_vars();
        let prefix = qbf.prefix();
        let mut quant: Vec<Option<Quantifier>> = (0..n)
            .map(|i| prefix.quant(Var::new(i)))
            .collect();
        // Free-but-occurring variables act as outermost existentials.
        let occurring = qbf.matrix().occurring_vars();
        let mut free: Vec<u32> = Vec::new();
        for (i, q) in quant.iter_mut().enumerate() {
            if q.is_none() && occurring.get(i).copied().unwrap_or(false) {
                *q = Some(Quantifier::Exists);
                free.push(i as u32);
            }
        }
        // Preorder positions: free variables first (they depend on
        // nothing and everything may depend on them), then the bound
        // variables in DFS preorder.
        let mut pos: Vec<u32> = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for &f in &free {
            pos[f as usize] = order.len() as u32;
            order.push(f);
        }
        for v in prefix.bound_vars() {
            pos[v.index()] = order.len() as u32;
            order.push(v.index() as u32);
        }
        let mut u_vars = Vec::new();
        let mut e_vars = Vec::new();
        for &v in &order {
            match quant[v as usize] {
                Some(Quantifier::Forall) => u_vars.push(v),
                Some(Quantifier::Exists) => e_vars.push(v),
                None => {}
            }
        }
        // Dependency sets.
        let mut deps: Vec<Vec<u32>> = vec![Vec::new(); n];
        match config.dep_scheme {
            DepScheme::Ordered => {
                for &v in &order {
                    let q = quant[v as usize].expect("ordered var quantified");
                    let d: Vec<u32> = order[..pos[v as usize] as usize]
                        .iter()
                        .copied()
                        .filter(|&w| quant[w as usize] == Some(q.dual()))
                        .collect();
                    deps[v as usize] = d;
                }
            }
            DepScheme::Tree => {
                for v in prefix.bound_vars() {
                    let q = prefix.quant(v).expect("bound var quantified");
                    let mut d = Vec::new();
                    let mut b = prefix.block_of(v).expect("bound var has block");
                    while let Some(parent) = prefix.block_parent(b) {
                        if prefix.block_quant(parent) == q.dual() {
                            for &w in prefix.block_vars(parent) {
                                d.push(w.index() as u32);
                            }
                        }
                        b = parent;
                    }
                    d.sort_by_key(|&w| pos[w as usize]);
                    deps[v.index()] = d;
                }
                // Free variables keep empty dependency sets.
            }
        }
        let odometer = vec![false; u_vars.len()];
        let mut engine = ExpandSolver {
            qbf,
            config,
            metrics,
            quant,
            deps,
            u_vars,
            e_vars,
            sat_e: SatSolver::new(),
            sel_e: Vec::new(),
            copy_e: BTreeMap::new(),
            sat_a: SatSolver::new(),
            sel_a: Vec::new(),
            copy_a: BTreeMap::new(),
            a_set: Vec::new(),
            a_keys: BTreeSet::new(),
            b_set: Vec::new(),
            b_keys: BTreeSet::new(),
            odometer,
            phase: EnginePhase::SolveExists,
            value: None,
            rounds: 0,
            sat_calls: 0,
            forced_refinements: 0,
            final_core: 0,
        };
        // Seed `A` with the all-false universal assignment.
        let mu0 = vec![false; engine.qbf.num_vars()];
        engine.push_mu(mu0);
        engine
    }

    /// The instance being solved.
    pub fn qbf(&self) -> &'a Qbf {
        self.qbf
    }

    /// The engine configuration.
    pub fn config(&self) -> ExpandConfig {
        self.config
    }

    /// Decided truth value, if the refinement has concluded.
    pub fn value(&self) -> Option<bool> {
        self.value
    }

    /// Whether the configured step limit is spent without a verdict.
    pub fn budget_exhausted(&self) -> bool {
        self.value.is_none()
            && self
                .config
                .step_limit
                .is_some_and(|limit| self.cost() >= limit)
    }

    /// Cumulative engine cost: SAT decisions plus propagations across
    /// both abstraction solvers. This is the budget metric of
    /// [`step_to`](ExpandSolver::step_to) and the portfolio epochs.
    pub fn cost(&self) -> u64 {
        self.sat_e.cost() + self.sat_a.cost()
    }

    /// Deterministic counter snapshot.
    pub fn stats(&self) -> ExpandStats {
        let e = &self.sat_e.stats;
        let a = &self.sat_a.stats;
        ExpandStats {
            rounds: self.rounds,
            sat_calls: self.sat_calls,
            exists_conjuncts: self.a_set.len() as u64,
            forall_conjuncts: self.b_set.len() as u64,
            exists_copies: self.copy_e.len() as u64,
            forall_copies: self.copy_a.len() as u64,
            forced_refinements: self.forced_refinements,
            final_core: self.final_core,
            sat_decisions: e.decisions + a.decisions,
            sat_propagations: e.propagations + a.propagations,
            sat_conflicts: e.conflicts + a.conflicts,
            sat_learned: e.learned + a.learned,
            sat_restarts: e.restarts + a.restarts,
        }
    }

    /// Outcome snapshot (value + stats).
    pub fn outcome(&self) -> ExpandOutcome {
        ExpandOutcome { value: self.value, stats: self.stats() }
    }

    /// Pattern of `assignment` on `deps[v]`.
    fn pattern(deps: &[u32], assignment: &[bool]) -> Vec<bool> {
        deps.iter().map(|&d| assignment[d as usize]).collect()
    }

    /// Add `μ` to `A` and encode its conjunct into `φ∃`. Ignores
    /// duplicates (by universal projection); returns whether added.
    fn push_mu(&mut self, mu: Vec<bool>) -> bool {
        let key: Vec<bool> =
            self.u_vars.iter().map(|&u| mu[u as usize]).collect();
        if !self.a_keys.insert(key) {
            return false;
        }
        let selector = self.sat_e.new_var().positive();
        self.sel_e.push(selector);
        let mut dead = false;
        'clauses: for clause in self.qbf.matrix().clauses() {
            let mut mapped: Vec<Lit> = vec![!selector];
            for &l in clause.lits() {
                let v = l.var().index();
                match self.quant[v] {
                    Some(Quantifier::Forall) if mu[v] == l.is_positive() => {
                        continue 'clauses; // satisfied under μ
                    }
                    // Falsified under μ: the literal drops out.
                    Some(Quantifier::Forall) => {}
                    Some(Quantifier::Exists) => {
                        let copy = Self::copy_var(
                            &mut self.copy_e,
                            &mut self.sat_e,
                            &self.deps,
                            l.var(),
                            &mu,
                        );
                        mapped.push(copy.lit(l.is_positive()));
                    }
                    None => {
                        // Unquantified and non-occurring can't appear
                        // in a clause; treat defensively as false.
                    }
                }
            }
            if mapped.len() == 1 {
                dead = true; // clause false under μ: conjunct dies
                break;
            }
            self.sat_e.add_clause(&mapped);
        }
        if dead {
            self.sat_e.add_clause(&[!selector]);
        }
        self.a_set.push(mu);
        true
    }

    /// Add `τ` to `B` and encode `¬M[E←τ]` into `φ∀`. Ignores
    /// duplicates (by existential projection); returns whether added.
    fn push_tau(&mut self, tau: Vec<bool>) -> bool {
        let key: Vec<bool> =
            self.e_vars.iter().map(|&e| tau[e as usize]).collect();
        if !self.b_keys.insert(key) {
            return false;
        }
        let selector = self.sat_a.new_var().positive();
        self.sel_a.push(selector);
        let mut big: Vec<Lit> = vec![!selector];
        let mut trivially_true = false;
        'clauses: for clause in self.qbf.matrix().clauses() {
            let mut universal: Vec<Lit> = Vec::new();
            for &l in clause.lits() {
                let v = l.var().index();
                match self.quant[v] {
                    Some(Quantifier::Exists) if tau[v] == l.is_positive() => {
                        continue 'clauses; // satisfied under τ
                    }
                    // Falsified under τ: the literal drops out.
                    Some(Quantifier::Exists) => {}
                    Some(Quantifier::Forall) => {
                        let copy = Self::copy_var(
                            &mut self.copy_a,
                            &mut self.sat_a,
                            &self.deps,
                            l.var(),
                            &tau,
                        );
                        universal.push(copy.lit(l.is_positive()));
                    }
                    None => {}
                }
            }
            match universal.len() {
                // Clause already false under τ: ¬M[τ] holds trivially.
                0 => {
                    trivially_true = true;
                    break;
                }
                1 => big.push(!universal[0]),
                _ => {
                    // Tseitin: d → ¬l for every remaining literal.
                    let d = self.sat_a.new_var();
                    for &l in &universal {
                        self.sat_a.add_clause(&[d.negative(), !l]);
                    }
                    big.push(d.positive());
                }
            }
        }
        if !trivially_true {
            self.sat_a.add_clause(&big);
        }
        self.b_set.push(tau);
        true
    }

    /// Shared copy allocator: the copy of `v` under `assignment`
    /// projected on `deps[v]` (creating the SAT variable on demand).
    fn copy_var(
        copies: &mut BTreeMap<(u32, Vec<bool>), Var>,
        sat: &mut SatSolver,
        deps: &[Vec<u32>],
        v: Var,
        assignment: &[bool],
    ) -> Var {
        let key = (v.index() as u32, Self::pattern(&deps[v.index()], assignment));
        if let Some(&c) = copies.get(&key) {
            return c;
        }
        let c = sat.new_var();
        copies.insert(key, c);
        c
    }

    /// From a `φ∃` model, read the candidate `τ_μ` for every `μ ∈ A`
    /// and add the new ones to `B`. Returns how many were added.
    fn refine_with_candidates(&mut self) -> usize {
        let mut added = 0;
        for i in 0..self.a_set.len() {
            let mut tau = vec![false; self.qbf.num_vars()];
            for &x in &self.e_vars.clone() {
                let key = (
                    x,
                    Self::pattern(&self.deps[x as usize], &self.a_set[i]),
                );
                if let Some(&c) = self.copy_e.get(&key) {
                    tau[x as usize] = self.sat_e.model_value(c);
                }
            }
            if self.push_tau(tau) {
                added += 1;
            }
        }
        added
    }

    /// From a `φ∀` model, read the counterexample `μ_τ` for every
    /// `τ ∈ B` and add the new ones to `A`. Returns how many were
    /// added.
    fn refine_with_counterexamples(&mut self) -> usize {
        let mut added = 0;
        for i in 0..self.b_set.len() {
            let mut mu = vec![false; self.qbf.num_vars()];
            for &u in &self.u_vars.clone() {
                let key = (
                    u,
                    Self::pattern(&self.deps[u as usize], &self.b_set[i]),
                );
                if let Some(&c) = self.copy_a.get(&key) {
                    mu[u as usize] = self.sat_a.model_value(c);
                }
            }
            if self.push_mu(mu) {
                added += 1;
            }
        }
        added
    }

    /// Forced progress: enumerate (lexicographically over the universal
    /// projection) the first assignment not in `A`. Returns `false`
    /// when the odometer wraps, i.e. `A` is already the full expansion.
    fn force_mu(&mut self) -> bool {
        loop {
            // Binary increment, least-significant side last (so the
            // enumeration order is lexicographic on the key).
            let mut carried = true;
            for slot in self.odometer.iter_mut().rev() {
                if *slot {
                    *slot = false;
                } else {
                    *slot = true;
                    carried = false;
                    break;
                }
            }
            if carried {
                return false; // wrapped: A complete
            }
            if !self.a_keys.contains(&self.odometer) {
                let mut mu = vec![false; self.qbf.num_vars()];
                for (k, &u) in self.u_vars.iter().enumerate() {
                    mu[u as usize] = self.odometer[k];
                }
                let added = self.push_mu(mu);
                debug_assert!(added);
                self.forced_refinements += 1;
                return true;
            }
        }
    }

    /// Advance the refinement loop until decided, the absolute cost
    /// `budget` is reached, or `stop` is raised.
    fn advance(
        &mut self,
        budget: Option<u64>,
        stop: Option<&AtomicBool>,
    ) -> Advance {
        loop {
            match self.phase {
                EnginePhase::Done => return Advance::Done,
                EnginePhase::SolveExists => {
                    let sub =
                        budget.map(|b| b.saturating_sub(self.sat_a.cost()));
                    if M::ENABLED {
                        self.metrics.phase_start(Phase::SatSolve);
                    }
                    let sel = std::mem::take(&mut self.sel_e);
                    let result = self.sat_e.solve_limited(&sel, sub, stop);
                    self.sel_e = sel;
                    if M::ENABLED {
                        self.metrics.phase_end(Phase::SatSolve);
                    }
                    if matches!(result, SolveResult::Sat | SolveResult::Unsat)
                    {
                        self.sat_calls += 1;
                    }
                    match result {
                        SolveResult::Paused => return Advance::Paused,
                        SolveResult::Cancelled => return Advance::Cancelled,
                        SolveResult::Unsat => {
                            self.final_core =
                                self.sat_e.unsat_core().len() as u64;
                            self.value = Some(false);
                            self.phase = EnginePhase::Done;
                        }
                        SolveResult::Sat => {
                            if M::ENABLED {
                                self.metrics.phase_start(Phase::Refine);
                            }
                            self.refine_with_candidates();
                            if M::ENABLED {
                                self.metrics.phase_end(Phase::Refine);
                            }
                            self.phase = EnginePhase::SolveForall;
                        }
                    }
                }
                EnginePhase::SolveForall => {
                    let sub =
                        budget.map(|b| b.saturating_sub(self.sat_e.cost()));
                    if M::ENABLED {
                        self.metrics.phase_start(Phase::SatSolve);
                    }
                    let sel = std::mem::take(&mut self.sel_a);
                    let result = self.sat_a.solve_limited(&sel, sub, stop);
                    self.sel_a = sel;
                    if M::ENABLED {
                        self.metrics.phase_end(Phase::SatSolve);
                    }
                    if matches!(result, SolveResult::Sat | SolveResult::Unsat)
                    {
                        self.sat_calls += 1;
                    }
                    match result {
                        SolveResult::Paused => return Advance::Paused,
                        SolveResult::Cancelled => return Advance::Cancelled,
                        SolveResult::Unsat => {
                            self.final_core =
                                self.sat_a.unsat_core().len() as u64;
                            self.value = Some(true);
                            self.phase = EnginePhase::Done;
                        }
                        SolveResult::Sat => {
                            if M::ENABLED {
                                self.metrics.phase_start(Phase::Refine);
                            }
                            let added = self.refine_with_counterexamples();
                            let decided = if added == 0 && !self.force_mu() {
                                // A is the full expansion and φ∃ was
                                // just satisfiable: definitive.
                                self.value = Some(true);
                                self.phase = EnginePhase::Done;
                                true
                            } else {
                                false
                            };
                            self.rounds += 1;
                            if M::ENABLED {
                                self.metrics.phase_end(Phase::Refine);
                                let size = (self.a_set.len()
                                    + self.b_set.len())
                                    as u64;
                                self.metrics.sample(
                                    EngineGauge::AbstractionConjuncts,
                                    size,
                                );
                            }
                            if !decided {
                                self.phase = EnginePhase::SolveExists;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Advance until the truth value is decided or [`cost`] reaches
    /// `bound`. Returns the value if decided. This is the portfolio
    /// lockstep hook: repeated calls with growing bounds replay the
    /// exact same refinement trajectory.
    ///
    /// [`cost`]: ExpandSolver::cost
    pub fn step_to(&mut self, bound: u64) -> Option<bool> {
        if self.phase != EnginePhase::Done && self.cost() < bound {
            self.advance(Some(bound), None);
        }
        self.value
    }

    /// Run to completion (or the configured step limit), checking
    /// `stop` at every SAT decision boundary.
    pub fn run(&mut self, stop: &AtomicBool) -> ExpandOutcome {
        match self.config.step_limit {
            None => {
                self.advance(None, Some(stop));
            }
            Some(limit) => {
                if self.phase != EnginePhase::Done && self.cost() < limit {
                    self.advance(Some(limit), Some(stop));
                }
            }
        }
        self.outcome()
    }

    /// Run to completion (or the configured step limit).
    pub fn solve(&mut self) -> ExpandOutcome {
        match self.config.step_limit {
            None => {
                self.advance(None, None);
            }
            Some(limit) => {
                if self.phase != EnginePhase::Done && self.cost() < limit {
                    self.advance(Some(limit), None);
                }
            }
        }
        self.outcome()
    }
}

/// One-shot convenience: solve `qbf` with `config`.
pub fn solve(qbf: &Qbf, config: ExpandConfig) -> ExpandOutcome {
    ExpandSolver::new(qbf, config).solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::samples;

    fn both_schemes(qbf: &Qbf, expected: bool) {
        for scheme in [DepScheme::Tree, DepScheme::Ordered] {
            let config = ExpandConfig { dep_scheme: scheme, step_limit: None };
            let outcome = solve(qbf, config);
            assert_eq!(
                outcome.value,
                Some(expected),
                "scheme {scheme:?} disagrees"
            );
        }
    }

    #[test]
    fn paper_example_is_false() {
        both_schemes(&samples::paper_example(), false);
    }

    #[test]
    fn stats_replay_byte_identically() {
        let qbf = samples::paper_example();
        let run = || {
            let outcome = solve(&qbf, ExpandConfig::tree());
            format!("{:?}|{}", outcome.value, outcome.stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_limit_yields_unknown() {
        let qbf = samples::paper_example();
        let outcome = solve(&qbf, ExpandConfig::tree().with_step_limit(1));
        assert_eq!(outcome.value, None);
    }

    #[test]
    fn stepped_and_oneshot_agree() {
        let qbf = samples::paper_example();
        let oneshot = solve(&qbf, ExpandConfig::ordered());
        let mut stepped = ExpandSolver::new(&qbf, ExpandConfig::ordered());
        let mut bound = 0;
        let value = loop {
            bound += 3;
            if let Some(v) = stepped.step_to(bound) {
                break v;
            }
        };
        assert_eq!(Some(value), oneshot.value);
        assert_eq!(stepped.stats(), oneshot.stats);
    }

    #[test]
    fn cancellation_stops_the_loop() {
        let qbf = samples::paper_example();
        let mut solver = ExpandSolver::new(&qbf, ExpandConfig::tree());
        let stop = AtomicBool::new(true);
        let outcome = solver.run(&stop);
        assert_eq!(outcome.value, None);
    }
}
