//! The expansion engine as a portfolio [`ExternalWorker`].
//!
//! Wraps an [`ExpandSolver`] so `qbf_core::portfolio::solve_mixed` can
//! race expansion against the search roster in-process: deterministic
//! lockstep interprets the shared epoch bound in the engine's own cost
//! metric (SAT decisions + propagations), free-running mode polls the
//! portfolio stop flag at SAT decision boundaries, and the transcript
//! line prints [`ExpandStats`] fields. No constraint sharing crosses
//! the paradigm boundary (see the trait docs).

use std::sync::atomic::AtomicBool;

use qbf_core::portfolio::ExternalWorker;
use qbf_core::Qbf;

use crate::engine::{ExpandConfig, ExpandSolver, ExpandStats};

/// An expansion engine boxed into the portfolio.
pub struct ExpandWorker<'a> {
    label: String,
    solver: ExpandSolver<'a>,
}

impl<'a> ExpandWorker<'a> {
    /// A portfolio worker solving `qbf` with `config` under `label`.
    pub fn new(label: impl Into<String>, qbf: &'a Qbf, config: ExpandConfig) -> Self {
        ExpandWorker {
            label: label.into(),
            solver: ExpandSolver::new(qbf, config),
        }
    }

    /// The wrapped engine's deterministic counters.
    pub fn stats(&self) -> ExpandStats {
        self.solver.stats()
    }
}

impl ExternalWorker for ExpandWorker<'_> {
    fn label(&self) -> &str {
        &self.label
    }

    fn step_to(&mut self, bound: u64) {
        // The engine's own step limit caps the shared epoch bound.
        let bound = match self.solver.config().step_limit {
            Some(limit) => bound.min(limit),
            None => bound,
        };
        self.solver.step_to(bound);
    }

    fn run(&mut self, stop: &AtomicBool) {
        self.solver.run(stop);
    }

    fn value(&self) -> Option<bool> {
        self.solver.value()
    }

    fn timed_out(&self) -> bool {
        self.solver.budget_exhausted()
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        self.solver.stats().fields()
    }
}
