//! # qbf-expand
//!
//! The expansion-based **second engine** of the reproduction: a
//! structurally independent decision procedure that complements the
//! search-based QDPLL of `qbf-core` and gives the differential suite a
//! third oracle.
//!
//! Two layers, both hermetic (no dependencies beyond `qbf-core`'s
//! primitives):
//!
//! * [`sat`] — a self-contained CDCL SAT solver (two watched literals
//!   over the workspace's arena idiom, VSIDS, first-UIP learning, Luby
//!   restarts, incremental solving under assumptions with unsat-core
//!   extraction, pausable under an exact cost budget);
//! * [`engine`] — non-recursive dual abstraction refinement: one
//!   propositional abstraction per quantifier side, each refined with
//!   candidate/counterexample assignments extracted from the other's
//!   SAT models, with expansion copies shared through dependency
//!   patterns derived from the prefix tree ([`engine::DepScheme::Tree`],
//!   the PO view) or its preorder linearisation
//!   ([`engine::DepScheme::Ordered`], the TO view).
//!
//! Everything is deterministic by construction — insertion-ordered
//! refinement sets, `BTreeMap` copy tables, index-tie-broken VSIDS, no
//! clocks — so [`engine::ExpandStats`] replays byte-identically, the
//! property the bench artifacts and the deterministic portfolio mode
//! pin.

#![warn(missing_docs)]

pub mod engine;
pub mod portfolio;
pub mod sat;

pub use engine::{
    solve, DepScheme, ExpandConfig, ExpandOutcome, ExpandSolver, ExpandStats,
};
pub use portfolio::ExpandWorker;
pub use sat::{SatSolver, SatStats, SolveResult};
