//! Protocol robustness tests for the `qbfserve` service layer.
//!
//! Every malformed request — broken JSON, unknown commands, popping past
//! the bottom frame, commands before `load` — must produce a structured
//! `"ok":false` response carrying the 1-based input line number (the same
//! `line N: message` discipline as the `qbf_core::io` parsers), and the
//! server must keep accepting requests afterwards. Well-formed sessions
//! must replay byte-identically.

use qbf_core::solver::SolverConfig;
use qbf_serve::Server;

/// The §2 running example, inline so the tests need no filesystem.
const PAPER_EXAMPLE: &str = "p qtree 7 8\n\
     t (e 1 (a 2 (e 3 4)) (a 5 (e 6 7)))\n\
     -1 3 4 0\n2 -3 4 0\n3 -4 0\n-1 -3 -4 0\n\
     1 6 7 0\n5 -6 7 0\n6 -7 0\n1 -6 -7 0\n";

fn server() -> Server {
    Server::new(SolverConfig::partial_order())
}

fn loaded_server() -> Server {
    let mut s = server();
    s.load_text(PAPER_EXAMPLE).expect("sample parses");
    s
}

/// Runs a scripted session and collects the response lines (blank inputs
/// produce no response and are skipped, matching the binary's loop).
fn transcript(server: &mut Server, script: &[&str]) -> Vec<String> {
    script
        .iter()
        .enumerate()
        .filter_map(|(i, line)| server.handle_line(i + 1, line))
        .collect()
}

#[test]
fn blank_lines_are_ignored() {
    let mut s = loaded_server();
    assert_eq!(s.handle_line(1, ""), None);
    assert_eq!(s.handle_line(2, "   \t "), None);
}

#[test]
fn malformed_json_reports_the_line_number() {
    let mut s = loaded_server();
    let r = s.handle_line(7, "{\"cmd\":\"solve\"").unwrap();
    assert!(
        r.starts_with("{\"ok\":false,\"line\":7,\"error\":\"malformed JSON:"),
        "got: {r}"
    );
    // A non-object is equally malformed at the protocol level.
    let r = s.handle_line(8, "42").unwrap();
    assert!(r.starts_with("{\"ok\":false,\"line\":8,"), "got: {r}");
}

#[test]
fn unknown_commands_are_rejected() {
    let mut s = loaded_server();
    let r = s.handle_line(3, "{\"cmd\":\"solev\"}").unwrap();
    assert_eq!(r, "{\"ok\":false,\"line\":3,\"error\":\"unknown command `solev`\"}");
    let r = s.handle_line(4, "{\"lits\":[1]}").unwrap();
    assert_eq!(
        r,
        "{\"ok\":false,\"line\":4,\"error\":\"request object needs a string `cmd` field\"}"
    );
}

#[test]
fn pop_past_the_bottom_frame_is_an_error() {
    let mut s = loaded_server();
    let r = s.handle_line(1, "{\"cmd\":\"pop\"}").unwrap();
    assert_eq!(r, "{\"ok\":false,\"line\":1,\"error\":\"pop: no frame to pop\"}");
    // Balanced push/pop works; the extra pop fails with the right line.
    assert_eq!(
        s.handle_line(2, "{\"cmd\":\"push\"}").unwrap(),
        "{\"ok\":true,\"cmd\":\"push\",\"level\":1}"
    );
    assert_eq!(
        s.handle_line(3, "{\"cmd\":\"pop\"}").unwrap(),
        "{\"ok\":true,\"cmd\":\"pop\",\"level\":0}"
    );
    let r = s.handle_line(4, "{\"cmd\":\"pop\"}").unwrap();
    assert_eq!(r, "{\"ok\":false,\"line\":4,\"error\":\"pop: no frame to pop\"}");
}

#[test]
fn commands_before_load_are_rejected_but_survivable() {
    let mut s = server();
    let r = s.handle_line(1, "{\"cmd\":\"solve\"}").unwrap();
    assert_eq!(
        r,
        "{\"ok\":false,\"line\":1,\"error\":\"no instance loaded (use the `load` command)\"}"
    );
    // The server is still usable: load inline text, then solve.
    let r = s
        .handle_line(2, &format!(
            "{{\"cmd\":\"load\",\"text\":\"{}\"}}",
            qbf_bench::json::escape(PAPER_EXAMPLE)
        ))
        .unwrap();
    assert_eq!(r, "{\"ok\":true,\"cmd\":\"load\",\"vars\":7,\"clauses\":8}");
    let r = s.handle_line(3, "{\"cmd\":\"solve\"}").unwrap();
    assert!(r.starts_with("{\"ok\":true,\"cmd\":\"solve\",\"value\":0,"), "got: {r}");
}

#[test]
fn bad_literals_and_bad_load_arguments_are_structured_errors() {
    let mut s = loaded_server();
    for (line, input, want) in [
        (
            1,
            "{\"cmd\":\"add\",\"lits\":[1,0]}",
            "literal 0 is reserved (DIMACS terminator)",
        ),
        (
            2,
            "{\"cmd\":\"add\",\"lits\":[1.5]}",
            "literals must be non-zero DIMACS integers",
        ),
        (3, "{\"cmd\":\"add\"}", "add needs a `lits` array of DIMACS literals"),
        (
            4,
            "{\"cmd\":\"add\",\"lits\":[99]}",
            "variable 99 is not bound by the prefix",
        ),
        (
            5,
            "{\"cmd\":\"add\",\"lits\":[1,-1]}",
            "clause contains both polarities of variable 1",
        ),
        (6, "{\"cmd\":\"assume\",\"lit\":2}", "assumption 2 is not existential"),
        (
            7,
            "{\"cmd\":\"load\",\"path\":\"a\",\"text\":\"b\"}",
            "load needs exactly one of `path` or `text`",
        ),
        (8, "{\"cmd\":\"stats\"}", "no query solved yet"),
        (
            9,
            "{\"cmd\":\"proof\"}",
            "no certificate for the last solve (use `solve` with \\\"proof\\\":true)",
        ),
    ] {
        let r = s.handle_line(line, input).unwrap();
        assert_eq!(
            r,
            format!("{{\"ok\":false,\"line\":{line},\"error\":\"{want}\"}}"),
            "input: {input}"
        );
    }
    // After nine straight errors the session still answers queries.
    let r = s.handle_line(10, "{\"cmd\":\"solve\"}").unwrap();
    assert!(r.starts_with("{\"ok\":true,\"cmd\":\"solve\",\"value\":0,"), "got: {r}");
}

#[test]
fn expand_engine_solves_and_bad_engine_fields_are_structured_errors() {
    let mut s = loaded_server();
    // Both dependency schemes agree with search on the paper example
    // (false) and report the engine's own counters.
    let r = s.handle_line(1, "{\"cmd\":\"solve\",\"engine\":\"expand\"}").unwrap();
    assert!(
        r.starts_with("{\"ok\":true,\"cmd\":\"solve\",\"engine\":\"expand\",\"value\":0,\"expand\":{"),
        "got: {r}"
    );
    assert!(r.contains("\"sat-calls\":"), "got: {r}");
    let r = s
        .handle_line(2, "{\"cmd\":\"solve\",\"engine\":\"expand\",\"scheme\":\"ordered\"}")
        .unwrap();
    assert!(r.contains("\"value\":0"), "got: {r}");
    // Strict engine field: unknown values and non-strings are structured
    // errors, and the session survives them.
    let r = s.handle_line(3, "{\"cmd\":\"solve\",\"engine\":\"expnd\"}").unwrap();
    assert_eq!(
        r,
        "{\"ok\":false,\"line\":3,\"error\":\"unknown engine `expnd` (expected `search` or `expand`)\"}"
    );
    let r = s.handle_line(4, "{\"cmd\":\"solve\",\"engine\":7}").unwrap();
    assert_eq!(
        r,
        "{\"ok\":false,\"line\":4,\"error\":\"`engine` must be a string (`search` or `expand`)\"}"
    );
    let r = s
        .handle_line(5, "{\"cmd\":\"solve\",\"engine\":\"expand\",\"scheme\":\"topo\"}")
        .unwrap();
    assert!(r.contains("`scheme` must be `tree` or `ordered`"), "got: {r}");
    // Unsupported combinations are rejected without touching the session.
    let r = s
        .handle_line(6, "{\"cmd\":\"solve\",\"engine\":\"expand\",\"proof\":true}")
        .unwrap();
    assert!(r.starts_with("{\"ok\":false,\"line\":6,"), "got: {r}");
    let r = s
        .handle_line(7, "{\"cmd\":\"solve\",\"engine\":\"expand\",\"portfolio\":2}")
        .unwrap();
    assert!(r.starts_with("{\"ok\":false,\"line\":7,"), "got: {r}");
    // The search path still works and `\"engine\":\"search\"` is the
    // explicit spelling of the default.
    let r = s.handle_line(8, "{\"cmd\":\"solve\",\"engine\":\"search\"}").unwrap();
    assert!(r.starts_with("{\"ok\":true,\"cmd\":\"solve\",\"value\":0,"), "got: {r}");
}

#[test]
fn expand_solves_replay_byte_identically() {
    let script = [
        "{\"cmd\":\"solve\",\"engine\":\"expand\"}",
        "{\"cmd\":\"solve\",\"engine\":\"expand\",\"scheme\":\"ordered\"}",
        "{\"cmd\":\"push\"}",
        "{\"cmd\":\"add\",\"lits\":[1]}",
        "{\"cmd\":\"solve\",\"engine\":\"expand\"}",
        "{\"cmd\":\"pop\"}",
        "{\"cmd\":\"solve\",\"engine\":\"expand\"}",
    ];
    let a = transcript(&mut loaded_server(), &script);
    let b = transcript(&mut loaded_server(), &script);
    assert_eq!(a, b, "same script, different transcripts");
    // The pushed unit clause 1 keeps the instance false; popping it
    // restores the baseline answer byte-for-byte.
    assert!(a[4].contains("\"value\":0"), "got: {}", a[4]);
    assert_eq!(a[0], a[6], "pop must restore the baseline expand answer");
}

#[test]
fn sessions_replay_byte_identically() {
    let script = [
        "{\"cmd\":\"push\"}",
        "{\"cmd\":\"add\",\"lits\":[1,-3]}",
        "{\"cmd\":\"solve\",\"proof\":true}",
        "{\"cmd\":\"stats\"}",
        "{\"cmd\":\"proof\"}",
        "{\"cmd\":\"assume\",\"lit\":-1}",
        "{\"cmd\":\"solve\"}",
        "{\"cmd\":\"pop\"}",
        "not json at all",
        "{\"cmd\":\"pop\"}",
        "{\"cmd\":\"frobnicate\"}",
        "{\"cmd\":\"solve\"}",
    ];
    let a = transcript(&mut loaded_server(), &script);
    let b = transcript(&mut loaded_server(), &script);
    assert_eq!(a, b, "same script, different transcripts");
    assert_eq!(a.len(), script.len());
    // Spot-check the interesting lines: solve-with-proof carries a
    // certificate flag, errors carry their line numbers, and the final
    // solve (after all the noise) still answers.
    assert!(a[2].contains("\"certificate\":true"), "got: {}", a[2]);
    assert!(a[4].starts_with("{\"ok\":true,\"cmd\":\"proof\",\"bytes\":"), "got: {}", a[4]);
    assert!(a[8].starts_with("{\"ok\":false,\"line\":9,"), "got: {}", a[8]);
    assert!(a[9].starts_with("{\"ok\":false,\"line\":10,"), "got: {}", a[9]);
    assert!(a[10].starts_with("{\"ok\":false,\"line\":11,"), "got: {}", a[10]);
    assert!(a[11].starts_with("{\"ok\":true,\"cmd\":\"solve\",\"value\":0,"), "got: {}", a[11]);
}

/// A loaded server timed by a `ManualClock` (1000 ns per read, i.e. every
/// query "lasts" exactly one step), as the `--manual-clock` flag builds.
fn manual_server() -> Server {
    use qbf_core::metrics::ManualClock;
    let mut s = Server::with_clock(
        SolverConfig::partial_order(),
        Box::new(ManualClock::new(1000)),
    );
    s.load_text(PAPER_EXAMPLE).expect("sample parses");
    s
}

#[test]
fn stats_reports_cumulative_session_totals() {
    use qbf_bench::json::{self, Json};
    let mut s = loaded_server();
    transcript(
        &mut s,
        &[
            "{\"cmd\":\"solve\"}",
            "{\"cmd\":\"assume\",\"lit\":-1}",
            "{\"cmd\":\"solve\"}",
        ],
    );
    let r = s.handle_line(4, "{\"cmd\":\"stats\"}").unwrap();
    let v = json::parse(&r).expect("stats response is valid JSON");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("queries").and_then(Json::as_u64), Some(2));
    let field = |obj: &Json, name: &str| {
        obj.get(name)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing u64 field {name} in {r}"))
    };
    let last = v.get("stats").expect("per-query stats");
    let totals = v.get("session").expect("cumulative session totals");
    // The totals fold *both* queries, so every additive counter is at
    // least the last query's and the decision total is strictly larger
    // (the first, unrestricted query certainly branched).
    for name in ["decisions", "propagations", "conflicts", "solutions"] {
        assert!(
            field(totals, name) >= field(last, name),
            "session {name} below last query's: {r}"
        );
    }
    assert!(field(totals, "decisions") > field(last, "decisions"), "got: {r}");
}

#[test]
fn metrics_command_renders_prometheus_and_json() {
    use qbf_bench::json::{self, Json};
    let mut s = loaded_server();
    transcript(&mut s, &["{\"cmd\":\"solve\"}", "{\"cmd\":\"solve\"}"]);

    // Default format: Prometheus text exposition, JSON-escaped into the
    // response body.
    let r = s.handle_line(3, "{\"cmd\":\"metrics\"}").unwrap();
    assert!(
        r.starts_with("{\"ok\":true,\"cmd\":\"metrics\",\"format\":\"prometheus\",\"body\":\""),
        "got: {r}"
    );
    let v = json::parse(&r).expect("metrics response is valid JSON");
    let body = v.get("body").and_then(Json::as_str).expect("embedded body");
    assert!(body.contains("# TYPE qbf_queries_total counter"), "got:\n{body}");
    assert!(body.contains("qbf_queries_total 2"), "got:\n{body}");
    assert!(body.contains("# TYPE qbf_query_latency_ns histogram"), "got:\n{body}");
    assert!(body.contains("qbf_query_latency_ns_bucket{le=\"+Inf\"} 2"), "got:\n{body}");
    assert!(body.contains("qbf_query_latency_ns_count 2"), "got:\n{body}");
    assert!(body.contains("qbf_session_decisions_total"), "got:\n{body}");
    assert!(body.ends_with('\n'), "exposition ends with a newline");

    // JSON format: the snapshot is inlined, not escaped.
    let r = s.handle_line(4, "{\"cmd\":\"metrics\",\"format\":\"json\"}").unwrap();
    let v = json::parse(&r).expect("json snapshot response parses");
    assert_eq!(v.get("format").and_then(Json::as_str), Some("json"));
    let snap = v.get("snapshot").expect("inlined snapshot");
    assert_eq!(snap.get("queries").and_then(Json::as_u64), Some(2));
    assert!(snap.get("registry").is_some(), "got: {r}");
    let totals = snap.get("session").expect("session totals in snapshot");
    assert!(totals.get("decisions").and_then(Json::as_u64).unwrap() > 0);

    // Unknown formats are structured errors, not panics.
    let r = s.handle_line(5, "{\"cmd\":\"metrics\",\"format\":\"xml\"}").unwrap();
    assert_eq!(
        r,
        "{\"ok\":false,\"line\":5,\"error\":\"unknown metrics format `xml` (use `prometheus` or `json`)\"}"
    );
}

#[test]
fn metrics_before_any_query_is_well_formed() {
    use qbf_bench::json::{self, Json};
    let mut s = server();
    let r = s.handle_line(1, "{\"cmd\":\"metrics\"}").unwrap();
    let v = json::parse(&r).expect("empty-session metrics parse");
    let body = v.get("body").and_then(Json::as_str).expect("body");
    assert!(body.contains("qbf_queries_total 0"), "got:\n{body}");
    // Empty histograms render no buckets but still expose sum/count.
    assert!(body.contains("qbf_query_latency_ns_count 0"), "got:\n{body}");
}

#[test]
fn manual_clock_metrics_are_byte_deterministic() {
    let script = [
        "{\"cmd\":\"push\"}",
        "{\"cmd\":\"add\",\"lits\":[1,-3]}",
        "{\"cmd\":\"solve\"}",
        "{\"cmd\":\"assume\",\"lit\":-1}",
        "{\"cmd\":\"solve\"}",
        "{\"cmd\":\"pop\"}",
        "{\"cmd\":\"solve\"}",
        "{\"cmd\":\"metrics\"}",
        "{\"cmd\":\"metrics\",\"format\":\"json\"}",
    ];
    let mut a = manual_server();
    let mut b = manual_server();
    let ta = transcript(&mut a, &script);
    let tb = transcript(&mut b, &script);
    assert_eq!(ta, tb, "manual-clock transcripts must be byte-identical");
    assert_eq!(a.metrics_snapshot(), b.metrics_snapshot());
    assert_eq!(a.metrics_prometheus(), b.metrics_prometheus());
    // Each query reads the clock twice, so with a 1000 ns step every
    // latency sample is exactly 1000 ns: the 1024-bucket is the only
    // occupied one and the sum is queries x 1000.
    assert!(
        a.metrics_prometheus()
            .contains("qbf_query_latency_ns_bucket{le=\"1023\"} 3"),
        "got:\n{}",
        a.metrics_prometheus()
    );
    assert!(a.metrics_prometheus().contains("qbf_query_latency_ns_sum 3000"));
}

#[test]
fn snapshot_stream_carries_periodic_snapshots_and_progress() {
    use qbf_bench::json::{self, Json};
    let mut s = manual_server();
    s.set_snapshot_every(2);
    s.set_progress_interval(1);
    transcript(
        &mut s,
        &["{\"cmd\":\"solve\"}", "{\"cmd\":\"solve\"}", "{\"cmd\":\"solve\"}"],
    );
    let lines = s.drain_sink_lines();
    assert!(!lines.is_empty(), "stream has progress and snapshot lines");
    assert!(s.drain_sink_lines().is_empty(), "drain empties the queue");
    let mut snapshots = 0;
    let mut progress = 0;
    for line in &lines {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad stream line {line}: {e}"));
        match v.get("type").and_then(Json::as_str) {
            Some("snapshot") => {
                snapshots += 1;
                let snap = v.get("snapshot").expect("snapshot payload");
                assert_eq!(snap.get("queries").and_then(Json::as_u64), Some(2));
            }
            Some("progress") => {
                progress += 1;
                assert!(v.get("query").and_then(Json::as_u64).is_some());
                let text = v.get("text").and_then(Json::as_str).expect("text");
                assert!(text.starts_with("c progress:"), "got: {text}");
            }
            other => panic!("unknown stream line type {other:?}: {line}"),
        }
    }
    assert_eq!(snapshots, 1, "snapshot after every 2nd of 3 queries");
    assert!(progress > 0, "progress lines routed into the stream");
}

#[test]
fn proof_artifacts_certify_the_frame_restricted_query() {
    let mut s = loaded_server();
    let responses = transcript(
        &mut s,
        &[
            "{\"cmd\":\"push\"}",
            "{\"cmd\":\"add\",\"lits\":[3]}",
            "{\"cmd\":\"solve\",\"proof\":true}",
            "{\"cmd\":\"proof\"}",
        ],
    );
    assert!(responses[2].contains("\"certificate\":true"), "got: {}", responses[2]);
    // The embedded text is the JSON-escaped `qrp 1` certificate.
    let body = &responses[3];
    let start = body.find("\"text\":\"").expect("embedded text") + 8;
    let end = body.rfind("\"}").expect("closing quote");
    let cert = body[start..end].replace("\\n", "\n").replace("\\\"", "\"");
    assert!(cert.starts_with("p qrp 1 "), "got: {cert}");
}
