//! Protocol robustness tests for the `qbfserve` service layer.
//!
//! Every malformed request — broken JSON, unknown commands, popping past
//! the bottom frame, commands before `load` — must produce a structured
//! `"ok":false` response carrying the 1-based input line number (the same
//! `line N: message` discipline as the `qbf_core::io` parsers), and the
//! server must keep accepting requests afterwards. Well-formed sessions
//! must replay byte-identically.

use qbf_core::solver::SolverConfig;
use qbf_serve::Server;

/// The §2 running example, inline so the tests need no filesystem.
const PAPER_EXAMPLE: &str = "p qtree 7 8\n\
     t (e 1 (a 2 (e 3 4)) (a 5 (e 6 7)))\n\
     -1 3 4 0\n2 -3 4 0\n3 -4 0\n-1 -3 -4 0\n\
     1 6 7 0\n5 -6 7 0\n6 -7 0\n1 -6 -7 0\n";

fn server() -> Server {
    Server::new(SolverConfig::partial_order())
}

fn loaded_server() -> Server {
    let mut s = server();
    s.load_text(PAPER_EXAMPLE).expect("sample parses");
    s
}

/// Runs a scripted session and collects the response lines (blank inputs
/// produce no response and are skipped, matching the binary's loop).
fn transcript(server: &mut Server, script: &[&str]) -> Vec<String> {
    script
        .iter()
        .enumerate()
        .filter_map(|(i, line)| server.handle_line(i + 1, line))
        .collect()
}

#[test]
fn blank_lines_are_ignored() {
    let mut s = loaded_server();
    assert_eq!(s.handle_line(1, ""), None);
    assert_eq!(s.handle_line(2, "   \t "), None);
}

#[test]
fn malformed_json_reports_the_line_number() {
    let mut s = loaded_server();
    let r = s.handle_line(7, "{\"cmd\":\"solve\"").unwrap();
    assert!(
        r.starts_with("{\"ok\":false,\"line\":7,\"error\":\"malformed JSON:"),
        "got: {r}"
    );
    // A non-object is equally malformed at the protocol level.
    let r = s.handle_line(8, "42").unwrap();
    assert!(r.starts_with("{\"ok\":false,\"line\":8,"), "got: {r}");
}

#[test]
fn unknown_commands_are_rejected() {
    let mut s = loaded_server();
    let r = s.handle_line(3, "{\"cmd\":\"solev\"}").unwrap();
    assert_eq!(r, "{\"ok\":false,\"line\":3,\"error\":\"unknown command `solev`\"}");
    let r = s.handle_line(4, "{\"lits\":[1]}").unwrap();
    assert_eq!(
        r,
        "{\"ok\":false,\"line\":4,\"error\":\"request object needs a string `cmd` field\"}"
    );
}

#[test]
fn pop_past_the_bottom_frame_is_an_error() {
    let mut s = loaded_server();
    let r = s.handle_line(1, "{\"cmd\":\"pop\"}").unwrap();
    assert_eq!(r, "{\"ok\":false,\"line\":1,\"error\":\"pop: no frame to pop\"}");
    // Balanced push/pop works; the extra pop fails with the right line.
    assert_eq!(
        s.handle_line(2, "{\"cmd\":\"push\"}").unwrap(),
        "{\"ok\":true,\"cmd\":\"push\",\"level\":1}"
    );
    assert_eq!(
        s.handle_line(3, "{\"cmd\":\"pop\"}").unwrap(),
        "{\"ok\":true,\"cmd\":\"pop\",\"level\":0}"
    );
    let r = s.handle_line(4, "{\"cmd\":\"pop\"}").unwrap();
    assert_eq!(r, "{\"ok\":false,\"line\":4,\"error\":\"pop: no frame to pop\"}");
}

#[test]
fn commands_before_load_are_rejected_but_survivable() {
    let mut s = server();
    let r = s.handle_line(1, "{\"cmd\":\"solve\"}").unwrap();
    assert_eq!(
        r,
        "{\"ok\":false,\"line\":1,\"error\":\"no instance loaded (use the `load` command)\"}"
    );
    // The server is still usable: load inline text, then solve.
    let r = s
        .handle_line(2, &format!(
            "{{\"cmd\":\"load\",\"text\":\"{}\"}}",
            qbf_bench::json::escape(PAPER_EXAMPLE)
        ))
        .unwrap();
    assert_eq!(r, "{\"ok\":true,\"cmd\":\"load\",\"vars\":7,\"clauses\":8}");
    let r = s.handle_line(3, "{\"cmd\":\"solve\"}").unwrap();
    assert!(r.starts_with("{\"ok\":true,\"cmd\":\"solve\",\"value\":0,"), "got: {r}");
}

#[test]
fn bad_literals_and_bad_load_arguments_are_structured_errors() {
    let mut s = loaded_server();
    for (line, input, want) in [
        (
            1,
            "{\"cmd\":\"add\",\"lits\":[1,0]}",
            "literal 0 is reserved (DIMACS terminator)",
        ),
        (
            2,
            "{\"cmd\":\"add\",\"lits\":[1.5]}",
            "literals must be non-zero DIMACS integers",
        ),
        (3, "{\"cmd\":\"add\"}", "add needs a `lits` array of DIMACS literals"),
        (
            4,
            "{\"cmd\":\"add\",\"lits\":[99]}",
            "variable 99 is not bound by the prefix",
        ),
        (
            5,
            "{\"cmd\":\"add\",\"lits\":[1,-1]}",
            "clause contains both polarities of variable 1",
        ),
        (6, "{\"cmd\":\"assume\",\"lit\":2}", "assumption 2 is not existential"),
        (
            7,
            "{\"cmd\":\"load\",\"path\":\"a\",\"text\":\"b\"}",
            "load needs exactly one of `path` or `text`",
        ),
        (8, "{\"cmd\":\"stats\"}", "no query solved yet"),
        (
            9,
            "{\"cmd\":\"proof\"}",
            "no certificate for the last solve (use `solve` with \\\"proof\\\":true)",
        ),
    ] {
        let r = s.handle_line(line, input).unwrap();
        assert_eq!(
            r,
            format!("{{\"ok\":false,\"line\":{line},\"error\":\"{want}\"}}"),
            "input: {input}"
        );
    }
    // After nine straight errors the session still answers queries.
    let r = s.handle_line(10, "{\"cmd\":\"solve\"}").unwrap();
    assert!(r.starts_with("{\"ok\":true,\"cmd\":\"solve\",\"value\":0,"), "got: {r}");
}

#[test]
fn sessions_replay_byte_identically() {
    let script = [
        "{\"cmd\":\"push\"}",
        "{\"cmd\":\"add\",\"lits\":[1,-3]}",
        "{\"cmd\":\"solve\",\"proof\":true}",
        "{\"cmd\":\"stats\"}",
        "{\"cmd\":\"proof\"}",
        "{\"cmd\":\"assume\",\"lit\":-1}",
        "{\"cmd\":\"solve\"}",
        "{\"cmd\":\"pop\"}",
        "not json at all",
        "{\"cmd\":\"pop\"}",
        "{\"cmd\":\"frobnicate\"}",
        "{\"cmd\":\"solve\"}",
    ];
    let a = transcript(&mut loaded_server(), &script);
    let b = transcript(&mut loaded_server(), &script);
    assert_eq!(a, b, "same script, different transcripts");
    assert_eq!(a.len(), script.len());
    // Spot-check the interesting lines: solve-with-proof carries a
    // certificate flag, errors carry their line numbers, and the final
    // solve (after all the noise) still answers.
    assert!(a[2].contains("\"certificate\":true"), "got: {}", a[2]);
    assert!(a[4].starts_with("{\"ok\":true,\"cmd\":\"proof\",\"bytes\":"), "got: {}", a[4]);
    assert!(a[8].starts_with("{\"ok\":false,\"line\":9,"), "got: {}", a[8]);
    assert!(a[9].starts_with("{\"ok\":false,\"line\":10,"), "got: {}", a[9]);
    assert!(a[10].starts_with("{\"ok\":false,\"line\":11,"), "got: {}", a[10]);
    assert!(a[11].starts_with("{\"ok\":true,\"cmd\":\"solve\",\"value\":0,"), "got: {}", a[11]);
}

#[test]
fn proof_artifacts_certify_the_frame_restricted_query() {
    let mut s = loaded_server();
    let responses = transcript(
        &mut s,
        &[
            "{\"cmd\":\"push\"}",
            "{\"cmd\":\"add\",\"lits\":[3]}",
            "{\"cmd\":\"solve\",\"proof\":true}",
            "{\"cmd\":\"proof\"}",
        ],
    );
    assert!(responses[2].contains("\"certificate\":true"), "got: {}", responses[2]);
    // The embedded text is the JSON-escaped `qrp 1` certificate.
    let body = &responses[3];
    let start = body.find("\"text\":\"").expect("embedded text") + 8;
    let end = body.rfind("\"}").expect("closing quote");
    let cert = body[start..end].replace("\\n", "\n").replace("\\\"", "\"");
    assert!(cert.starts_with("p qrp 1 "), "got: {cert}");
}
