//! The `qbfserve` protocol: a long-lived incremental solving service.
//!
//! One JSON object per input line (JSONL), one JSON object per output
//! line, over stdin/stdout. The server wraps an
//! [`IncrementalSolver`] — learned constraints, heuristic scores and the
//! constraint arena stay hot across queries — and exposes the push/pop +
//! assumption API plus per-query statistics and certificates:
//!
//! ```text
//! {"cmd":"load","path":"data/paper_example.qtree"}
//! {"cmd":"push"}
//! {"cmd":"add","lits":[1,-3]}
//! {"cmd":"assume","lit":2}
//! {"cmd":"solve","proof":true}
//! {"cmd":"solve","engine":"expand","scheme":"ordered"}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"metrics","format":"json"}
//! {"cmd":"proof","path":"q1.qrp","instance":"q1.qtree"}
//! {"cmd":"pop"}
//! ```
//!
//! # Metrics
//!
//! The server keeps a [`Registry`](qbf_core::metrics::Registry) of
//! service metrics: query/error counters, cumulative per-`Stats`-counter
//! totals, and log-bucketed per-query latency and assignment histograms.
//! `{"cmd":"metrics"}` renders it in the Prometheus text exposition
//! format (escaped into the one-line JSON reply); with
//! `"format":"json"` the reply embeds a structured snapshot instead.
//! Latencies come from the server's [`Clock`](qbf_core::metrics::Clock):
//! wall time in production, and a `ManualClock` under the binary's
//! `--manual-clock` flag — under which every metrics artifact is
//! byte-deterministic and CI replays a scripted session twice and `cmp`s
//! the snapshot streams.
//!
//! Every response carries `"ok":true` with command-specific fields, or
//! `"ok":false` with the 1-based input line number and a message — the
//! same `line N: message` discipline as the `qbf_core::io` parsers:
//!
//! ```text
//! {"ok":false,"line":4,"error":"unknown command `solev`"}
//! ```
//!
//! Errors never terminate the server; it keeps accepting requests. All
//! output is byte-deterministic: field order is fixed by the writer and
//! every value is a pure function of the request sequence (the CI gate
//! replays a scripted session twice and `cmp`s the transcripts).
//!
//! JSON is written by plain string formatting and read with the in-tree
//! `qbf_bench::json` parser — the workspace stays hermetic.

use qbf_bench::json::{self, Json};
use qbf_core::io;
use qbf_core::metrics::{Clock, CounterId, GaugeId, HistId, Registry, WallClock};
use qbf_core::observe::Progress;
use qbf_core::portfolio::{self, PortfolioOptions};
use qbf_core::solver::{IncrementalError, IncrementalSolver, Outcome, SolverConfig, Stats};
use qbf_core::{Lit, Qbf};
use qbf_expand::{DepScheme, ExpandConfig};
use qbf_prenex::portfolio::roster;

/// The certificate artifacts of the last `solve` with `"proof":true`:
/// the `qrp 1` text and the frame-restricted instance it certifies
/// (qtree format), captured at query time so `qbfcheck` can verify the
/// pair even after further `push`/`pop`/`add` traffic.
#[derive(Debug, Clone)]
struct ProofArtifacts {
    certificate: String,
    instance: String,
}

/// Registry handles for the service metrics (see [`Server::registry`]
/// setup in [`Server::with_clock`]).
#[derive(Debug)]
struct MetricIds {
    queries: CounterId,
    errors: CounterId,
    latency: HistId,
    assignments: HistId,
    arena_peak: GaugeId,
    /// Constraints exported to the share pool across portfolio solves.
    portfolio_shared: CounterId,
    /// Peer constraints attached across portfolio solves.
    portfolio_imported: CounterId,
    /// Peer constraints dropped by the class filter across portfolio
    /// solves.
    portfolio_discarded: CounterId,
    /// 1-based index of the last portfolio solve's winning worker
    /// (0 = no portfolio solve yet, or no worker finished).
    portfolio_winner: GaugeId,
    /// Cumulative session counters mirroring the additive [`Stats`]
    /// fields, in `SESSION_COUNTERS` order.
    session: Vec<CounterId>,
}

/// The `Stats` counters mirrored into Prometheus session counters:
/// `(field name, metric name, help)`. Additive fields only —
/// `arena_bytes_peak` is a high-water mark and lives in a gauge.
const SESSION_COUNTERS: [(&str, &str, &str); 9] = [
    ("decisions", "qbf_session_decisions_total", "Branching decisions across all queries"),
    ("propagations", "qbf_session_propagations_total", "Unit propagations across all queries"),
    ("conflicts", "qbf_session_conflicts_total", "Conflicts across all queries"),
    ("solutions", "qbf_session_solutions_total", "Solutions across all queries"),
    ("learned_clauses", "qbf_session_learned_clauses_total", "Learned clauses across all queries"),
    ("learned_cubes", "qbf_session_learned_cubes_total", "Learned cubes across all queries"),
    ("backjumps", "qbf_session_backjumps_total", "Non-chronological backtracks across all queries"),
    ("chrono_backtracks", "qbf_session_chrono_backtracks_total", "Chronological backtracks across all queries"),
    ("forgotten", "qbf_session_forgotten_total", "Learned constraints dropped across all queries"),
];

/// A `qbfserve` session: one optional loaded instance, the last query's
/// statistics and certificate, and the service metrics layer (cumulative
/// totals, per-query histograms, optional snapshot stream).
#[derive(Debug)]
pub struct Server {
    config: SolverConfig,
    session: Option<IncrementalSolver>,
    last_stats: Option<Stats>,
    last_proof: Option<ProofArtifacts>,
    clock: Box<dyn Clock>,
    queries: u64,
    totals: Stats,
    registry: Registry,
    ids: MetricIds,
    progress_interval: u64,
    snapshot_every: u64,
    sink_lines: Vec<String>,
}

fn error_response(line: usize, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"line\":{line},\"error\":\"{}\"}}",
        json::escape(message)
    )
}

/// Serializes [`Stats`] as a JSON object, in [`Stats::fields`] order.
fn stats_json(stats: &Stats) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in stats.fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push('}');
    out
}

/// `qbfsolve`'s verdict encoding: `1` true, `0` false, `-1` budget.
fn verdict(value: Option<bool>) -> i32 {
    match value {
        Some(true) => 1,
        Some(false) => 0,
        None => -1,
    }
}

/// Parses an instance, dispatching on the `p qtree` / `p cnf` keyword
/// line like `qbfsolve` does.
fn parse_qbf(text: &str) -> Result<Qbf, String> {
    let keyword = text
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("p "))
        .unwrap_or("");
    if keyword.starts_with("p qtree") {
        io::qtree::parse(text).map_err(|e| e.to_string())
    } else {
        io::qdimacs::parse(text).map_err(|e| e.to_string())
    }
}

/// Extracts a DIMACS literal from a JSON number.
fn json_lit(v: &Json) -> Result<Lit, String> {
    let n = v
        .as_f64()
        .filter(|n| n.fract() == 0.0 && n.abs() <= i32::MAX as f64)
        .ok_or_else(|| "literals must be non-zero DIMACS integers".to_string())?;
    if n == 0.0 {
        return Err("literal 0 is reserved (DIMACS terminator)".to_string());
    }
    Ok(Lit::from_dimacs(n as i64))
}

impl Server {
    /// A fresh server with no loaded instance, timing queries against
    /// wall time.
    pub fn new(config: SolverConfig) -> Self {
        Server::with_clock(config, Box::new(WallClock::new()))
    }

    /// A fresh server timing queries against `clock` — pass a
    /// `ManualClock` for byte-deterministic metrics artifacts (the
    /// binary's `--manual-clock` flag, used by the CI replay gate).
    pub fn with_clock(config: SolverConfig, clock: Box<dyn Clock>) -> Self {
        let mut registry = Registry::new();
        let ids = MetricIds {
            queries: registry.counter("qbf_queries_total", "Queries served by this session"),
            errors: registry.counter("qbf_errors_total", "Requests answered with ok:false"),
            latency: registry.histogram("qbf_query_latency_ns", "Per-query solve latency"),
            assignments: registry
                .histogram("qbf_query_assignments", "Per-query assignments (decisions+propagations+pures)"),
            arena_peak: registry
                .gauge("qbf_arena_bytes_peak", "High-water mark of constraint-arena bytes"),
            portfolio_shared: registry.counter(
                "qbf_portfolio_shared_total",
                "Constraints exported to the portfolio share pool",
            ),
            portfolio_imported: registry.counter(
                "qbf_portfolio_imported_total",
                "Peer constraints attached by portfolio workers",
            ),
            portfolio_discarded: registry.counter(
                "qbf_portfolio_discarded_total",
                "Peer constraints dropped by the portfolio class filter",
            ),
            portfolio_winner: registry.gauge(
                "qbf_portfolio_winner",
                "1-based winning worker index of the last portfolio solve (0 = none)",
            ),
            session: SESSION_COUNTERS
                .iter()
                .map(|&(_, name, help)| registry.counter(name, help))
                .collect(),
        };
        Server {
            config,
            session: None,
            last_stats: None,
            last_proof: None,
            clock,
            queries: 0,
            totals: Stats::default(),
            registry,
            ids,
            progress_interval: 0,
            snapshot_every: 0,
            sink_lines: Vec::new(),
        }
    }

    /// Routes engine progress lines (every `interval` leaves; 0 disables)
    /// into the snapshot stream instead of stderr — drained by
    /// [`Server::drain_sink_lines`].
    pub fn set_progress_interval(&mut self, interval: u64) {
        self.progress_interval = interval;
    }

    /// Queues a full metrics snapshot into the snapshot stream after
    /// every `every`-th query (0 disables).
    pub fn set_snapshot_every(&mut self, every: u64) {
        self.snapshot_every = every;
    }

    /// Drains the pending snapshot-stream lines (periodic snapshots and
    /// routed progress lines, in emission order). The binary appends them
    /// to the `--metrics-jsonl` file after each request.
    pub fn drain_sink_lines(&mut self) -> Vec<String> {
        std::mem::take(&mut self.sink_lines)
    }

    /// The service metrics in Prometheus text exposition format.
    pub fn metrics_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// One-line JSON snapshot of the service metrics: the registry
    /// (counters, gauges, histogram summaries) plus the cumulative
    /// session [`Stats`]. Byte-deterministic whenever the clock is.
    pub fn metrics_snapshot(&self) -> String {
        format!(
            "{{\"queries\":{},\"registry\":{},\"session\":{}}}",
            self.queries,
            self.registry.snapshot_json(),
            stats_json(&self.totals)
        )
    }

    /// Folds one finished query into the cumulative metrics.
    fn record_solve(&mut self, stats: &Stats, elapsed_ns: u64) {
        self.queries += 1;
        self.totals.merge(stats);
        self.last_stats = Some(*stats);
        self.registry.inc(self.ids.queries, 1);
        self.registry.observe(self.ids.latency, elapsed_ns);
        self.registry.observe(self.ids.assignments, stats.assignments());
        self.registry.set_max(self.ids.arena_peak, stats.arena_bytes_peak);
        let fields = stats.fields();
        for (i, &(field, _, _)) in SESSION_COUNTERS.iter().enumerate() {
            let value = fields
                .iter()
                .find(|(name, _)| *name == field)
                .map(|&(_, v)| v)
                .expect("SESSION_COUNTERS names are Stats fields");
            self.registry.inc(self.ids.session[i], value);
        }
        if self.snapshot_every > 0 && self.queries.is_multiple_of(self.snapshot_every) {
            let snap = format!("{{\"type\":\"snapshot\",\"snapshot\":{}}}", self.metrics_snapshot());
            self.sink_lines.push(snap);
        }
    }

    /// Loads `text` as the session instance (replacing any previous one).
    /// Returns the success response; `Err` is the parse failure message.
    pub fn load_text(&mut self, text: &str) -> Result<String, String> {
        let qbf = parse_qbf(text)?;
        let vars = qbf.num_vars();
        let clauses = qbf.matrix().len();
        self.session = Some(IncrementalSolver::new(qbf, self.config.clone()));
        self.last_stats = None;
        self.last_proof = None;
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"load\",\"vars\":{vars},\"clauses\":{clauses}}}"
        ))
    }

    /// Handles one input line and returns the response line, or `None`
    /// for blank input. `line` is the 1-based input line number used in
    /// error responses. Never panics on malformed input; the session
    /// survives every error.
    pub fn handle_line(&mut self, line: usize, input: &str) -> Option<String> {
        if input.trim().is_empty() {
            return None;
        }
        Some(match self.dispatch(input) {
            Ok(response) => response,
            Err(message) => {
                self.registry.inc(self.ids.errors, 1);
                error_response(line, &message)
            }
        })
    }

    fn dispatch(&mut self, input: &str) -> Result<String, String> {
        let request = json::parse(input).map_err(|e| format!("malformed JSON: {e}"))?;
        let cmd = request
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request object needs a string `cmd` field")?
            .to_string();
        match cmd.as_str() {
            "load" => self.cmd_load(&request),
            "push" => {
                let level = self.session()?.push();
                Ok(format!("{{\"ok\":true,\"cmd\":\"push\",\"level\":{level}}}"))
            }
            "pop" => {
                let level = self.session()?.pop().map_err(|e| e.to_string())?;
                Ok(format!("{{\"ok\":true,\"cmd\":\"pop\",\"level\":{level}}}"))
            }
            "add" => self.cmd_add(&request),
            "assume" => self.cmd_assume(&request),
            "solve" => self.cmd_solve(&request),
            "stats" => {
                let stats = self.last_stats.ok_or("no query solved yet")?;
                Ok(format!(
                    "{{\"ok\":true,\"cmd\":\"stats\",\"queries\":{},\"stats\":{},\"session\":{}}}",
                    self.queries,
                    stats_json(&stats),
                    stats_json(&self.totals)
                ))
            }
            "metrics" => {
                let format = request
                    .get("format")
                    .and_then(Json::as_str)
                    .unwrap_or("prometheus");
                match format {
                    "prometheus" => Ok(format!(
                        "{{\"ok\":true,\"cmd\":\"metrics\",\"format\":\"prometheus\",\"body\":\"{}\"}}",
                        json::escape(&self.metrics_prometheus())
                    )),
                    "json" => Ok(format!(
                        "{{\"ok\":true,\"cmd\":\"metrics\",\"format\":\"json\",\"snapshot\":{}}}",
                        self.metrics_snapshot()
                    )),
                    other => Err(format!(
                        "unknown metrics format `{other}` (use `prometheus` or `json`)"
                    )),
                }
            }
            "proof" => self.cmd_proof(&request),
            other => Err(format!("unknown command `{other}`")),
        }
    }

    fn session(&mut self) -> Result<&mut IncrementalSolver, String> {
        self.session
            .as_mut()
            .ok_or_else(|| "no instance loaded (use the `load` command)".to_string())
    }

    fn cmd_load(&mut self, request: &Json) -> Result<String, String> {
        let text = match (
            request.get("path").and_then(Json::as_str),
            request.get("text").and_then(Json::as_str),
        ) {
            (Some(path), None) => {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
            }
            (None, Some(text)) => text.to_string(),
            _ => return Err("load needs exactly one of `path` or `text`".to_string()),
        };
        self.load_text(&text)
    }

    fn cmd_add(&mut self, request: &Json) -> Result<String, String> {
        let lits = request
            .get("lits")
            .and_then(Json::as_array)
            .ok_or("add needs a `lits` array of DIMACS literals")?
            .iter()
            .map(json_lit)
            .collect::<Result<Vec<Lit>, String>>()?;
        let session = self.session()?;
        session.add_clause(&lits).map_err(|e: IncrementalError| e.to_string())?;
        let clauses = session.num_clauses();
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"add\",\"clauses\":{clauses}}}"
        ))
    }

    fn cmd_assume(&mut self, request: &Json) -> Result<String, String> {
        let lit = json_lit(
            request
                .get("lit")
                .ok_or("assume needs a `lit` DIMACS literal")?,
        )?;
        let session = self.session()?;
        session.assume(lit).map_err(|e| e.to_string())?;
        let pending = session.assumptions().len();
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"assume\",\"assumptions\":{pending}}}"
        ))
    }

    /// Runs one query, timing it against the server clock and routing
    /// progress lines into the snapshot stream when configured.
    fn timed_solve(&mut self) -> (Outcome, u64) {
        let start = self.clock.now_ns();
        let interval = self.progress_interval;
        let session = self.session.as_mut().expect("caller checked the session");
        let (outcome, progress_lines) = if interval > 0 {
            let mut progress = Progress::buffered(interval);
            let outcome = session.solve_observed(&mut progress);
            (outcome, progress.take_lines())
        } else {
            (session.solve(), Vec::new())
        };
        let elapsed = self.clock.now_ns().saturating_sub(start);
        for text in progress_lines {
            self.sink_lines.push(format!(
                "{{\"type\":\"progress\",\"query\":{},\"text\":\"{}\"}}",
                self.queries + 1,
                json::escape(&text)
            ));
        }
        (outcome, elapsed)
    }

    /// A `solve` with a `"portfolio":N` field: one-shot in-instance
    /// portfolio over the session's equivalent one-shot QBF (current
    /// matrix including pushed frames; see
    /// `IncrementalSolver::equivalent_qbf`). The incremental session
    /// itself is untouched — learned constraints do not flow back.
    fn cmd_solve_portfolio(&mut self, request: &Json, workers: usize) -> Result<String, String> {
        if workers == 0 {
            return Err("`portfolio` must be at least 1".to_string());
        }
        let share_len = request
            .get("share_len")
            .and_then(Json::as_u64)
            .unwrap_or(4) as usize;
        let deterministic = request
            .get("deterministic")
            .and_then(Json::as_bool)
            .unwrap_or(true);
        let epoch = request.get("epoch").and_then(Json::as_u64).unwrap_or(2048);
        if epoch == 0 {
            return Err("`epoch` must be at least 1".to_string());
        }
        let session = self.session()?;
        if !session.assumptions().is_empty() {
            // `equivalent_qbf` would bake the assumptions in, but a
            // portfolio solve does not consume them — the ambiguity is
            // worse than the restriction.
            return Err("portfolio solve does not support pending assumptions".to_string());
        }
        let qbf = session.equivalent_qbf();
        let variants = roster(&qbf, workers, deterministic, &self.config);
        let opts = PortfolioOptions {
            threads: workers,
            share_len,
            deterministic,
            epoch,
            ..PortfolioOptions::default()
        };
        let start = self.clock.now_ns();
        let out = portfolio::solve(&variants, &opts);
        let elapsed = self.clock.now_ns().saturating_sub(start);
        let stats = match out.winner {
            Some(w) => out.workers[w].stats,
            None => Stats::default(),
        };
        self.record_solve(&stats, elapsed);
        self.last_proof = None;
        let (shared, imported, discarded) = out
            .workers
            .iter()
            .fold((0u64, 0u64, 0u64), |(s, i, d), w| {
                (s + w.exported, i + w.imported, d + w.discarded)
            });
        self.registry.inc(self.ids.portfolio_shared, shared);
        self.registry.inc(self.ids.portfolio_imported, imported);
        self.registry.inc(self.ids.portfolio_discarded, discarded);
        self.registry.set(
            self.ids.portfolio_winner,
            out.winner.map_or(0, |w| w as u64 + 1),
        );
        let winner_label = out
            .winner
            .map_or(String::new(), |w| out.workers[w].label.clone());
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"solve\",\"value\":{},\"portfolio\":{{\"workers\":{},\"winner\":{},\"winner_label\":\"{}\",\"deterministic\":{},\"share_len\":{},\"epoch\":{},\"shared\":{shared},\"imported\":{imported},\"discarded\":{discarded}}},\"stats\":{}}}",
            verdict(out.value),
            out.workers.len(),
            out.winner.map_or(-1, |w| w as i64),
            json::escape(&winner_label),
            deterministic,
            out.share_len,
            epoch,
            stats_json(&stats)
        ))
    }

    /// A `solve` with `"engine":"expand"`: a one-shot run of the dual
    /// abstraction refinement engine (`qbf_expand`) over the session's
    /// equivalent one-shot QBF. The incremental session itself is
    /// untouched — no constraints flow back into the search state. An
    /// optional `"scheme"` field selects `tree` (default) or `ordered`
    /// dependencies; the server's `--budget` bounds SAT
    /// decisions+propagations.
    fn cmd_solve_expand(&mut self, request: &Json) -> Result<String, String> {
        if request.get("proof").and_then(Json::as_bool).unwrap_or(false) {
            return Err(
                "expansion solve does not produce certificates (drop \"proof\":true)".to_string(),
            );
        }
        if request.get("portfolio").is_some() {
            return Err(
                "`engine`:\"expand\" and `portfolio` are mutually exclusive".to_string(),
            );
        }
        let scheme = match request.get("scheme") {
            None => DepScheme::Tree,
            Some(s) => match s.as_str() {
                Some("tree") => DepScheme::Tree,
                Some("ordered") => DepScheme::Ordered,
                _ => return Err("`scheme` must be `tree` or `ordered`".to_string()),
            },
        };
        let session = self.session()?;
        if !session.assumptions().is_empty() {
            return Err("expansion solve does not support pending assumptions".to_string());
        }
        let qbf = session.equivalent_qbf();
        let mut config = match scheme {
            DepScheme::Tree => ExpandConfig::tree(),
            DepScheme::Ordered => ExpandConfig::ordered(),
        };
        config.step_limit = self.config.node_limit;
        let start = self.clock.now_ns();
        let out = qbf_expand::solve(&qbf, config);
        let elapsed = self.clock.now_ns().saturating_sub(start);
        // Query count and latency are engine-independent; the search
        // counters stay untouched (zeros), like a winnerless portfolio.
        self.record_solve(&Stats::default(), elapsed);
        self.last_proof = None;
        let fields = out
            .stats
            .fields()
            .iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect::<Vec<_>>()
            .join(",");
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"solve\",\"engine\":\"expand\",\"value\":{},\"expand\":{{{fields}}}}}",
            verdict(out.value)
        ))
    }

    fn cmd_solve(&mut self, request: &Json) -> Result<String, String> {
        if let Some(engine) = request.get("engine") {
            match engine.as_str() {
                Some("search") => {}
                Some("expand") => return self.cmd_solve_expand(request),
                Some(other) => {
                    return Err(format!(
                        "unknown engine `{other}` (expected `search` or `expand`)"
                    ));
                }
                None => return Err("`engine` must be a string (`search` or `expand`)".to_string()),
            }
        }
        let with_proof = request.get("proof").and_then(Json::as_bool).unwrap_or(false);
        if let Some(workers) = request.get("portfolio") {
            let workers = workers
                .as_u64()
                .ok_or("`portfolio` must be a worker count")?;
            if with_proof {
                return Err(
                    "portfolio solve does not support \"proof\":true (use `qbfsolve --portfolio --proof`)"
                        .to_string(),
                );
            }
            return self.cmd_solve_portfolio(request, workers as usize);
        }
        self.session()?;
        if with_proof {
            let instance = {
                let session = self.session.as_mut().expect("checked above");
                io::qtree::write(&session.equivalent_qbf())
            };
            let start = self.clock.now_ns();
            let (outcome, certificate) = self
                .session
                .as_mut()
                .expect("checked above")
                .solve_with_proof();
            let elapsed = self.clock.now_ns().saturating_sub(start);
            self.record_solve(&outcome.stats, elapsed);
            let certified = certificate.is_some();
            self.last_proof = certificate.map(|certificate| ProofArtifacts {
                certificate,
                instance,
            });
            Ok(format!(
                "{{\"ok\":true,\"cmd\":\"solve\",\"value\":{},\"certificate\":{certified},\"stats\":{}}}",
                verdict(outcome.value()),
                stats_json(&outcome.stats)
            ))
        } else {
            let (outcome, elapsed) = self.timed_solve();
            self.record_solve(&outcome.stats, elapsed);
            self.last_proof = None;
            Ok(format!(
                "{{\"ok\":true,\"cmd\":\"solve\",\"value\":{},\"stats\":{}}}",
                verdict(outcome.value()),
                stats_json(&outcome.stats)
            ))
        }
    }

    fn cmd_proof(&mut self, request: &Json) -> Result<String, String> {
        let artifacts = self
            .last_proof
            .as_ref()
            .ok_or("no certificate for the last solve (use `solve` with \"proof\":true)")?
            .clone();
        let bytes = artifacts.certificate.len();
        let path = request.get("path").and_then(Json::as_str);
        let instance = request.get("instance").and_then(Json::as_str);
        if path.is_none() && instance.is_none() {
            return Ok(format!(
                "{{\"ok\":true,\"cmd\":\"proof\",\"bytes\":{bytes},\"text\":\"{}\"}}",
                json::escape(&artifacts.certificate)
            ));
        }
        let mut fields = format!("{{\"ok\":true,\"cmd\":\"proof\",\"bytes\":{bytes}");
        if let Some(p) = path {
            std::fs::write(p, &artifacts.certificate)
                .map_err(|e| format!("cannot write {p}: {e}"))?;
            fields.push_str(&format!(",\"path\":\"{}\"", json::escape(p)));
        }
        if let Some(p) = instance {
            std::fs::write(p, &artifacts.instance)
                .map_err(|e| format!("cannot write {p}: {e}"))?;
            fields.push_str(&format!(",\"instance\":\"{}\"", json::escape(p)));
        }
        fields.push('}');
        Ok(fields)
    }
}
