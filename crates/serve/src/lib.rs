//! The `qbfserve` protocol: a long-lived incremental solving service.
//!
//! One JSON object per input line (JSONL), one JSON object per output
//! line, over stdin/stdout. The server wraps an
//! [`IncrementalSolver`] — learned constraints, heuristic scores and the
//! constraint arena stay hot across queries — and exposes the push/pop +
//! assumption API plus per-query statistics and certificates:
//!
//! ```text
//! {"cmd":"load","path":"data/paper_example.qtree"}
//! {"cmd":"push"}
//! {"cmd":"add","lits":[1,-3]}
//! {"cmd":"assume","lit":2}
//! {"cmd":"solve","proof":true}
//! {"cmd":"stats"}
//! {"cmd":"proof","path":"q1.qrp","instance":"q1.qtree"}
//! {"cmd":"pop"}
//! ```
//!
//! Every response carries `"ok":true` with command-specific fields, or
//! `"ok":false` with the 1-based input line number and a message — the
//! same `line N: message` discipline as the `qbf_core::io` parsers:
//!
//! ```text
//! {"ok":false,"line":4,"error":"unknown command `solev`"}
//! ```
//!
//! Errors never terminate the server; it keeps accepting requests. All
//! output is byte-deterministic: field order is fixed by the writer and
//! every value is a pure function of the request sequence (the CI gate
//! replays a scripted session twice and `cmp`s the transcripts).
//!
//! JSON is written by plain string formatting and read with the in-tree
//! `qbf_bench::json` parser — the workspace stays hermetic.

use qbf_bench::json::{self, Json};
use qbf_core::io;
use qbf_core::solver::{IncrementalError, IncrementalSolver, SolverConfig, Stats};
use qbf_core::{Lit, Qbf};

/// The certificate artifacts of the last `solve` with `"proof":true`:
/// the `qrp 1` text and the frame-restricted instance it certifies
/// (qtree format), captured at query time so `qbfcheck` can verify the
/// pair even after further `push`/`pop`/`add` traffic.
#[derive(Debug, Clone)]
struct ProofArtifacts {
    certificate: String,
    instance: String,
}

/// A `qbfserve` session: one optional loaded instance plus the last
/// query's statistics and certificate.
#[derive(Debug)]
pub struct Server {
    config: SolverConfig,
    session: Option<IncrementalSolver>,
    last_stats: Option<Stats>,
    last_proof: Option<ProofArtifacts>,
}

fn error_response(line: usize, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"line\":{line},\"error\":\"{}\"}}",
        json::escape(message)
    )
}

/// Serializes [`Stats`] as a JSON object, in [`Stats::fields`] order.
fn stats_json(stats: &Stats) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in stats.fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push('}');
    out
}

/// `qbfsolve`'s verdict encoding: `1` true, `0` false, `-1` budget.
fn verdict(value: Option<bool>) -> i32 {
    match value {
        Some(true) => 1,
        Some(false) => 0,
        None => -1,
    }
}

/// Parses an instance, dispatching on the `p qtree` / `p cnf` keyword
/// line like `qbfsolve` does.
fn parse_qbf(text: &str) -> Result<Qbf, String> {
    let keyword = text
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("p "))
        .unwrap_or("");
    if keyword.starts_with("p qtree") {
        io::qtree::parse(text).map_err(|e| e.to_string())
    } else {
        io::qdimacs::parse(text).map_err(|e| e.to_string())
    }
}

/// Extracts a DIMACS literal from a JSON number.
fn json_lit(v: &Json) -> Result<Lit, String> {
    let n = v
        .as_f64()
        .filter(|n| n.fract() == 0.0 && n.abs() <= i32::MAX as f64)
        .ok_or_else(|| "literals must be non-zero DIMACS integers".to_string())?;
    if n == 0.0 {
        return Err("literal 0 is reserved (DIMACS terminator)".to_string());
    }
    Ok(Lit::from_dimacs(n as i64))
}

impl Server {
    /// A fresh server with no loaded instance.
    pub fn new(config: SolverConfig) -> Self {
        Server {
            config,
            session: None,
            last_stats: None,
            last_proof: None,
        }
    }

    /// Loads `text` as the session instance (replacing any previous one).
    /// Returns the success response; `Err` is the parse failure message.
    pub fn load_text(&mut self, text: &str) -> Result<String, String> {
        let qbf = parse_qbf(text)?;
        let vars = qbf.num_vars();
        let clauses = qbf.matrix().len();
        self.session = Some(IncrementalSolver::new(qbf, self.config.clone()));
        self.last_stats = None;
        self.last_proof = None;
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"load\",\"vars\":{vars},\"clauses\":{clauses}}}"
        ))
    }

    /// Handles one input line and returns the response line, or `None`
    /// for blank input. `line` is the 1-based input line number used in
    /// error responses. Never panics on malformed input; the session
    /// survives every error.
    pub fn handle_line(&mut self, line: usize, input: &str) -> Option<String> {
        if input.trim().is_empty() {
            return None;
        }
        Some(match self.dispatch(input) {
            Ok(response) => response,
            Err(message) => error_response(line, &message),
        })
    }

    fn dispatch(&mut self, input: &str) -> Result<String, String> {
        let request = json::parse(input).map_err(|e| format!("malformed JSON: {e}"))?;
        let cmd = request
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request object needs a string `cmd` field")?
            .to_string();
        match cmd.as_str() {
            "load" => self.cmd_load(&request),
            "push" => {
                let level = self.session()?.push();
                Ok(format!("{{\"ok\":true,\"cmd\":\"push\",\"level\":{level}}}"))
            }
            "pop" => {
                let level = self.session()?.pop().map_err(|e| e.to_string())?;
                Ok(format!("{{\"ok\":true,\"cmd\":\"pop\",\"level\":{level}}}"))
            }
            "add" => self.cmd_add(&request),
            "assume" => self.cmd_assume(&request),
            "solve" => self.cmd_solve(&request),
            "stats" => {
                let stats = self.last_stats.ok_or("no query solved yet")?;
                Ok(format!(
                    "{{\"ok\":true,\"cmd\":\"stats\",\"stats\":{}}}",
                    stats_json(&stats)
                ))
            }
            "proof" => self.cmd_proof(&request),
            other => Err(format!("unknown command `{other}`")),
        }
    }

    fn session(&mut self) -> Result<&mut IncrementalSolver, String> {
        self.session
            .as_mut()
            .ok_or_else(|| "no instance loaded (use the `load` command)".to_string())
    }

    fn cmd_load(&mut self, request: &Json) -> Result<String, String> {
        let text = match (
            request.get("path").and_then(Json::as_str),
            request.get("text").and_then(Json::as_str),
        ) {
            (Some(path), None) => {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
            }
            (None, Some(text)) => text.to_string(),
            _ => return Err("load needs exactly one of `path` or `text`".to_string()),
        };
        self.load_text(&text)
    }

    fn cmd_add(&mut self, request: &Json) -> Result<String, String> {
        let lits = request
            .get("lits")
            .and_then(Json::as_array)
            .ok_or("add needs a `lits` array of DIMACS literals")?
            .iter()
            .map(json_lit)
            .collect::<Result<Vec<Lit>, String>>()?;
        let session = self.session()?;
        session.add_clause(&lits).map_err(|e: IncrementalError| e.to_string())?;
        let clauses = session.num_clauses();
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"add\",\"clauses\":{clauses}}}"
        ))
    }

    fn cmd_assume(&mut self, request: &Json) -> Result<String, String> {
        let lit = json_lit(
            request
                .get("lit")
                .ok_or("assume needs a `lit` DIMACS literal")?,
        )?;
        let session = self.session()?;
        session.assume(lit).map_err(|e| e.to_string())?;
        let pending = session.assumptions().len();
        Ok(format!(
            "{{\"ok\":true,\"cmd\":\"assume\",\"assumptions\":{pending}}}"
        ))
    }

    fn cmd_solve(&mut self, request: &Json) -> Result<String, String> {
        let with_proof = request.get("proof").and_then(Json::as_bool).unwrap_or(false);
        let session = self.session()?;
        if with_proof {
            let instance = io::qtree::write(&session.equivalent_qbf());
            let (outcome, certificate) = session.solve_with_proof();
            self.last_stats = Some(outcome.stats);
            let certified = certificate.is_some();
            self.last_proof = certificate.map(|certificate| ProofArtifacts {
                certificate,
                instance,
            });
            Ok(format!(
                "{{\"ok\":true,\"cmd\":\"solve\",\"value\":{},\"certificate\":{certified},\"stats\":{}}}",
                verdict(outcome.value()),
                stats_json(&outcome.stats)
            ))
        } else {
            let outcome = session.solve();
            self.last_stats = Some(outcome.stats);
            self.last_proof = None;
            Ok(format!(
                "{{\"ok\":true,\"cmd\":\"solve\",\"value\":{},\"stats\":{}}}",
                verdict(outcome.value()),
                stats_json(&outcome.stats)
            ))
        }
    }

    fn cmd_proof(&mut self, request: &Json) -> Result<String, String> {
        let artifacts = self
            .last_proof
            .as_ref()
            .ok_or("no certificate for the last solve (use `solve` with \"proof\":true)")?
            .clone();
        let bytes = artifacts.certificate.len();
        let path = request.get("path").and_then(Json::as_str);
        let instance = request.get("instance").and_then(Json::as_str);
        if path.is_none() && instance.is_none() {
            return Ok(format!(
                "{{\"ok\":true,\"cmd\":\"proof\",\"bytes\":{bytes},\"text\":\"{}\"}}",
                json::escape(&artifacts.certificate)
            ));
        }
        let mut fields = format!("{{\"ok\":true,\"cmd\":\"proof\",\"bytes\":{bytes}");
        if let Some(p) = path {
            std::fs::write(p, &artifacts.certificate)
                .map_err(|e| format!("cannot write {p}: {e}"))?;
            fields.push_str(&format!(",\"path\":\"{}\"", json::escape(p)));
        }
        if let Some(p) = instance {
            std::fs::write(p, &artifacts.instance)
                .map_err(|e| format!("cannot write {p}: {e}"))?;
            fields.push_str(&format!(",\"instance\":\"{}\"", json::escape(p)));
        }
        fields.push('}');
        Ok(fields)
    }
}
