//! `qbfserve` — the long-lived incremental solving service.
//!
//! Reads one JSONL request per stdin line, writes one JSON response per
//! stdout line (see the `qbf_serve` crate docs for the protocol). An
//! instance can be preloaded from the command line; further `load`
//! commands replace it. Malformed requests produce structured errors and
//! the server keeps accepting input until EOF.
//!
//! Observability flags:
//!
//! * `--manual-clock [STEP]` — time queries against a deterministic
//!   `ManualClock` advancing `STEP` ns per read (default 1000) instead of
//!   wall time, making every metrics artifact byte-deterministic (the CI
//!   replay gate runs under this flag and `cmp`s two sessions).
//! * `--metrics-jsonl FILE` — append the snapshot stream (periodic
//!   snapshots and routed progress lines, one JSON object per line) to
//!   FILE.
//! * `--metrics-every N` — queue a full metrics snapshot into the stream
//!   after every N-th query.
//! * `--progress N` — route engine progress lines (every N leaves) into
//!   the snapshot stream instead of stderr.

use std::io::{BufRead, Write};

use qbf_core::metrics::ManualClock;
use qbf_core::solver::SolverConfig;
use qbf_serve::Server;

fn usage() -> ! {
    eprintln!(
        "usage: qbfserve [--to|--po] [--no-pure] [--no-learning] [--budget N] \
         [--manual-clock [STEP]] [--metrics-jsonl FILE] [--metrics-every N] \
         [--progress N] [FILE]"
    );
    std::process::exit(1);
}

fn main() {
    let mut config = SolverConfig::partial_order();
    let mut file: Option<String> = None;
    let mut manual_clock: Option<u64> = None;
    let mut metrics_jsonl: Option<String> = None;
    let mut metrics_every: u64 = 0;
    let mut progress: u64 = 0;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        i += 1;
        match a {
            "--to" => config = SolverConfig::total_order(),
            "--po" => config = SolverConfig::partial_order(),
            "--no-pure" => config.pure_literals = false,
            "--no-learning" => config.learning = false,
            "--budget" => match args.get(i).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    config.node_limit = Some(n);
                    i += 1;
                }
                None => usage(),
            },
            "--manual-clock" => {
                // The step operand is optional: consume the next argument
                // only if it parses as a number.
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(step) => {
                        manual_clock = Some(step);
                        i += 1;
                    }
                    None => manual_clock = Some(1000),
                }
            }
            "--metrics-jsonl" => match args.get(i) {
                Some(path) => {
                    metrics_jsonl = Some(path.clone());
                    i += 1;
                }
                None => usage(),
            },
            "--metrics-every" => match args.get(i).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    metrics_every = n;
                    i += 1;
                }
                None => usage(),
            },
            "--progress" => match args.get(i).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    progress = n;
                    i += 1;
                }
                None => usage(),
            },
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => file = Some(f.to_string()),
            _ => usage(),
        }
    }

    let mut server = match manual_clock {
        Some(step) => Server::with_clock(config, Box::new(ManualClock::new(step))),
        None => Server::new(config),
    };
    server.set_snapshot_every(metrics_every);
    server.set_progress_interval(progress);
    let mut sink_file = metrics_jsonl.map(|path| {
        std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create metrics sink {path}: {e}"))
    });
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    if let Some(path) = file {
        // The preload is line 0 of the session: its response is printed
        // like any other so transcripts stay replayable.
        let response = match std::fs::read_to_string(&path) {
            Ok(text) => match server.load_text(&text) {
                Ok(r) => r,
                Err(e) => format!("{{\"ok\":false,\"line\":0,\"error\":\"{}\"}}", esc(&e)),
            },
            Err(e) => format!(
                "{{\"ok\":false,\"line\":0,\"error\":\"cannot read {}: {}\"}}",
                esc(&path),
                esc(&e.to_string())
            ),
        };
        writeln!(out, "{response}").expect("stdout");
    }

    let stdin = std::io::stdin();
    for (i, line) in stdin.lock().lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: stdin: {e}");
                std::process::exit(1);
            }
        };
        if let Some(response) = server.handle_line(i + 1, &line) {
            writeln!(out, "{response}").expect("stdout");
            out.flush().expect("stdout");
        }
        if let Some(f) = sink_file.as_mut() {
            for sink_line in server.drain_sink_lines() {
                writeln!(f, "{sink_line}").expect("metrics sink");
            }
        }
    }
    // A final snapshot closes the stream so even sessions without
    // `--metrics-every` leave a summary artifact behind.
    if let Some(f) = sink_file.as_mut() {
        writeln!(f, "{{\"type\":\"snapshot\",\"snapshot\":{}}}", server.metrics_snapshot())
            .expect("metrics sink");
    }
}

fn esc(s: &str) -> String {
    qbf_bench::json::escape(s)
}
