//! `qbfserve` — the long-lived incremental solving service.
//!
//! Reads one JSONL request per stdin line, writes one JSON response per
//! stdout line (see the `qbf_serve` crate docs for the protocol). An
//! instance can be preloaded from the command line; further `load`
//! commands replace it. Malformed requests produce structured errors and
//! the server keeps accepting input until EOF.

use std::io::{BufRead, Write};

use qbf_core::solver::SolverConfig;
use qbf_serve::Server;

fn usage() -> ! {
    eprintln!("usage: qbfserve [--to|--po] [--no-pure] [--no-learning] [--budget N] [FILE]");
    std::process::exit(1);
}

fn main() {
    let mut config = SolverConfig::partial_order();
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--to" => config = SolverConfig::total_order(),
            "--po" => config = SolverConfig::partial_order(),
            "--no-pure" => config.pure_literals = false,
            "--no-learning" => config.learning = false,
            "--budget" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.node_limit = Some(n),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => file = Some(f.to_string()),
            _ => usage(),
        }
    }

    let mut server = Server::new(config);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    if let Some(path) = file {
        // The preload is line 0 of the session: its response is printed
        // like any other so transcripts stay replayable.
        let response = match std::fs::read_to_string(&path) {
            Ok(text) => match server.load_text(&text) {
                Ok(r) => r,
                Err(e) => format!("{{\"ok\":false,\"line\":0,\"error\":\"{}\"}}", esc(&e)),
            },
            Err(e) => format!(
                "{{\"ok\":false,\"line\":0,\"error\":\"cannot read {}: {}\"}}",
                esc(&path),
                esc(&e.to_string())
            ),
        };
        writeln!(out, "{response}").expect("stdout");
    }

    let stdin = std::io::stdin();
    for (i, line) in stdin.lock().lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: stdin: {e}");
                std::process::exit(1);
            }
        };
        if let Some(response) = server.handle_line(i + 1, &line) {
            writeln!(out, "{response}").expect("stdout");
            out.flush().expect("stdout");
        }
    }
}

fn esc(s: &str) -> String {
    qbf_bench::json::escape(s)
}
