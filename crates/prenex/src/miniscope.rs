//! Scope minimisation (anti-prenexing) of prenex QBFs — §VII-D of the
//! paper.
//!
//! Only the two paper rules are applied, innermost quantifiers first:
//!
//! * `Qz (ϕ ∧ ψ) ↦ (Qz ϕ) ∧ ψ` when `z` does not occur in `ψ` (modulo
//!   associativity/commutativity of `∧`), and
//! * `Q1 z1 Q2 z2 ϕ ↦ Q2 z2 Q1 z1 ϕ` when `Q1 = Q2`.
//!
//! After minimisation, a variable whose scope is a single clause is
//! eliminated: the clause is removed if the variable is existential, the
//! variable's literals are removed if it is universal. The ∀-splitting rule
//! (20) of QUBOS/QUANTOR/SKIZZO is deliberately **not** applied (the paper
//! reports it degrades the solver).

use qbf_core::{Clause, Matrix, PrefixBuilder, Qbf, Quantifier, Var};

/// A scope-minimisation outcome.
#[derive(Debug, Clone)]
pub struct Miniscoped {
    /// The resulting (generally non-prenex) QBF.
    pub qbf: Qbf,
    /// Variables eliminated by the single-clause-scope rule.
    pub eliminated_vars: usize,
    /// Clauses removed by the single-clause-scope rule.
    pub removed_clauses: usize,
}

/// Internal scope tree node.
#[derive(Debug)]
enum Scope {
    /// A leaf holding one clause (by index into the working clause list).
    Clause(usize),
    /// `Q v` over a group of sub-scopes.
    Quant(Quantifier, Var, Vec<Scope>),
}

impl Scope {
    fn mentions(&self, clauses: &[Option<Clause>], v: Var) -> bool {
        match self {
            Scope::Clause(idx) => clauses[*idx]
                .as_ref()
                .map(|c| c.contains_var(v))
                .unwrap_or(false),
            Scope::Quant(_, _, children) => children.iter().any(|c| c.mentions(clauses, v)),
        }
    }

    /// Indices of live clauses in this scope.
    fn live_clauses(&self, clauses: &[Option<Clause>], out: &mut Vec<usize>) {
        match self {
            Scope::Clause(idx) => {
                if clauses[*idx].is_some() {
                    out.push(*idx);
                }
            }
            Scope::Quant(_, _, children) => {
                for c in children {
                    c.live_clauses(clauses, out);
                }
            }
        }
    }
}

/// Minimises the scope of every quantifier of a *prenex* QBF, producing a
/// non-prenex QBF with the same value.
///
/// # Errors
///
/// Returns `Err` with a description if the input is not prenex.
///
/// # Examples
///
/// Prenexing the paper's running example and miniscoping it recovers the
/// original two-subtree structure:
///
/// ```
/// use qbf_core::samples;
/// use qbf_prenex::{miniscope, prenex, Strategy};
/// let original = samples::paper_example();
/// let flat = prenex(&original, Strategy::ExistsUpForallUp);
/// let recovered = miniscope(&flat)?.qbf;
/// assert!(!recovered.is_prenex());
/// # Ok::<(), String>(())
/// ```
pub fn miniscope(qbf: &Qbf) -> Result<Miniscoped, String> {
    if !qbf.is_prenex() {
        return Err("miniscope expects a prenex QBF".to_string());
    }
    let num_vars = qbf.num_vars();
    let mut clauses: Vec<Option<Clause>> = qbf.matrix().iter().cloned().map(Some).collect();

    // Build the scope forest, innermost variables first: each variable
    // bundles the current groups that mention it (the `Qz(ϕ∧ψ)` rule);
    // same-block variables commute (the same-quantifier swap rule).
    let mut groups: Vec<Scope> = (0..clauses.len()).map(Scope::Clause).collect();
    let blocks = if qbf.prefix().num_bound() == 0 {
        Vec::new()
    } else {
        qbf.prefix().linear_blocks()
    };
    for (quant, vars) in blocks.iter().rev() {
        for &v in vars {
            let (mine, rest): (Vec<Scope>, Vec<Scope>) =
                groups.into_iter().partition(|g| g.mentions(&clauses, v));
            groups = rest;
            if mine.is_empty() {
                // Vacuous quantifier: drop it.
                continue;
            }
            groups.push(Scope::Quant(*quant, v, mine));
        }
    }

    // Single-clause-scope elimination, to fixpoint.
    let mut stats = ElimStats::default();
    loop {
        let mut changed = false;
        groups = groups
            .into_iter()
            .flat_map(|g| eliminate(g, &mut clauses, &mut stats, &mut changed))
            .collect();
        if !changed {
            break;
        }
    }

    // Flatten the scope forest into a Prefix.
    let mut builder = PrefixBuilder::new(num_vars);
    fn emit(scope: &Scope, parent: Option<qbf_core::BlockId>, builder: &mut PrefixBuilder) {
        if let Scope::Quant(q, v, children) = scope {
            let id = match parent {
                None => builder.add_root(*q, [*v]),
                Some(p) => builder.add_child(p, *q, [*v]),
            }
            .expect("scope tree binds each variable once");
            for c in children {
                emit(c, Some(id), builder);
            }
        }
    }
    for g in &groups {
        emit(g, None, &mut builder);
    }
    let prefix = builder.finish().map_err(|e| e.to_string())?;
    let matrix = Matrix::from_clauses(num_vars, clauses.into_iter().flatten());
    let qbf = Qbf::new_closing_free(prefix, matrix).map_err(|e| e.to_string())?;
    Ok(Miniscoped {
        qbf,
        eliminated_vars: stats.vars,
        removed_clauses: stats.clauses,
    })
}

#[derive(Debug, Default)]
struct ElimStats {
    vars: usize,
    clauses: usize,
}

/// Applies the single-clause-scope rule to one node; the returned list
/// splices into the parent scope.
fn eliminate(
    scope: Scope,
    clauses: &mut [Option<Clause>],
    stats: &mut ElimStats,
    changed: &mut bool,
) -> Vec<Scope> {
    match scope {
        Scope::Clause(idx) => {
            if clauses[idx].is_some() {
                vec![Scope::Clause(idx)]
            } else {
                vec![]
            }
        }
        Scope::Quant(q, v, children) => {
            let kids: Vec<Scope> = children
                .into_iter()
                .flat_map(|c| eliminate(c, clauses, stats, changed))
                .collect();
            let mut live = Vec::new();
            for k in &kids {
                k.live_clauses(clauses, &mut live);
            }
            match live.len() {
                0 => {
                    // The whole scope is gone (kids are empty too).
                    *changed = true;
                    vec![]
                }
                1 => {
                    let idx = live[0];
                    let clause = clauses[idx].clone().expect("live clause present");
                    if !clause.contains_var(v) {
                        // v became vacuous: drop the binder, splice kids.
                        *changed = true;
                        return kids;
                    }
                    *changed = true;
                    stats.vars += 1;
                    if q == Quantifier::Exists {
                        // ∃v C is true when C mentions v: drop the clause.
                        clauses[idx] = None;
                        stats.clauses += 1;
                        vec![]
                    } else {
                        // ∀v C ≡ C without v's literals.
                        clauses[idx] =
                            Some(clause.without(v.positive()).without(v.negative()));
                        kids
                    }
                }
                _ => vec![Scope::Quant(q, v, kids)],
            }
        }
    }
}

/// The §VII-D footnote-9 metric: among (existential `x`, universal `y`)
/// pairs that are ordered in the prenex QBF, the percentage that are
/// unordered in the non-prenex one ("PO/TO"). The paper includes an
/// instance in the Fig. 7 test set iff this exceeds 20 %.
pub fn po_to_ratio(nonprenex: &Qbf, prenex: &Qbf) -> f64 {
    let n = prenex.num_vars().min(nonprenex.num_vars());
    let mut ordered = 0u64;
    let mut freed = 0u64;
    for i in 0..n {
        let x = Var::new(i);
        if !prenex.prefix().is_existential(x) || prenex.prefix().quant(x).is_none() {
            continue;
        }
        for j in 0..n {
            let y = Var::new(j);
            if !prenex.prefix().is_universal(y) {
                continue;
            }
            let p = prenex.prefix();
            if p.precedes(x, y) || p.precedes(y, x) {
                ordered += 1;
                let q = nonprenex.prefix();
                if !q.precedes(x, y) && !q.precedes(y, x) {
                    freed += 1;
                }
            }
        }
    }
    if ordered == 0 {
        0.0
    } else {
        100.0 * freed as f64 / ordered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{prenex, Strategy};
    use qbf_core::{samples, semantics, Lit, Prefix};

    #[test]
    fn recovers_paper_example_structure() {
        let original = samples::paper_example();
        let flat = prenex(&original, Strategy::ExistsUpForallUp);
        assert!(flat.is_prenex());
        let out = miniscope(&flat).unwrap();
        assert!(!out.qbf.is_prenex());
        // x0 at the top, two ∀ subtrees below.
        let p = out.qbf.prefix();
        assert_eq!(p.roots().len(), 1);
        let root = p.roots()[0];
        assert_eq!(p.block_vars(root), &[Var::new(0)]);
        assert_eq!(p.block_children(root).len(), 2);
        assert_eq!(semantics::eval(&out.qbf), semantics::eval(&original));
    }

    #[test]
    fn value_preserved_on_random_prenex_qbfs() {
        let mut state = 0xabcdef12u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545f4914f6cdd1d)
        };
        for round in 0..60 {
            let q = random_prenex(&mut next, 6, 8);
            let expected = semantics::eval(&q);
            let out = miniscope(&q).unwrap();
            assert_eq!(
                semantics::eval(&out.qbf),
                expected,
                "round {round}: {q} vs {}",
                out.qbf
            );
        }
    }

    #[test]
    fn single_clause_scope_existential_removes_clause() {
        // ∃a (a ∨ b') ∧ (b) with b free... keep closed: ∀y ∃a ((a ∨ y)) ∧ (¬y ∨ ...)
        // Simplest: ∃a (a): clause removed, formula trivially true.
        let q = qbf_core::io::qdimacs::parse("p cnf 1 1\ne 1 0\n1 0\n").unwrap();
        let out = miniscope(&q).unwrap();
        assert_eq!(out.removed_clauses, 1);
        assert!(out.qbf.matrix().is_empty());
        assert!(semantics::eval(&out.qbf));
    }

    #[test]
    fn single_clause_scope_universal_shrinks_clause() {
        // ∃x ∀y (x ∨ y): y's scope is one clause → drop y's literal.
        let q = qbf_core::io::qdimacs::parse("p cnf 2 1\ne 1 0\na 2 0\n1 2 0\n").unwrap();
        let out = miniscope(&q).unwrap();
        assert_eq!(semantics::eval(&out.qbf), semantics::eval(&q));
        // after shrinking, (x) is a single-clause existential scope too:
        // everything dissolves.
        assert!(out.qbf.matrix().is_empty() || out.qbf.matrix().len() <= 1);
        assert!(out.eliminated_vars >= 1);
    }

    #[test]
    fn independent_groups_split_into_roots() {
        // ∃x1 x2 ((x1) ∧ (x2)-groups with extra clauses to avoid
        // single-clause elimination).
        let q = qbf_core::io::qdimacs::parse(
            "p cnf 4 4\ne 1 2 3 4 0\n1 3 0\n-1 3 0\n2 4 0\n-2 4 0\n",
        )
        .unwrap();
        let out = miniscope(&q).unwrap();
        assert_eq!(out.qbf.prefix().roots().len(), 2);
        assert!(semantics::eval(&out.qbf));
    }

    #[test]
    fn po_to_ratio_metric() {
        let original = samples::paper_example();
        let flat = prenex(&original, Strategy::ExistsUpForallUp);
        // In the flat version every (x, y) pair is ordered; in the original,
        // y1 vs x3/x4 and y2 vs x1/x2 are free.
        let ratio = po_to_ratio(&original, &flat);
        assert!(ratio > 20.0, "ratio {ratio}");
        assert_eq!(po_to_ratio(&flat, &flat), 0.0);
    }

    #[test]
    fn rejects_nonprenex_input() {
        let q = samples::two_independent_games();
        assert!(miniscope(&q).is_err());
    }

    #[test]
    fn no_bound_vars_is_fine() {
        let q = Qbf::new(Prefix::empty(0), Matrix::new(0)).unwrap();
        let out = miniscope(&q).unwrap();
        assert!(semantics::eval(&out.qbf));
    }

    fn random_prenex(next: &mut impl FnMut() -> u64, num_vars: usize, num_clauses: usize) -> Qbf {
        use qbf_core::Quantifier::*;
        let mut blocks: Vec<(Quantifier, Vec<Var>)> = Vec::new();
        for i in 0..num_vars {
            let q = if next().is_multiple_of(2) { Exists } else { Forall };
            blocks.push((q, vec![Var::new(i)]));
        }
        let prefix = Prefix::prenex(num_vars, blocks).unwrap();
        let mut clauses = Vec::new();
        while clauses.len() < num_clauses {
            let len = 1 + (next() % 3) as usize;
            let lits: Vec<Lit> = (0..len)
                .map(|_| Var::new((next() % num_vars as u64) as usize).lit(next().is_multiple_of(2)))
                .collect();
            if let Ok(c) = Clause::new(lits) {
                clauses.push(c);
            }
        }
        Qbf::new_closing_free(prefix, Matrix::from_clauses(num_vars, clauses)).unwrap()
    }
}
