//! Canonical portfolio rosters: the PO solver, the four TO prenexings
//! and seeded heuristic variants over one instance.
//!
//! This is the prenex-aware half of [`qbf_core::portfolio`]: it knows
//! how to derive sound variant rosters ([`roster`]) whose sharing
//! classes satisfy the module's compatibility contract — every
//! `Total(i)` prefix produced by [`prenex`] is a linear extension of the
//! base instance's partial order, and all variants keep the base's
//! matrix and variable numbering.

use qbf_core::portfolio::{ExternalWorker, ShareClass, Variant};
use qbf_core::solver::{HeuristicKind, SolverConfig};
use qbf_core::Qbf;
use qbf_expand::{ExpandConfig, ExpandWorker};

use crate::{prenex, Strategy};

/// Size of the fixed deterministic roster: PO, the four TO prenexings,
/// two decay variants and one seeded random-heuristic variant.
pub const DETERMINISTIC_ROSTER: usize = 8;

/// Short ASCII tag of a prenexing strategy (the unicode `Display` form
/// is unfriendly to transcripts and file names).
fn code(s: Strategy) -> &'static str {
    match s {
        Strategy::ExistsUpForallUp => "eu-au",
        Strategy::ExistsDownForallDown => "ed-ad",
        Strategy::ExistsDownForallUp => "ed-au",
        Strategy::ExistsUpForallDown => "eu-ad",
    }
}

/// Index of a strategy in [`Strategy::ALL`], which tags its
/// [`ShareClass::Total`] class: identically-prenexed workers may
/// exchange constraints, differently-prenexed ones may not.
fn class_of(s: Strategy) -> ShareClass {
    let i = Strategy::ALL
        .iter()
        .position(|&t| t == s)
        .expect("Strategy::ALL is exhaustive");
    ShareClass::Total(i as u8)
}

fn po_variant(qbf: &Qbf, label: &str, config: SolverConfig) -> Variant {
    Variant {
        label: label.to_string(),
        qbf: qbf.clone(),
        config,
        class: ShareClass::Partial,
    }
}

fn slot(qbf: &Qbf, base: &SolverConfig, i: usize) -> Variant {
    // Derive each worker config from the caller's base (budget limits,
    // learning/pure axes, …), overriding only heuristic and decay.
    let po = SolverConfig {
        heuristic: SolverConfig::partial_order().heuristic,
        ..base.clone()
    };
    let to = SolverConfig {
        heuristic: SolverConfig::total_order().heuristic,
        ..base.clone()
    };
    match i {
        0 => po_variant(qbf, "po", po),
        1..=4 => {
            let s = Strategy::ALL[i - 1];
            Variant {
                label: format!("to-{}", code(s)),
                qbf: prenex(qbf, s),
                config: to,
                class: class_of(s),
            }
        }
        5 => po_variant(qbf, "po-decay64", SolverConfig { decay_interval: 64, ..po }),
        6 => {
            let s = Strategy::ALL[0];
            Variant {
                label: format!("to-{}-decay64", code(s)),
                qbf: prenex(qbf, s),
                config: SolverConfig { decay_interval: 64, ..to },
                class: class_of(s),
            }
        }
        _ => {
            // Seeded heuristic variants fill the remaining slots; the
            // seed is a pure function of the slot so rosters stay
            // reproducible.
            let seed = 0x9e37_79b9_7f4a_7c15u64 ^ (i as u64).wrapping_mul(0x61c8_8647);
            po_variant(
                qbf,
                &format!("po-rand{}", i - 7),
                SolverConfig { heuristic: HeuristicKind::Random(seed), ..po },
            )
        }
    }
}

/// Builds the portfolio roster for `qbf`.
///
/// In deterministic mode the roster is *always* the fixed
/// [`DETERMINISTIC_ROSTER`] canonical sequence — the `workers` argument
/// then only sizes the thread pool, never the computation, which is
/// what makes the transcript byte-identical for any worker count. In
/// free-running mode the roster is the first `workers` entries of the
/// same sequence (extended with further seeded variants past 8).
///
/// `base` supplies the budget and feature axes every variant inherits
/// (node/conflict limits, learning, pure literals, …); the roster
/// overrides heuristic, decay interval and — for TO slots — the prefix.
pub fn roster(qbf: &Qbf, workers: usize, deterministic: bool, base: &SolverConfig) -> Vec<Variant> {
    let n = if deterministic { DETERMINISTIC_ROSTER } else { workers.max(1) };
    (0..n).map(|i| slot(qbf, base, i)).collect()
}

/// Number of expansion entries [`expand_workers`] contributes to a
/// cross-paradigm roster.
pub const EXPAND_ROSTER: usize = 2;

/// Builds the expansion side of a cross-paradigm portfolio: two
/// [`qbf_expand`] engines over the *base* (unprenexed) instance, one
/// per dependency scheme — `expand-po` (tree dependencies, the PO view)
/// and `expand-to` (preorder dependencies, the TO view). The returned
/// boxes plug into [`qbf_core::portfolio::solve_mixed`] after the
/// search roster; `step_limit` bounds each engine's own cost (SAT
/// decisions + propagations), mirroring the search side's node limit.
pub fn expand_workers(
    qbf: &Qbf,
    step_limit: Option<u64>,
) -> Vec<Box<dyn ExternalWorker + '_>> {
    let configs = [
        ("expand-po", ExpandConfig::tree()),
        ("expand-to", ExpandConfig::ordered()),
    ];
    configs
        .into_iter()
        .map(|(label, mut config)| {
            config.step_limit = step_limit;
            Box::new(ExpandWorker::new(label, qbf, config))
                as Box<dyn ExternalWorker + '_>
        })
        .collect()
}
