//! The four prenexing strategies ∃↑∀↑, ∃↑∀↓, ∃↓∀↑, ∃↓∀↓ of Egly, Seidl,
//! Tompits, Woltran and Zolda (reference 12 of the paper, discussed in
//! §V).
//!
//! A strategy linearizes the quantifier forest into a prenex prefix that
//! *extends* the partial order `≺` and — whenever the deepest-level
//! variables are existential and all roots share a quantifier — preserves
//! the prefix level (prenex optimality). `↑` places a quantifier's blocks
//! as high (outer) as possible, `↓` as low (inner) as possible:
//!
//! * the `↑` quantifier receives its globally earliest slots (computed by
//!   an all-up pass);
//! * the `↓` quantifier is then pushed as deep as the fixed `↑` slots and
//!   the forest structure allow (a bottom-up maximization).
//!
//! On the paper's example (9) this reproduces the four prefixes of (10)
//! exactly (see the tests).

use std::collections::HashMap;
use std::fmt;

use qbf_core::{BlockId, Prefix, Qbf, Quantifier, Var};

/// One of the four prenex-optimal strategies of Egly et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// ∃↑∀↑ — both quantifiers as high as possible (the strategy the
    /// paper's experiments found best for QUBE(TO) on the NCF suite).
    ExistsUpForallUp,
    /// ∃↑∀↓.
    ExistsUpForallDown,
    /// ∃↓∀↑.
    ExistsDownForallUp,
    /// ∃↓∀↓.
    ExistsDownForallDown,
}

impl Strategy {
    /// All four strategies, in the paper's order.
    pub const ALL: [Strategy; 4] = [
        Strategy::ExistsUpForallUp,
        Strategy::ExistsDownForallDown,
        Strategy::ExistsDownForallUp,
        Strategy::ExistsUpForallDown,
    ];

    /// Whether the given quantifier is shifted up (`↑`) by this strategy.
    pub fn is_up(self, q: Quantifier) -> bool {
        match (self, q) {
            (Strategy::ExistsUpForallUp, _) => true,
            (Strategy::ExistsUpForallDown, Quantifier::Exists) => true,
            (Strategy::ExistsUpForallDown, Quantifier::Forall) => false,
            (Strategy::ExistsDownForallUp, Quantifier::Exists) => false,
            (Strategy::ExistsDownForallUp, Quantifier::Forall) => true,
            (Strategy::ExistsDownForallDown, _) => false,
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::ExistsUpForallUp => "∃↑∀↑",
            Strategy::ExistsUpForallDown => "∃↑∀↓",
            Strategy::ExistsDownForallUp => "∃↓∀↑",
            Strategy::ExistsDownForallDown => "∃↓∀↓",
        };
        write!(f, "{name}")
    }
}

/// Converts a QBF to prenex form with the given strategy. The matrix is
/// unchanged; the resulting prefix extends the partial order of the input
/// (§V).
///
/// # Examples
///
/// ```
/// use qbf_core::samples;
/// use qbf_prenex::{prenex, Strategy};
/// let q = samples::paper_example();
/// let p = prenex(&q, Strategy::ExistsUpForallUp);
/// assert!(p.is_prenex());
/// assert_eq!(p.prefix().prefix_level(), q.prefix().prefix_level());
/// assert_eq!(qbf_core::semantics::eval(&p), qbf_core::semantics::eval(&q));
/// ```
pub fn prenex(qbf: &Qbf, strategy: Strategy) -> Qbf {
    let prefix = qbf.prefix();
    if prefix.is_prenex() {
        return qbf.clone();
    }
    let slots = assign_slots(prefix, strategy);
    let num_slots = slots.values().map(|&(s, _)| s).max().unwrap_or(0);
    let mut slot_vars: Vec<(Option<Quantifier>, Vec<Var>)> = vec![(None, Vec::new()); num_slots];
    for b in prefix.blocks() {
        let (s, q) = slots[&b];
        let entry = &mut slot_vars[s - 1];
        debug_assert!(entry.0.is_none() || entry.0 == Some(q), "slot quantifier clash");
        entry.0 = Some(q);
        entry.1.extend(prefix.block_vars(b).iter().copied());
    }
    let blocks = slot_vars
        .into_iter()
        .filter_map(|(q, vars)| q.map(|q| (q, vars)))
        .filter(|(_, vars)| !vars.is_empty());
    let new_prefix =
        Prefix::prenex(prefix.num_vars(), blocks).expect("relinearized prefix is well-formed");
    Qbf::new(new_prefix, qbf.matrix().clone()).expect("matrix variables unchanged")
}

/// Computes the slot (1-based) and quantifier of every block.
fn assign_slots(prefix: &Prefix, strategy: Strategy) -> HashMap<BlockId, (usize, Quantifier)> {
    let k = prefix.prefix_level() as usize;
    // Slot parity: uniform-rooted forests start slot 1 with the root
    // quantifier; mixed-rooted forests get one extra slot headed by ∃.
    let root_quants: Vec<Quantifier> = prefix
        .roots()
        .iter()
        .map(|&r| prefix.block_quant(r))
        .collect();
    let uniform = root_quants.windows(2).all(|w| w[0] == w[1]);
    let (num_slots, slot1) = if uniform {
        (k, root_quants.first().copied().unwrap_or(Quantifier::Exists))
    } else {
        (k + 1, Quantifier::Exists)
    };
    let slot_quant = |s: usize| -> Quantifier {
        if s % 2 == 1 {
            slot1
        } else {
            slot1.dual()
        }
    };
    // Earliest slot ≥ `from` whose quantifier is `q`.
    let ceil_slot = |from: usize, q: Quantifier| -> usize {
        if slot_quant(from) == q {
            from
        } else {
            from + 1
        }
    };
    // Latest slot ≤ `until` whose quantifier is `q`.
    let floor_slot = |until: usize, q: Quantifier| -> usize {
        if slot_quant(until) == q {
            until
        } else {
            until - 1
        }
    };

    let dfs: Vec<BlockId> = prefix.blocks_dfs().collect();

    // All-up pass (top-down): earliest slots for everything.
    let mut up: HashMap<BlockId, usize> = HashMap::new();
    for &b in &dfs {
        let q = prefix.block_quant(b);
        let lower = match prefix.block_parent(b) {
            None => 1,
            Some(p) => {
                let ps = up[&p];
                if prefix.block_quant(p) == q {
                    ps
                } else {
                    ps + 1
                }
            }
        };
        up.insert(b, ceil_slot(lower, q));
    }

    // Alternation height: minimal number of alternation levels the subtree
    // of `b` needs at and below `b`'s slot.
    let mut height: HashMap<BlockId, usize> = HashMap::new();
    for &b in dfs.iter().rev() {
        let q = prefix.block_quant(b);
        let mut h = 1usize;
        for &c in prefix.block_children(b) {
            let extra = usize::from(prefix.block_quant(c) != q);
            h = h.max(height[&c] + extra);
        }
        height.insert(b, h);
    }

    // Down pass (bottom-up): push the ↓-quantifier's blocks as deep as the
    // structure and the fixed ↑ slots allow.
    let mut slots: HashMap<BlockId, (usize, Quantifier)> = HashMap::new();
    for &b in dfs.iter().rev() {
        let q = prefix.block_quant(b);
        if strategy.is_up(q) {
            slots.insert(b, (up[&b], q));
            continue;
        }
        let mut ub = floor_slot(num_slots - height[&b] + 1, q);
        for &c in prefix.block_children(b) {
            let (cs, cq) = *slots.get(&c).expect("children processed first (reverse DFS)");
            ub = ub.min(if cq == q { cs } else { floor_slot(cs - 1, q) });
        }
        slots.insert(b, (ub, q));
    }

    // Sanity: the linearization must extend ≺.
    if cfg!(debug_assertions) {
        for &b in &dfs {
            if let Some(p) = prefix.block_parent(b) {
                let (bs, bq) = slots[&b];
                let (ps, pq) = slots[&p];
                if pq == bq {
                    debug_assert!(ps <= bs, "same-quant order violated");
                } else {
                    debug_assert!(ps < bs, "≺ violated by slot assignment");
                }
            }
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::{samples, semantics, Clause, Lit, Matrix, PrefixBuilder, Quantifier::*};

    fn v(i: usize) -> Var {
        Var::new(i)
    }

    /// The quantifier structure of the paper's example (9):
    /// `∃x (∀y1 ∃x1 ∀y2 ∃x2 ϕ0 ∧ ∀y'1 ∃x'1 ϕ1 ∧ ∃x''1 ϕ2)`
    /// with numbering x=0, y1=1, x1=2, y2=3, x2=4, y'1=5, x'1=6, x''1=7.
    fn example9() -> Qbf {
        let mut b = PrefixBuilder::new(8);
        let x = b.add_root(Exists, [v(0)]).unwrap();
        let y1 = b.add_child(x, Forall, [v(1)]).unwrap();
        let x1 = b.add_child(y1, Exists, [v(2)]).unwrap();
        let y2 = b.add_child(x1, Forall, [v(3)]).unwrap();
        b.add_child(y2, Exists, [v(4)]).unwrap();
        let yp1 = b.add_child(x, Forall, [v(5)]).unwrap();
        b.add_child(yp1, Exists, [v(6)]).unwrap();
        b.add_child(x, Exists, [v(7)]).unwrap();
        let prefix = b.finish().unwrap();
        // A matrix mentioning every variable once keeps them all relevant.
        let clause = |lits: &[i64]| Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d))).unwrap();
        let matrix = Matrix::from_clauses(
            8,
            [
                clause(&[1, 2, 3, 4, 5]),
                clause(&[1, 6, 7]),
                clause(&[1, 8]),
            ],
        );
        Qbf::new(prefix, matrix).unwrap()
    }

    fn blocks_of(q: &Qbf) -> Vec<(Quantifier, Vec<Var>)> {
        q.prefix().linear_blocks()
    }

    #[test]
    fn example9_exists_up_forall_up() {
        // (10): ∃x x''1 ∀y1 y'1 ∃x1 x'1 ∀y2 ∃x2
        let p = prenex(&example9(), Strategy::ExistsUpForallUp);
        assert_eq!(
            blocks_of(&p),
            vec![
                (Exists, vec![v(0), v(7)]),
                (Forall, vec![v(1), v(5)]),
                (Exists, vec![v(2), v(6)]),
                (Forall, vec![v(3)]),
                (Exists, vec![v(4)]),
            ]
        );
    }

    #[test]
    fn example9_exists_up_forall_down() {
        // (10): coincides with ∃↑∀↑ on this example.
        let p = prenex(&example9(), Strategy::ExistsUpForallDown);
        assert_eq!(
            blocks_of(&p),
            blocks_of(&prenex(&example9(), Strategy::ExistsUpForallUp))
        );
    }

    #[test]
    fn example9_exists_down_forall_up() {
        // (10): ∃x ∀y1 y'1 ∃x1 ∀y2 ∃x2 x'1 x''1
        let p = prenex(&example9(), Strategy::ExistsDownForallUp);
        assert_eq!(
            blocks_of(&p),
            vec![
                (Exists, vec![v(0)]),
                (Forall, vec![v(1), v(5)]),
                (Exists, vec![v(2)]),
                (Forall, vec![v(3)]),
                (Exists, vec![v(4), v(6), v(7)]),
            ]
        );
    }

    #[test]
    fn example9_exists_down_forall_down() {
        // (10): ∃x ∀y1 ∃x1 ∀y2 y'1 ∃x2 x'1 x''1
        let p = prenex(&example9(), Strategy::ExistsDownForallDown);
        assert_eq!(
            blocks_of(&p),
            vec![
                (Exists, vec![v(0)]),
                (Forall, vec![v(1)]),
                (Exists, vec![v(2)]),
                (Forall, vec![v(3), v(5)]),
                (Exists, vec![v(4), v(6), v(7)]),
            ]
        );
    }

    #[test]
    fn prenex_optimal_on_paper_example() {
        let q = samples::paper_example();
        for s in Strategy::ALL {
            let p = prenex(&q, s);
            assert!(p.is_prenex(), "{s}");
            assert_eq!(p.prefix().prefix_level(), q.prefix().prefix_level(), "{s}");
            assert_eq!(p.matrix(), q.matrix(), "{s}: matrix must be unchanged");
        }
    }

    #[test]
    fn extends_partial_order() {
        // Mixed-quantifier `≺` pairs are exact in the representation and
        // must all be preserved by every strategy (same-quantifier pairs
        // are an over-approximation of the timestamp scheme and may
        // legitimately collapse into one block).
        let q = example9();
        for s in Strategy::ALL {
            let p = prenex(&q, s);
            for a in 0..8 {
                for b in 0..8 {
                    let (qa, qb) = (
                        q.prefix().quant(v(a)).unwrap(),
                        q.prefix().quant(v(b)).unwrap(),
                    );
                    if qa != qb && q.prefix().precedes(v(a), v(b)) {
                        assert!(
                            p.prefix().precedes(v(a), v(b)),
                            "{s}: lost {a} ≺ {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn value_preserved_on_samples() {
        for q in [
            samples::paper_example(),
            samples::two_independent_games(),
        ] {
            let expected = semantics::eval(&q);
            for s in Strategy::ALL {
                assert_eq!(semantics::eval(&prenex(&q, s)), expected, "{s} on {q}");
            }
        }
    }

    #[test]
    fn value_preserved_on_random_qbfs() {
        for round in 0..40u64 {
            let q = qbf_core::samples::random_qbf(0xfeed_beef ^ round, 6, 8);
            let expected = semantics::eval(&q);
            for s in Strategy::ALL {
                let p = prenex(&q, s);
                assert!(p.is_prenex());
                assert_eq!(semantics::eval(&p), expected, "round {round} {s} on {q}");
            }
        }
    }

    #[test]
    fn prenex_input_is_returned_unchanged() {
        let q = samples::forall_exists_xor();
        for s in Strategy::ALL {
            assert_eq!(prenex(&q, s), q);
        }
    }

    #[test]
    fn mixed_root_quantifiers_get_extra_slot() {
        // ∀y ϕ1 ∧ ∃x ϕ2 with an alternation below each root.
        let mut b = PrefixBuilder::new(4);
        let r1 = b.add_root(Forall, [v(0)]).unwrap();
        b.add_child(r1, Exists, [v(1)]).unwrap();
        let r2 = b.add_root(Exists, [v(2)]).unwrap();
        b.add_child(r2, Forall, [v(3)]).unwrap();
        let prefix = b.finish().unwrap();
        let clause = |lits: &[i64]| Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d))).unwrap();
        let matrix = Matrix::from_clauses(4, [clause(&[1, 2]), clause(&[3, 4])]);
        let q = Qbf::new(prefix, matrix).unwrap();
        let expected = semantics::eval(&q);
        for s in Strategy::ALL {
            let p = prenex(&q, s);
            assert!(p.is_prenex(), "{s}");
            assert_eq!(semantics::eval(&p), expected, "{s}");
        }
    }

}
