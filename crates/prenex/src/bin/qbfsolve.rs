//! `qbfsolve` — command-line front end to the search solvers.
//!
//! ```text
//! qbfsolve [options] [FILE]
//!
//!   FILE               QDIMACS (`p cnf`) or non-prenex qtree (`p qtree`)
//!                      document; stdin when omitted or `-`.
//!   --engine E         decision procedure: `search` (the QDPLL; default)
//!                      or `expand` (the expansion/CEGAR engine of
//!                      `qbf-expand`). Unknown values exit 2 with usage.
//!                      Under `expand`, `--po`/`--to` select the tree vs
//!                      ordered dependency scheme and `--budget N` bounds
//!                      SAT decisions+propagations instead of assignments.
//!   --to               QUBE(TO) configuration (prefix-level heuristic)
//!   --po               QUBE(PO) configuration (tree heuristic; default)
//!   --basic            plain backtracking, no learning
//!   --recursive        the recursive Q-DLL of Fig. 1 instead of the QDPLL
//!   --preprocess       run the value-preserving preprocessor first
//!   --no-pure          disable monotone literal fixing
//!   --no-learning      disable good/nogood learning
//!   --budget N         abort after N assignments
//!   --stats            print search statistics to stderr
//!   --proof[=FILE]     log a `qrp` Q-resolution/Q-consensus certificate
//!                      (stderr with a `c ` prefix, or FILE when given);
//!                      forces learning on and pure literals off, and is
//!                      checkable with `qbfcheck INSTANCE FILE`
//!   --trace[=FILE]     Fig. 2-style indented search-tree trace
//!                      (stderr, or FILE when given)
//!   --trace-json[=FILE] JSONL event trace, one JSON object per event
//!                      (stderr, or FILE when given)
//!   --profile          per-level/size/chain-length search profile on stderr
//!   --progress N       one-line status on stderr every N conflicts+solutions
//!   --metrics          engine phase timings (propagate / conflict analysis /
//!                      solution analysis / reduce_db / compaction) and
//!                      resource gauges on stderr, plus a one-line JSON
//!                      snapshot (`c metrics: {...}`)
//!   --portfolio N      solve with an N-thread in-instance portfolio (PO,
//!                      the four TO prenexings and seeded variants; see
//!                      `qbf_core::portfolio`); first finisher wins
//!   --share-len K      share learned clauses/cubes up to K literals
//!                      between portfolio workers (default 4, 0 disables)
//!   --deterministic    lockstep portfolio: fixed 8-variant roster,
//!                      epoch-batched exchange, byte-reproducible
//!                      verdict/winner/per-worker stats for any N
//!   --epoch N          deterministic exchange epoch in assignments
//!                      (default 2048)
//!   --portfolio-expand add the two expansion engines (`expand-po`,
//!                      `expand-to`) to the portfolio roster: search and
//!                      expansion race in-process with first-finisher
//!                      cancellation, sharing stays search-only
//!   --portfolio-out F  write the byte-stable portfolio transcript to F
//! ```
//!
//! Prints `s cnf 1` / `s cnf 0` (true/false) like QBF evaluation solvers and
//! exits with 10 (true), 20 (false) or 1 (budget exhausted / error).

use std::io::Read;
use std::process::ExitCode;

use qbf_core::metrics::{EngineGauge, EngineMetrics, Phase, WallClock};
use qbf_core::observe::{JsonlTrace, MultiObserver, NoopObserver, Profiler, Progress, TreeTrace};
use qbf_core::portfolio::{self, PortfolioOptions};
use qbf_core::proof::{NoProof, ProofLog};
use qbf_core::recursive::{self, RecursiveConfig};
use qbf_core::solver::{Solver, SolverConfig};
use qbf_core::{io, Qbf};
use qbf_expand::{DepScheme, ExpandConfig, ExpandSolver};
use qbf_prenex::portfolio::{expand_workers, roster};

/// `None` = disabled, `Some(None)` = stderr, `Some(Some(path))` = file.
type Sink = Option<Option<String>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Search,
    Expand,
}

struct Options {
    file: Option<String>,
    engine: Engine,
    /// Whether `--to` was the last order flag (drives the expansion
    /// engine's dependency scheme).
    to_selected: bool,
    config: SolverConfig,
    use_recursive: bool,
    preprocess: bool,
    stats: bool,
    proof: Sink,
    trace: Sink,
    trace_json: Sink,
    profile: bool,
    progress: u64,
    metrics: bool,
    portfolio: usize,
    share_len: usize,
    deterministic: bool,
    epoch: u64,
    portfolio_out: Option<String>,
    portfolio_expand: bool,
}

fn print_usage() {
    eprintln!(
        "usage: qbfsolve [--engine search|expand] [--to|--po|--basic|--recursive] \
         [--preprocess] \
         [--no-pure] [--no-learning] [--budget N] [--stats] [--proof[=FILE]] \
         [--trace[=FILE]] [--trace-json[=FILE]] [--profile] [--progress N] \
         [--metrics] [--portfolio N] [--share-len K] [--deterministic] \
         [--epoch N] [--portfolio-expand] [--portfolio-out FILE] [FILE]"
    );
}

fn usage() -> ! {
    print_usage();
    std::process::exit(1);
}

/// Strict `--engine` parsing: any unknown or missing value is a usage
/// error with exit code 2.
fn parse_engine(value: Option<String>) -> Engine {
    match value.as_deref() {
        Some("search") => Engine::Search,
        Some("expand") => Engine::Expand,
        Some(other) => {
            eprintln!("error: unknown engine '{other}' (expected 'search' or 'expand')");
            print_usage();
            std::process::exit(2);
        }
        None => {
            eprintln!("error: --engine requires a value ('search' or 'expand')");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        engine: Engine::Search,
        to_selected: false,
        config: SolverConfig::partial_order(),
        use_recursive: false,
        preprocess: false,
        stats: false,
        proof: None,
        trace: None,
        trace_json: None,
        profile: false,
        progress: 0,
        metrics: false,
        portfolio: 0,
        share_len: 4,
        deterministic: false,
        epoch: 2048,
        portfolio_out: None,
        portfolio_expand: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--engine" => opts.engine = parse_engine(args.next()),
            "--to" => {
                opts.config = SolverConfig::total_order();
                opts.to_selected = true;
            }
            "--po" => {
                opts.config = SolverConfig::partial_order();
                opts.to_selected = false;
            }
            "--basic" => {
                opts.config = SolverConfig::basic();
                opts.to_selected = false;
            }
            "--recursive" => opts.use_recursive = true,
            "--no-pure" => opts.config.pure_literals = false,
            "--no-learning" => opts.config.learning = false,
            "--budget" => {
                let n = args.next().and_then(|v| v.parse().ok());
                match n {
                    Some(n) => opts.config.node_limit = Some(n),
                    None => usage(),
                }
            }
            "--preprocess" => opts.preprocess = true,
            "--stats" => opts.stats = true,
            "--proof" => opts.proof = Some(None),
            "--trace" => opts.trace = Some(None),
            "--trace-json" => opts.trace_json = Some(None),
            "--profile" => opts.profile = true,
            "--metrics" => opts.metrics = true,
            "--progress" => {
                let n = args.next().and_then(|v| v.parse().ok());
                match n {
                    Some(n) => opts.progress = n,
                    None => usage(),
                }
            }
            "--portfolio" => {
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => opts.portfolio = n,
                    _ => usage(),
                }
            }
            "--share-len" => {
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(k) => opts.share_len = k,
                    None => usage(),
                }
            }
            "--deterministic" => opts.deterministic = true,
            "--portfolio-expand" => opts.portfolio_expand = true,
            "--epoch" => {
                match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => opts.epoch = n,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            "-" => opts.file = None,
            _ if a.starts_with("--engine=") => {
                opts.engine = parse_engine(Some(a["--engine=".len()..].to_string()));
            }
            _ if a.starts_with("--proof=") => {
                opts.proof = Some(Some(a["--proof=".len()..].to_string()));
            }
            _ if a.starts_with("--trace=") => {
                opts.trace = Some(Some(a["--trace=".len()..].to_string()));
            }
            _ if a.starts_with("--trace-json=") => {
                opts.trace_json = Some(Some(a["--trace-json=".len()..].to_string()));
            }
            _ if a.starts_with("--portfolio-out=") => {
                opts.portfolio_out = Some(a["--portfolio-out=".len()..].to_string());
            }
            "--portfolio-out" => match args.next() {
                Some(path) => opts.portfolio_out = Some(path),
                None => usage(),
            },
            f if !f.starts_with('-') => opts.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    opts
}

/// Writes trace output to the sink's file, or to stderr line by line with a
/// `c ` comment prefix.
fn emit(sink: &Sink, what: &str, text: &str) {
    let Some(target) = sink else { return };
    match target {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write {what} to {path}: {e}");
            }
        }
        None => {
            for line in text.lines() {
                eprintln!("c {line}");
            }
        }
    }
}

fn read_input(file: &Option<String>) -> std::io::Result<String> {
    match file {
        Some(path) => std::fs::read_to_string(path),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            Ok(buf)
        }
    }
}

fn parse_qbf(text: &str) -> Result<Qbf, String> {
    let keyword = text
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("p "))
        .unwrap_or("");
    if keyword.starts_with("p qtree") {
        io::qtree::parse(text).map_err(|e| e.to_string())
    } else {
        io::qdimacs::parse(text).map_err(|e| e.to_string())
    }
}

/// Runs the selected solver, reporting events to `multi` (an empty
/// fan-out takes the `NoopObserver` fast path), logging a certificate
/// into `proof` when requested, and printing `--stats`.
fn run(
    qbf: &Qbf,
    opts: &Options,
    multi: MultiObserver<'_>,
    proof: Option<&mut ProofLog>,
    metrics: Option<&mut EngineMetrics<WallClock>>,
) -> Option<bool> {
    let observed = !multi.is_empty();
    if opts.use_recursive {
        let cfg = RecursiveConfig {
            node_limit: opts.config.node_limit,
            pure_literals: opts.config.pure_literals,
            ..RecursiveConfig::default()
        };
        let out = if observed {
            recursive::solve_with_observer(qbf, &cfg, multi)
        } else {
            recursive::solve(qbf, &cfg)
        };
        if opts.stats {
            eprintln!("c stats: {:?}", out.stats);
        }
        out.value
    } else {
        let config = opts.config.clone();
        let out = match (observed, proof, metrics) {
            (true, Some(log), Some(m)) => {
                Solver::with_instruments(qbf, config, multi, log, m).solve()
            }
            (false, Some(log), Some(m)) => {
                Solver::with_instruments(qbf, config, NoopObserver, log, m).solve()
            }
            (true, None, Some(m)) => {
                Solver::with_instruments(qbf, config, multi, NoProof, m).solve()
            }
            (false, None, Some(m)) => Solver::with_metrics(qbf, config, m).solve(),
            (true, Some(log), None) => Solver::with_parts(qbf, config, multi, log).solve(),
            (false, Some(log), None) => Solver::with_proof(qbf, config, log).solve(),
            (true, None, None) => Solver::with_observer(qbf, config, multi).solve(),
            (false, None, None) => Solver::new(qbf, config).solve(),
        };
        if opts.stats {
            for line in out.stats.to_string().lines() {
                eprintln!("c {line}");
            }
        }
        out.value()
    }
}

/// Exit-code / `s cnf` mapping shared by the single-threaded and the
/// portfolio paths.
fn report_verdict(value: Option<bool>) -> ExitCode {
    match value {
        Some(true) => {
            println!("s cnf 1");
            ExitCode::from(10)
        }
        Some(false) => {
            println!("s cnf 0");
            ExitCode::from(20)
        }
        None => {
            println!("s cnf -1");
            eprintln!("c budget exhausted");
            ExitCode::from(1)
        }
    }
}

/// Renders the `--metrics` phase histograms, gauges and one-line JSON
/// snapshot to stderr; shared by the search and expansion paths.
fn render_metrics(engine_metrics: &EngineMetrics<WallClock>) {
    for p in Phase::ALL {
        let h = engine_metrics.phase_hist(p);
        eprintln!(
            "c phase {:<18} calls {:>8}  total {:>12} ns  p50 {:>10}  p90 {:>10}  p99 {:>10}",
            p.name(),
            h.count(),
            h.sum(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99)
        );
    }
    for g in EngineGauge::ALL {
        eprintln!(
            "c gauge {:<18} last {:>12}  peak {:>12}",
            g.name(),
            engine_metrics.gauge_last(g),
            engine_metrics.gauge_peak(g)
        );
    }
    eprintln!("c metrics: {}", engine_metrics.snapshot_json());
}

/// The `--engine expand` path: dual abstraction refinement from
/// `qbf-expand` instead of search. `--po`/`--to` select the dependency
/// scheme and `--budget` bounds SAT decisions+propagations.
fn run_expand(qbf: &Qbf, opts: &Options) -> ExitCode {
    if opts.use_recursive {
        eprintln!("error: --engine expand is incompatible with --recursive");
        return ExitCode::from(1);
    }
    if opts.proof.is_some() {
        eprintln!("error: --engine expand does not produce qrp certificates (drop --proof)");
        return ExitCode::from(1);
    }
    if opts.trace.is_some() || opts.trace_json.is_some() || opts.profile || opts.progress > 0 {
        eprintln!(
            "error: --engine expand does not support search observers \
             (--trace/--trace-json/--profile/--progress)"
        );
        return ExitCode::from(1);
    }
    let mut config =
        if opts.to_selected { ExpandConfig::ordered() } else { ExpandConfig::tree() };
    config.step_limit = opts.config.node_limit;
    let scheme = match config.dep_scheme {
        DepScheme::Tree => "tree (po)",
        DepScheme::Ordered => "ordered (to)",
    };
    eprintln!("c engine expand, dependency scheme {scheme}");
    let out = if opts.metrics {
        let mut engine_metrics = EngineMetrics::new(WallClock::new());
        let out = ExpandSolver::with_metrics(qbf, config, &mut engine_metrics).solve();
        render_metrics(&engine_metrics);
        out
    } else {
        qbf_expand::solve(qbf, config)
    };
    if opts.stats {
        for line in out.stats.to_string().lines() {
            eprintln!("c {line}");
        }
    }
    report_verdict(out.value)
}

/// The `--portfolio N` path: builds the roster over the parsed instance
/// and runs the in-instance portfolio (see `qbf_core::portfolio`).
fn run_portfolio(qbf: &Qbf, opts: &Options) -> ExitCode {
    if opts.use_recursive {
        eprintln!("error: --portfolio requires the QDPLL solver (drop --recursive)");
        return ExitCode::from(1);
    }
    if opts.trace.is_some() || opts.trace_json.is_some() || opts.profile || opts.progress > 0 {
        eprintln!("error: --portfolio does not support per-search observers (--trace/--trace-json/--profile/--progress)");
        return ExitCode::from(1);
    }
    let variants = roster(qbf, opts.portfolio, opts.deterministic, &opts.config);
    let popts = PortfolioOptions {
        threads: opts.portfolio,
        share_len: opts.share_len,
        deterministic: opts.deterministic,
        epoch: opts.epoch,
        ..PortfolioOptions::default()
    };
    let out = if opts.portfolio_expand {
        if opts.proof.is_some() || opts.metrics {
            eprintln!(
                "error: --portfolio-expand does not support --proof or --metrics \
                 (expansion workers have no certificate or phase clock hookup)"
            );
            return ExitCode::from(1);
        }
        portfolio::solve_mixed(&variants, expand_workers(qbf, opts.config.node_limit), &popts)
    } else if opts.proof.is_some() {
        if opts.share_len > 0 {
            eprintln!("c portfolio: constraint sharing disabled under --proof");
        }
        portfolio::solve_with_proof(&variants, &popts)
    } else if opts.metrics {
        portfolio::solve_with_metrics(&variants, &popts)
    } else {
        portfolio::solve(&variants, &popts)
    };

    match out.winner {
        Some(w) => eprintln!("c portfolio: winner {} ({})", w, out.workers[w].label),
        None => eprintln!("c portfolio: no worker finished"),
    }
    if opts.stats {
        for line in out.transcript().lines() {
            eprintln!("c {line}");
        }
    }
    if opts.metrics {
        for (i, w) in out.workers.iter().enumerate() {
            if let Some(json) = &w.metrics_json {
                eprintln!("c worker {i} {} metrics: {json}", w.label);
            }
        }
    }
    if let Some(path) = &opts.portfolio_out {
        if let Err(e) = std::fs::write(path, out.transcript()) {
            eprintln!("error: cannot write portfolio transcript to {path}: {e}");
            return ExitCode::from(1);
        }
    }
    if opts.proof.is_some() {
        match &out.certificate {
            Some(cert) => emit(&opts.proof, "proof", cert),
            None => eprintln!("c proof: search was cut off before a conclusion; no certificate"),
        }
    }
    report_verdict(out.value)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match read_input(&opts.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read input: {e}");
            return ExitCode::from(1);
        }
    };
    let mut qbf = match parse_qbf(&text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: parse failed: {e}");
            return ExitCode::from(1);
        }
    };
    if opts.preprocess {
        let (simplified, report) = qbf_core::preprocess::preprocess(&qbf);
        eprintln!(
            "c preprocess: {} units, {} pures, {} reduced literals, {} subsumed{}",
            report.units,
            report.pures,
            report.reduced_literals,
            report.subsumed,
            match report.decided {
                Some(v) => format!(", decided: {v}"),
                None => String::new(),
            }
        );
        qbf = simplified;
    }
    for line in qbf_core::stats::InstanceStats::of(&qbf).to_string().lines() {
        eprintln!("c {line}");
    }

    if opts.engine == Engine::Expand {
        if opts.portfolio > 0 || opts.portfolio_expand {
            eprintln!(
                "error: --engine expand cannot drive the portfolio directly; use \
                 --portfolio N --portfolio-expand to race search and expansion"
            );
            return ExitCode::from(1);
        }
        return run_expand(&qbf, &opts);
    }
    if opts.portfolio_expand && opts.portfolio == 0 {
        eprintln!("error: --portfolio-expand requires --portfolio N");
        return ExitCode::from(1);
    }

    if opts.portfolio > 0 {
        return run_portfolio(&qbf, &opts);
    }

    // Observability: build the fan-out requested on the command line. An
    // empty fan-out takes the `NoopObserver` fast path instead.
    let mut tree = TreeTrace::new();
    let mut jsonl = JsonlTrace::new();
    let mut profiler = Profiler::new(&qbf);
    let mut progress = Progress::new(opts.progress);
    let mut multi = MultiObserver::new();
    if opts.trace.is_some() {
        multi.push(&mut tree);
    }
    if opts.trace_json.is_some() {
        multi.push(&mut jsonl);
    }
    if opts.profile {
        multi.push(&mut profiler);
    }
    if opts.progress > 0 {
        multi.push(&mut progress);
    }
    let mut log = ProofLog::new();
    if opts.proof.is_some() {
        if opts.use_recursive {
            eprintln!("error: --proof requires the QDPLL solver (drop --recursive)");
            return ExitCode::from(1);
        }
        if opts.config.pure_literals || !opts.config.learning {
            eprintln!("c proof: forcing learning on and pure literals off");
        }
    }

    if opts.metrics && opts.use_recursive {
        eprintln!("error: --metrics requires the QDPLL solver (drop --recursive)");
        return ExitCode::from(1);
    }
    let mut engine_metrics = EngineMetrics::new(WallClock::new());

    // `run` consumes the fan-out, so the borrows of the individual
    // observers end at this call and the traces can be emitted below.
    let value = run(
        &qbf,
        &opts,
        multi,
        opts.proof.is_some().then_some(&mut log),
        opts.metrics.then_some(&mut engine_metrics),
    );

    if opts.proof.is_some() {
        if log.is_concluded() {
            emit(&opts.proof, "proof", log.as_text());
        } else {
            eprintln!("c proof: search was cut off before a conclusion; no certificate");
        }
    }
    emit(&opts.trace, "trace", tree.as_str());
    emit(&opts.trace_json, "JSON trace", &jsonl.finish());
    if opts.profile {
        for line in profiler.report().lines() {
            eprintln!("c {line}");
        }
    }
    if opts.metrics {
        render_metrics(&engine_metrics);
    }

    report_verdict(value)
}
