//! # qbf-prenex
//!
//! Conversions between prenex and non-prenex QBFs, reproducing §V and
//! §VII-D of *“Quantifier structure in search based procedures for QBFs”*:
//!
//! * [`prenex`] — the four prenex-optimal strategies ∃↑∀↑, ∃↑∀↓, ∃↓∀↑,
//!   ∃↓∀↓ of Egly et al. (reference 12 in the paper), used to feed QUBE(TO);
//! * [`miniscope`] — scope minimisation (anti-prenexing) with the two
//!   rules of §VII-D plus single-clause-scope elimination, used to recover
//!   quantifier structure from prenex QBFEVAL-style instances;
//! * [`po_to_ratio`] — the footnote-9 "PO/TO" structure metric that gates
//!   inclusion in the Fig. 7 test set.
//!
//! # Examples
//!
//! ```
//! use qbf_core::{samples, semantics};
//! use qbf_prenex::{miniscope, po_to_ratio, prenex, Strategy};
//!
//! let original = samples::paper_example();
//! let flat = prenex(&original, Strategy::ExistsUpForallUp);
//! assert!(flat.is_prenex());
//! assert_eq!(semantics::eval(&flat), semantics::eval(&original));
//!
//! let recovered = miniscope(&flat)?.qbf;
//! assert!(po_to_ratio(&recovered, &flat) > 0.0);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod miniscope;
pub mod portfolio;
mod strategy;

pub use miniscope::{miniscope, po_to_ratio, Miniscoped};
pub use strategy::{prenex, Strategy};
