//! Polarity-aware definitional CNF conversion (Plaisted–Greenbaum style,
//! in the spirit of the clause-form conversions of Jackson & Sheridan that
//! the paper's diameter encoding uses).
//!
//! Clausification introduces fresh *auxiliary* variables. The caller owns
//! the variable universe through a [`VarAlloc`]: substrates that place the
//! clauses under quantifiers (e.g. the diameter QBFs of §VII-C) can route
//! the reported auxiliary variables into the correct (innermost
//! existential) block of the prefix.

use std::collections::HashMap;

use qbf_core::{Clause, Lit, Var};

use crate::ast::{Formula, Node};

/// A monotone allocator of fresh variables.
#[derive(Debug, Clone)]
pub struct VarAlloc {
    next: usize,
}

impl VarAlloc {
    /// An allocator whose next fresh variable is `first_free`.
    pub fn new(first_free: usize) -> Self {
        VarAlloc { next: first_free }
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var::new(self.next);
        self.next += 1;
        v
    }

    /// The size of the universe allocated so far.
    pub fn num_vars(&self) -> usize {
        self.next
    }
}

/// The product of clausification: clauses asserting the input formula, plus
/// the auxiliary variables that were introduced (all implicitly
/// existential, to be bound innermost by the caller).
#[derive(Debug, Clone)]
pub struct Clausified {
    /// Clauses over input + auxiliary variables.
    pub clauses: Vec<Clause>,
    /// Fresh variables introduced by the conversion.
    pub aux: Vec<Var>,
}

struct Ctx<'a> {
    alloc: &'a mut VarAlloc,
    clauses: Vec<Clause>,
    aux: Vec<Var>,
    /// node id → (aux literal, positive side emitted, negative side emitted)
    cache: HashMap<usize, (Lit, bool, bool)>,
}

impl Ctx<'_> {
    fn clause(&mut self, lits: Vec<Lit>) {
        // A tautological defining clause is simply true: drop it.
        if let Ok(c) = Clause::new(lits) {
            self.clauses.push(c);
        }
    }

    /// Returns a literal equivalent (in the given polarity) to `f`,
    /// emitting defining clauses as needed.
    fn lit_for(&mut self, f: &Formula, polarity: bool) -> Lit {
        match f.node() {
            Node::Const(_) => unreachable!(
                "smart constructors fold constants away below the root"
            ),
            Node::Var(v) => v.positive(),
            Node::Not(g) => !self.lit_for(g, !polarity),
            Node::And(parts) => {
                let a = self.define(f);
                if polarity && !self.mark(f, true) {
                    // a → ∧ parts
                    let part_lits: Vec<Lit> =
                        parts.iter().map(|p| self.lit_for(p, true)).collect();
                    for pl in part_lits {
                        self.clause(vec![!a, pl]);
                    }
                }
                if !polarity && !self.mark(f, false) {
                    // ∧ parts → a
                    let mut lits: Vec<Lit> =
                        parts.iter().map(|p| !self.lit_for(p, false)).collect();
                    lits.push(a);
                    self.clause(lits);
                }
                a
            }
            Node::Or(parts) => {
                let a = self.define(f);
                if polarity && !self.mark(f, true) {
                    // a → ∨ parts
                    let mut lits: Vec<Lit> =
                        parts.iter().map(|p| self.lit_for(p, true)).collect();
                    lits.push(!a);
                    self.clause(lits);
                }
                if !polarity && !self.mark(f, false) {
                    // ∨ parts → a
                    let part_lits: Vec<Lit> =
                        parts.iter().map(|p| self.lit_for(p, false)).collect();
                    for pl in part_lits {
                        self.clause(vec![a, !pl]);
                    }
                }
                a
            }
            Node::Iff(x, y) => {
                let a = self.define(f);
                // Iff children occur in both polarities on either side.
                let xp = self.lit_for(x, polarity);
                let xn = self.lit_for(x, !polarity);
                let yp = self.lit_for(y, polarity);
                let yn = self.lit_for(y, !polarity);
                if polarity && !self.mark(f, true) {
                    self.clause(vec![!a, !xn, yp]);
                    self.clause(vec![!a, xp, !yn]);
                }
                if !polarity && !self.mark(f, false) {
                    self.clause(vec![a, xp, yp]);
                    self.clause(vec![a, !xn, !yn]);
                }
                a
            }
        }
    }

    /// The auxiliary literal naming node `f` (allocated once).
    fn define(&mut self, f: &Formula) -> Lit {
        if let Some(&(l, _, _)) = self.cache.get(&f.id()) {
            return l;
        }
        let v = self.alloc.fresh();
        self.aux.push(v);
        let l = v.positive();
        self.cache.insert(f.id(), (l, false, false));
        l
    }

    /// Marks the polarity side as emitted, returning the previous state.
    fn mark(&mut self, f: &Formula, polarity: bool) -> bool {
        let entry = self.cache.get_mut(&f.id()).expect("defined before marked");
        if polarity {
            let was = entry.1;
            entry.1 = true;
            was
        } else {
            let was = entry.2;
            entry.2 = true;
            was
        }
    }

    /// Asserts `f`, avoiding an auxiliary for the top-level conjunctive
    /// spine and for top-level clauses.
    fn assert_top(&mut self, f: &Formula) {
        match f.node() {
            Node::Const(true) => {}
            Node::Const(false) => self.clauses.push(Clause::empty()),
            Node::And(parts) => {
                let parts = parts.clone();
                for p in &parts {
                    self.assert_top(p);
                }
            }
            Node::Or(parts) => {
                let parts = parts.clone();
                let lits: Vec<Lit> = parts.iter().map(|p| self.lit_for(p, true)).collect();
                self.clause(lits);
            }
            _ => {
                let l = self.lit_for(f, true);
                self.clause(vec![l]);
            }
        }
    }
}

/// Clausifies `f`: the returned clauses are satisfiable by an extension of
/// an input assignment to the auxiliary variables **iff** `f` evaluates to
/// true under that input assignment (polarity-aware definitional CNF).
///
/// # Examples
///
/// ```
/// use qbf_core::Var;
/// use qbf_formula::{clausify, Formula, VarAlloc};
/// let x = Formula::var(Var::new(0));
/// let y = Formula::var(Var::new(1));
/// let mut alloc = VarAlloc::new(2);
/// let out = clausify(&x.or(y).not(), &mut alloc);
/// // ¬(x ∨ y) clausifies without auxiliaries: two unit clauses.
/// assert_eq!(out.clauses.len(), 2);
/// assert!(out.aux.is_empty());
/// ```
pub fn clausify(f: &Formula, alloc: &mut VarAlloc) -> Clausified {
    let mut ctx = Ctx {
        alloc,
        clauses: Vec::new(),
        aux: Vec::new(),
        cache: HashMap::new(),
    };
    // Push negations inward over the top-level spine first: ¬(a ∨ b) is two
    // asserted negations, not an auxiliary definition.
    let f = push_top_negation(f);
    ctx.assert_top(&f);
    Clausified {
        clauses: ctx.clauses,
        aux: ctx.aux,
    }
}

/// Rewrites `¬(∧…)`/`¬(∨…)`/`¬(a↔b)` at the top into the dual connective so
/// that [`Ctx::assert_top`] can keep decomposing without auxiliaries.
fn push_top_negation(f: &Formula) -> Formula {
    if let Node::Not(g) = f.node() {
        match g.node() {
            Node::And(parts) => {
                return Formula::or_all(parts.iter().map(|p| push_top_negation(&p.clone().not())));
            }
            Node::Or(parts) => {
                return Formula::and_all(parts.iter().map(|p| push_top_negation(&p.clone().not())));
            }
            Node::Iff(a, b) => {
                return a.clone().iff(b.clone().not());
            }
            _ => {}
        }
    } else if let Node::And(parts) = f.node() {
        return Formula::and_all(parts.iter().map(push_top_negation));
    }
    f.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbf_core::{Matrix, Prefix, Qbf, Quantifier};

    fn v(i: usize) -> Formula {
        Formula::var(Var::new(i))
    }

    /// SAT check via the qbf-core solver: do the clauses extend `inputs`?
    fn sat_with_inputs(out: &Clausified, num_vars: usize, inputs: &[bool]) -> bool {
        let mut clauses = out.clauses.clone();
        for (i, &b) in inputs.iter().enumerate() {
            clauses.push(
                Clause::new([Var::new(i).lit(b)]).expect("unit clause"),
            );
        }
        let all: Vec<Var> = (0..num_vars).map(Var::new).collect();
        let prefix = Prefix::prenex(num_vars, [(Quantifier::Exists, all)]).unwrap();
        let qbf = Qbf::new(prefix, Matrix::from_clauses(num_vars, clauses)).unwrap();
        qbf_core::solver::Solver::new(&qbf, qbf_core::solver::SolverConfig::partial_order())
            .solve()
            .value()
            .expect("no budget set")
    }

    fn check_equisat(f: &Formula, num_inputs: usize) {
        let mut alloc = VarAlloc::new(num_inputs);
        let out = clausify(f, &mut alloc);
        for bits in 0..(1u32 << num_inputs) {
            let inputs: Vec<bool> = (0..num_inputs).map(|i| bits >> i & 1 == 1).collect();
            let expected = f.eval(&inputs);
            let got = sat_with_inputs(&out, alloc.num_vars(), &inputs);
            assert_eq!(got, expected, "inputs {inputs:?} for {f}");
        }
    }

    #[test]
    fn literal_and_constants() {
        let mut alloc = VarAlloc::new(1);
        let out = clausify(&v(0), &mut alloc);
        assert_eq!(out.clauses.len(), 1);
        assert!(out.aux.is_empty());
        let out = clausify(&Formula::constant(true), &mut alloc);
        assert!(out.clauses.is_empty());
        let out = clausify(&Formula::constant(false), &mut alloc);
        assert!(out.clauses[0].is_empty());
    }

    #[test]
    fn simple_connectives_equisat() {
        check_equisat(&v(0).and(v(1)), 2);
        check_equisat(&v(0).or(v(1)), 2);
        check_equisat(&v(0).iff(v(1)), 2);
        check_equisat(&v(0).xor(v(1)), 2);
        check_equisat(&v(0).implies(v(1)), 2);
        check_equisat(&v(0).and(v(1)).not(), 2);
    }

    #[test]
    fn nested_formulas_equisat() {
        let f = v(0).and(v(1).or(v(2).not())).iff(v(3).xor(v(0)));
        check_equisat(&f, 4);
        let g = Formula::or_all([
            v(0).and(v(1)),
            v(2).and(v(3).not()),
            v(1).iff(v(2)),
        ])
        .not();
        check_equisat(&g, 4);
    }

    #[test]
    fn shared_subformulas_define_one_aux() {
        let shared = v(0).and(v(1));
        let f = Formula::or_all([shared.clone(), shared.clone().iff(v(2))]);
        let mut alloc = VarAlloc::new(3);
        let out = clausify(&f, &mut alloc);
        // `shared` is defined once despite two occurrences.
        let shared_defs = out.aux.len();
        assert!(shared_defs <= 3, "expected few auxiliaries, got {shared_defs}");
        check_equisat(&f, 3);
    }

    #[test]
    fn top_level_conjunction_has_no_aux_spine() {
        let f = Formula::and_all([v(0), v(1).not(), v(2).or(v(3))]);
        let mut alloc = VarAlloc::new(4);
        let out = clausify(&f, &mut alloc);
        assert!(out.aux.is_empty(), "pure clausal input needs no auxiliaries");
        assert_eq!(out.clauses.len(), 3);
    }

    #[test]
    fn negated_conjunction_becomes_clause() {
        // ¬(x ∧ y) should become the single clause (¬x ∨ ¬y).
        let f = v(0).and(v(1)).not();
        let mut alloc = VarAlloc::new(2);
        let out = clausify(&f, &mut alloc);
        assert!(out.aux.is_empty());
        assert_eq!(out.clauses.len(), 1);
        assert_eq!(out.clauses[0].len(), 2);
    }

    #[test]
    fn random_formulas_equisat() {
        // Deterministic pseudo-random formula fuzz.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545f4914f6cdd1d)
        };
        for _ in 0..40 {
            let f = random_formula(&mut next, 3, 4);
            check_equisat(&f, 4);
        }
    }

    fn random_formula(next: &mut impl FnMut() -> u64, depth: usize, num_vars: usize) -> Formula {
        if depth == 0 || next().is_multiple_of(5) {
            let var = v((next() % num_vars as u64) as usize);
            return if next().is_multiple_of(2) { var } else { var.not() };
        }
        match next() % 4 {
            0 => random_formula(next, depth - 1, num_vars)
                .and(random_formula(next, depth - 1, num_vars)),
            1 => random_formula(next, depth - 1, num_vars)
                .or(random_formula(next, depth - 1, num_vars)),
            2 => random_formula(next, depth - 1, num_vars)
                .iff(random_formula(next, depth - 1, num_vars)),
            _ => random_formula(next, depth - 1, num_vars).not(),
        }
    }
}
