//! # qbf-formula
//!
//! The propositional (non-CNF) formula substrate of the quantifier-structure
//! reproduction: boolean formula DAGs with simplifying constructors and a
//! polarity-aware definitional CNF conversion.
//!
//! The paper's applications (§VII-C diameter calculation in particular)
//! produce arbitrary boolean structure — initial-state predicates `I(s)`,
//! transition relations `T(s, s′)`, vector equalities — that must be
//! clausified before a CNF-matrix QBF solver can run. Clausification
//! introduces auxiliary variables; this crate reports them so callers can
//! bind them in the correct (innermost existential) position of the
//! quantifier prefix, exactly as the variable `x` of the paper's example
//! prefixes (18)/(19).
//!
//! # Examples
//!
//! ```
//! use qbf_core::Var;
//! use qbf_formula::{clausify, Formula, VarAlloc};
//!
//! let x = Formula::var(Var::new(0));
//! let y = Formula::var(Var::new(1));
//! let f = x.clone().iff(y.clone()).not(); // x xor y
//! let mut alloc = VarAlloc::new(2);
//! let cnf = clausify(&f, &mut alloc);
//! assert!(!cnf.clauses.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ast;
mod cnf;

pub use ast::{Formula, Node};
pub use cnf::{clausify, Clausified, VarAlloc};
