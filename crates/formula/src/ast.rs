//! Boolean formula ASTs with hash-consing-free structural sharing.
//!
//! [`Formula`] values are cheap to clone (an `Rc` handle) and the smart
//! constructors perform light simplification: constant folding, flattening
//! of nested conjunctions/disjunctions, double-negation elimination and
//! unit unwrapping. This is the non-CNF substrate the paper's applications
//! produce (circuit initial conditions `I(s)` and transition relations
//! `T(s, s′)` of §VII-C) before clausification.

use std::fmt;
use std::rc::Rc;

use qbf_core::Var;

/// A node of a formula DAG. Obtain nodes through the [`Formula`]
/// constructors, which simplify on the fly.
#[derive(Debug, PartialEq, Eq)]
pub enum Node {
    /// A boolean constant.
    Const(bool),
    /// A propositional variable.
    Var(Var),
    /// Negation.
    Not(Formula),
    /// N-ary conjunction (never empty, never nested `And` directly).
    And(Vec<Formula>),
    /// N-ary disjunction (never empty, never nested `Or` directly).
    Or(Vec<Formula>),
    /// Bi-implication.
    Iff(Formula, Formula),
}

/// A shared boolean formula.
///
/// # Examples
///
/// ```
/// use qbf_formula::Formula;
/// use qbf_core::Var;
/// let x = Formula::var(Var::new(0));
/// let y = Formula::var(Var::new(1));
/// let f = x.clone().and(y.clone().not());
/// assert!(f.eval(&[true, false]));
/// assert!(!f.eval(&[true, true]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formula(Rc<Node>);

impl Formula {
    fn wrap(node: Node) -> Self {
        Formula(Rc::new(node))
    }

    /// The underlying node.
    pub fn node(&self) -> &Node {
        &self.0
    }

    /// A stable pointer identity for memoization during clausification.
    pub(crate) fn id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// The constant `true` or `false`.
    pub fn constant(value: bool) -> Self {
        Formula::wrap(Node::Const(value))
    }

    /// A variable.
    pub fn var(v: Var) -> Self {
        Formula::wrap(Node::Var(v))
    }

    /// A literal: the variable or its negation.
    pub fn lit(v: Var, positive: bool) -> Self {
        let f = Formula::var(v);
        if positive {
            f
        } else {
            f.not()
        }
    }

    /// Whether this formula is the given constant.
    pub fn is_const(&self, value: bool) -> bool {
        matches!(self.node(), Node::Const(b) if *b == value)
    }

    /// Negation, with double-negation and constant elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self.node() {
            Node::Const(b) => Formula::constant(!b),
            Node::Not(inner) => inner.clone(),
            _ => Formula::wrap(Node::Not(self)),
        }
    }

    /// N-ary conjunction with folding and flattening.
    pub fn and_all<I: IntoIterator<Item = Formula>>(parts: I) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p.node() {
                Node::Const(true) => {}
                Node::Const(false) => return Formula::constant(false),
                Node::And(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => Formula::constant(true),
            1 => flat.pop().expect("len checked"),
            _ => Formula::wrap(Node::And(flat)),
        }
    }

    /// N-ary disjunction with folding and flattening.
    pub fn or_all<I: IntoIterator<Item = Formula>>(parts: I) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p.node() {
                Node::Const(false) => {}
                Node::Const(true) => return Formula::constant(true),
                Node::Or(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => Formula::constant(false),
            1 => flat.pop().expect("len checked"),
            _ => Formula::wrap(Node::Or(flat)),
        }
    }

    /// Binary conjunction.
    pub fn and(self, other: Formula) -> Self {
        Formula::and_all([self, other])
    }

    /// Binary disjunction.
    pub fn or(self, other: Formula) -> Self {
        Formula::or_all([self, other])
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Formula) -> Self {
        self.not().or(other)
    }

    /// Bi-implication with constant folding.
    pub fn iff(self, other: Formula) -> Self {
        match (self.node(), other.node()) {
            (Node::Const(true), _) => other,
            (_, Node::Const(true)) => self,
            (Node::Const(false), _) => other.not(),
            (_, Node::Const(false)) => self.not(),
            _ => Formula::wrap(Node::Iff(self, other)),
        }
    }

    /// Exclusive or.
    pub fn xor(self, other: Formula) -> Self {
        self.iff(other).not()
    }

    /// Evaluates under a total assignment indexed by variable.
    ///
    /// # Panics
    ///
    /// Panics if the formula mentions a variable `>= assignment.len()`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self.node() {
            Node::Const(b) => *b,
            Node::Var(v) => assignment[v.index()],
            Node::Not(f) => !f.eval(assignment),
            Node::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            Node::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
            Node::Iff(a, b) => a.eval(assignment) == b.eval(assignment),
        }
    }

    /// Collects the variables occurring in the formula into `seen`.
    pub fn collect_vars(&self, seen: &mut Vec<bool>) {
        match self.node() {
            Node::Const(_) => {}
            Node::Var(v) => {
                if v.index() >= seen.len() {
                    seen.resize(v.index() + 1, false);
                }
                seen[v.index()] = true;
            }
            Node::Not(f) => f.collect_vars(seen),
            Node::And(fs) | Node::Or(fs) => {
                for f in fs {
                    f.collect_vars(seen);
                }
            }
            Node::Iff(a, b) => {
                a.collect_vars(seen);
                b.collect_vars(seen);
            }
        }
    }

    /// The largest variable index occurring, if any.
    pub fn max_var(&self) -> Option<usize> {
        let mut seen = Vec::new();
        self.collect_vars(&mut seen);
        seen.iter().rposition(|&b| b)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            Node::Const(b) => write!(f, "{b}"),
            Node::Var(v) => write!(f, "v{v}"),
            Node::Not(g) => write!(f, "!{g}"),
            Node::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Node::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Node::Iff(a, b) => write!(f, "({a} <-> {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Formula {
        Formula::var(Var::new(i))
    }

    #[test]
    fn constant_folding() {
        assert!(Formula::constant(true).and(v(0)).eval(&[true]));
        assert!(Formula::constant(false).or(v(0)).eval(&[true]));
        assert!(Formula::constant(false)
            .and(v(0))
            .is_const(false));
        assert!(Formula::constant(true).or(v(0)).is_const(true));
        assert!(Formula::and_all([]).is_const(true));
        assert!(Formula::or_all([]).is_const(false));
    }

    #[test]
    fn double_negation() {
        let f = v(0).not().not();
        assert_eq!(f, v(0));
    }

    #[test]
    fn flattening() {
        let f = v(0).and(v(1)).and(v(2));
        match f.node() {
            Node::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn truth_tables() {
        let x = v(0);
        let y = v(1);
        for a in [false, true] {
            for b in [false, true] {
                let env = [a, b];
                assert_eq!(x.clone().and(y.clone()).eval(&env), a && b);
                assert_eq!(x.clone().or(y.clone()).eval(&env), a || b);
                assert_eq!(x.clone().implies(y.clone()).eval(&env), !a || b);
                assert_eq!(x.clone().iff(y.clone()).eval(&env), a == b);
                assert_eq!(x.clone().xor(y.clone()).eval(&env), a != b);
                assert_eq!(x.clone().not().eval(&env), !a);
            }
        }
    }

    #[test]
    fn iff_constant_folding() {
        assert_eq!(v(0).iff(Formula::constant(true)), v(0));
        assert_eq!(v(0).iff(Formula::constant(false)), v(0).not());
    }

    #[test]
    fn var_collection() {
        let f = v(0).and(v(3)).or(v(1).not());
        let mut seen = Vec::new();
        f.collect_vars(&mut seen);
        assert_eq!(seen, vec![true, true, false, true]);
        assert_eq!(f.max_var(), Some(3));
        assert_eq!(Formula::constant(true).max_var(), None);
    }

    #[test]
    fn display_readable() {
        let f = v(0).and(v(1).not());
        assert_eq!(f.to_string(), "(v1 & !v2)");
    }
}
