//! Integration tests for the observability layer (`qbf_core::observe`):
//!
//! * a golden Fig. 2-style tree trace of the recursive Q-DLL on the
//!   paper's running example (1);
//! * byte-determinism of the JSONL event trace across repeated runs;
//! * a full cross-check of the [`Profiler`]'s independently-counted
//!   events against the engine's own [`Stats`] on a differential suite
//!   of random instances, under both QUBE(TO) and QUBE(PO);
//! * the zero-overhead guard: attaching observers must not perturb the
//!   search (bit-identical statistics with and without observers).

use qbf_core::metrics::{EngineMetrics, ManualClock, NoopMetrics};
use qbf_core::observe::{JsonlTrace, MultiObserver, NoopObserver, Profiler, Progress, TreeTrace};
use qbf_core::proof::{NoProof, ProofLog};
use qbf_core::recursive::{self, RecursiveConfig};
use qbf_core::samples;
use qbf_core::solver::{Solver, SolverConfig, Stats};
use qbf_core::Qbf;

/// The search tree of Fig. 2 (recursive Q-DLL, no pure-literal fixing, on
/// the running example (1)), as rendered by [`TreeTrace`]. One line per
/// node; indentation tracks the recursion depth.
const FIG2_GOLDEN: &str = "\
-1 (branch)
  -2 (branch)
    -3 (branch)
      -4 (unit)
      -5 (branch)
        -6 (branch)
          7 (unit)
          CONFLICT
        6 (flip)
          7 (unit)
          CONFLICT
    3 (flip)
      4 (unit)
      -5 (branch)
        -6 (branch)
          7 (unit)
          CONFLICT
        6 (flip)
          7 (unit)
          CONFLICT
1 (flip)
  -2 (branch)
    -3 (branch)
      4 (unit)
      CONFLICT
    3 (flip)
      4 (unit)
      CONFLICT
";

#[test]
fn golden_tree_trace_of_paper_example() {
    let qbf = samples::paper_example();
    let cfg = RecursiveConfig {
        pure_literals: false,
        ..RecursiveConfig::default()
    };
    let mut trace = TreeTrace::new();
    let out = recursive::solve_with_observer(&qbf, &cfg, &mut trace);
    assert_eq!(out.value, Some(false), "the paper refutes (1)");
    assert_eq!(trace.as_str(), FIG2_GOLDEN);
}

#[test]
fn jsonl_trace_is_byte_deterministic() {
    let run_once = |qbf: &Qbf, config: SolverConfig| {
        let mut jsonl = JsonlTrace::new();
        let out = Solver::with_observer(qbf, config, &mut jsonl).solve();
        (out.value(), jsonl.finish())
    };
    for qbf in [
        samples::paper_example(),
        samples::two_independent_games(),
        samples::random_qbf(11, 12, 30),
    ] {
        for config in [SolverConfig::partial_order(), SolverConfig::total_order()] {
            let (v1, t1) = run_once(&qbf, config.clone());
            let (v2, t2) = run_once(&qbf, config);
            assert_eq!(v1, v2);
            assert_eq!(t1, t2, "JSONL trace must be byte-identical");
            assert!(!t1.is_empty());
            // every line is a JSON object with an event tag
            for line in t1.lines() {
                assert!(line.starts_with("{\"e\":\""), "bad line: {line}");
                assert!(line.ends_with('}'), "bad line: {line}");
            }
        }
    }
}

/// Runs one instance with a [`Profiler`] attached and asserts that every
/// counter the profiler accumulates from events equals the corresponding
/// engine statistic.
fn cross_check(qbf: &Qbf, config: SolverConfig) {
    let mut profiler = Profiler::new(qbf);
    let out = Solver::with_observer(qbf, config, &mut profiler).solve();
    let s = &out.stats;
    assert_eq!(profiler.decisions(), s.decisions, "decisions");
    assert_eq!(profiler.propagations(), s.propagations, "propagations");
    assert_eq!(profiler.pures(), s.pures, "pures");
    assert_eq!(profiler.conflicts(), s.conflicts, "conflicts");
    assert_eq!(profiler.solutions(), s.solutions, "solutions");
    assert_eq!(
        profiler.learned_clauses(),
        s.learned_clauses,
        "learned clauses"
    );
    assert_eq!(profiler.learned_cubes(), s.learned_cubes, "learned cubes");
    assert_eq!(profiler.backjumps(), s.backjumps, "backjumps");
    assert_eq!(
        profiler.chrono_backtracks(),
        s.chrono_backtracks,
        "chrono backtracks"
    );
    assert_eq!(profiler.forgotten(), s.forgotten, "forgotten");
    assert_eq!(profiler.watcher_visits(), s.watcher_visits, "watcher visits");
    assert_eq!(profiler.blocker_hits(), s.blocker_hits, "blocker hits");
    assert_eq!(profiler.compactions(), s.compactions, "compactions");
    assert_eq!(
        profiler.bytes_reclaimed(),
        s.arena_bytes_reclaimed,
        "bytes reclaimed"
    );
    assert!(
        s.blocker_hits <= s.watcher_visits,
        "blocker hits are a subset of watcher visits"
    );
    let report = profiler.report();
    assert!(report.contains("decisions"), "report renders");
    assert!(report.contains("blocker hits"), "report renders blockers");
}

#[test]
fn profiler_matches_stats_on_differential_suite() {
    // The same seed schedule the solver's differential tests use: small
    // random QBFs with mixed prefixes, solved under both configurations.
    for seed in 0..12u64 {
        let qbf = samples::random_qbf(seed, 8 + (seed as usize % 5), 20 + 2 * seed as usize);
        cross_check(&qbf, SolverConfig::partial_order());
        cross_check(&qbf, SolverConfig::total_order());
        cross_check(&qbf, SolverConfig::basic());
    }
    cross_check(&samples::paper_example(), SolverConfig::partial_order());
    cross_check(&samples::two_independent_games(), SolverConfig::partial_order());
}

#[test]
fn observers_do_not_perturb_the_search() {
    for seed in 0..8u64 {
        let qbf = samples::random_qbf(seed, 10, 26);
        for config in [SolverConfig::partial_order(), SolverConfig::total_order()] {
            // Baseline: NoopObserver (the default type parameter).
            let plain = Solver::new(&qbf, config.clone()).solve();
            // Full fan-out: every built-in observer at once.
            let mut tree = TreeTrace::new();
            let mut jsonl = JsonlTrace::new();
            let mut profiler = Profiler::new(&qbf);
            let mut progress = Progress::new(u64::MAX);
            let mut multi = MultiObserver::new();
            multi.push(&mut tree);
            multi.push(&mut jsonl);
            multi.push(&mut profiler);
            multi.push(&mut progress);
            let observed = Solver::with_observer(&qbf, config, multi).solve();
            assert_eq!(plain.value(), observed.value());
            assert_eq!(
                plain.stats, observed.stats,
                "observers must leave the search bit-identical (seed {seed})"
            );
        }
    }
}

/// The metrics analogue of the zero-overhead guard, pinning the
/// `MetricsSink` contract from two sides: an explicitly-attached
/// `NoopMetrics` is the same monomorphization as the default solver, and
/// a *live* `EngineMetrics` sink — which times phases and samples gauges
/// but never feeds a search decision — must also leave every statistic
/// bit-identical.
#[test]
fn metrics_do_not_perturb_the_search() {
    for seed in 0..8u64 {
        let qbf = samples::random_qbf(seed, 10, 26);
        for config in [SolverConfig::partial_order(), SolverConfig::total_order()] {
            // Baseline: metrics disabled (the default type parameter).
            let plain = Solver::new(&qbf, config.clone()).solve();
            // Explicit Noop through the general constructor.
            let noop = Solver::with_instruments(
                &qbf,
                config.clone(),
                NoopObserver,
                NoProof,
                NoopMetrics,
            )
            .solve();
            assert_eq!(plain.value(), noop.value());
            assert_eq!(
                plain.stats, noop.stats,
                "explicit NoopMetrics must be the disabled path (seed {seed})"
            );
            // Live sink under a deterministic clock.
            let mut sink = EngineMetrics::new(ManualClock::new(1));
            let metered = Solver::with_metrics(&qbf, config.clone(), &mut sink).solve();
            assert_eq!(plain.value(), metered.value());
            assert_eq!(
                plain.stats, metered.stats,
                "a live metrics sink must leave the search bit-identical (seed {seed})"
            );
            if plain.stats.decisions > 0 {
                use qbf_core::metrics::{EngineGauge, Phase};
                assert!(
                    sink.phase_hist(Phase::Propagate).count() > 0,
                    "the live sink actually recorded spans (seed {seed})"
                );
                assert!(
                    sink.gauge_peak(EngineGauge::ArenaBytes) > 0,
                    "resource gauges sampled at decision boundaries (seed {seed})"
                );
            }
        }
    }
}

/// The certificate logger's analogue of the zero-overhead guard:
/// attaching a [`ProofLog`] must not change what the search *does*, only
/// record it. Proof mode forces pure literals off and learning on, so
/// the baseline uses the same effective configuration; every non-proof
/// statistic must then be bit-identical, and the proof counters must be
/// the only difference.
#[test]
fn proof_logging_does_not_perturb_the_search() {
    for seed in 0..8u64 {
        let qbf = samples::random_qbf(seed, 10, 26);
        for base in [SolverConfig::partial_order(), SolverConfig::total_order()] {
            let config = SolverConfig {
                pure_literals: false,
                learning: true,
                ..base
            };
            let plain = Solver::new(&qbf, config.clone()).solve();
            let mut log = ProofLog::new();
            let proved = Solver::with_proof(&qbf, config, &mut log).solve();
            assert_eq!(plain.value(), proved.value());
            let mut masked = proved.stats;
            assert!(masked.proof_steps > 0, "proof run recorded steps (seed {seed})");
            assert!(masked.proof_bytes > 0, "proof run recorded bytes (seed {seed})");
            masked.proof_steps = 0;
            masked.proof_bytes = 0;
            masked.proof_dels = 0;
            assert_eq!(
                plain.stats, masked,
                "proof logging must leave the search bit-identical (seed {seed})"
            );
        }
    }
}

#[test]
fn iterative_trace_shows_learning_on_paper_example() {
    let qbf = samples::paper_example();
    let mut trace = TreeTrace::new();
    let out = Solver::with_observer(&qbf, SolverConfig::partial_order(), &mut trace).solve();
    assert_eq!(out.value(), Some(false));
    let text = trace.into_string();
    assert!(text.contains("(branch)"));
    assert!(text.contains("CONFLICT"));
    assert!(text.contains("learn clause"), "learning events rendered:\n{text}");
}

/// The recursive and iterative engines agree with the default-`Noop`
/// paths on the same inputs — the observer plumbing itself is covered by
/// `Stats` equality above, this guards the recursive entry point.
#[test]
fn recursive_observer_entry_point_matches_plain_solve() {
    let qbf = samples::paper_example();
    let cfg = RecursiveConfig::default();
    let plain = recursive::solve(&qbf, &cfg);
    let mut profiler = Profiler::new(&qbf);
    let observed = recursive::solve_with_observer(&qbf, &cfg, &mut profiler);
    assert_eq!(plain.value, observed.value);
    assert_eq!(plain.stats, observed.stats);
    assert!(profiler.decisions() > 0);
}

#[test]
fn stats_display_lists_every_field() {
    let stats = Stats {
        decisions: 3,
        propagations: 4,
        ..Stats::default()
    };
    let rendered = stats.to_string();
    for (name, _) in stats.fields() {
        assert!(
            rendered.contains(name),
            "Display output missing field {name}"
        );
    }
    assert!(rendered.contains("assignments        = 7"));
}
