//! Witness extraction by self-reduction.
//!
//! A decision procedure answers true/false; applications (like the diameter
//! computation of §VII-C, which needs the reached state `x_{n+1}`) often
//! want the *outermost existential choices* of a winning strategy — or,
//! dually, the outermost universal choices refuting a false QBF. Both
//! follow from the standard self-reduction: fix one top variable at a time
//! and re-solve the restriction.
//!
//! The cost is one solver call per outermost-block variable, each on a
//! smaller formula; every intermediate result is validated by construction
//! (a fixed literal is kept only if the restricted QBF keeps the target
//! value).

use crate::qbf::Qbf;
use crate::solver::{Solver, SolverConfig};
use crate::var::{Lit, Var};

/// A witness for the outermost block(s) of a QBF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The value of the original QBF.
    pub value: bool,
    /// Literal choices for the outermost existential (if true) or
    /// universal (if false) variables of prefix level 1, in the order they
    /// were fixed.
    pub literals: Vec<Lit>,
}

/// Extracts the outer witness of a QBF: for a true QBF, values of the
/// top existential variables that keep it true; for a false QBF, values of
/// the top universal variables that keep it false.
///
/// Returns `None` if any solver call exhausts its budget.
///
/// # Examples
///
/// ```
/// use qbf_core::{samples, solver::SolverConfig, witness};
/// // The paper's example (1) is false and its only top variable x0 is
/// // existential, so the falsity witness is empty (no top universals).
/// let w = witness::outer_witness(&samples::paper_example(),
///                                &SolverConfig::partial_order()).expect("decided");
/// assert!(!w.value);
/// assert!(w.literals.is_empty());
/// ```
pub fn outer_witness(qbf: &Qbf, config: &SolverConfig) -> Option<Witness> {
    let value = Solver::new(qbf, config.clone()).solve().value()?;
    let tops: Vec<Var> = qbf
        .prefix()
        .top_vars()
        .into_iter()
        .filter(|&v| {
            let existential = qbf.prefix().is_existential(v);
            existential == value
        })
        .collect();
    let mut current = qbf.clone();
    let mut literals = Vec::new();
    for v in tops {
        // The variable may have left the formula through earlier
        // restrictions' vacuity; fixing it is then arbitrary.
        if current.prefix().quant(v).is_none() {
            literals.push(v.positive());
            continue;
        }
        let candidate = current.assign(v.positive());
        let keeps = Solver::new(&candidate, config.clone()).solve().value()?;
        if keeps == value {
            literals.push(v.positive());
            current = candidate;
        } else {
            let lit = v.negative();
            current = current.assign(lit);
            literals.push(lit);
            // By the semantics of the top variable, the other branch must
            // carry the value; validate in debug builds.
            debug_assert_eq!(
                Solver::new(&current, config.clone()).solve().value(),
                Some(value),
                "self-reduction invariant"
            );
        }
    }
    Some(Witness { value, literals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::semantics;

    fn config() -> SolverConfig {
        SolverConfig::partial_order()
    }

    #[test]
    fn sat_instance_witness_satisfies() {
        let q = samples::sat_instance();
        let w = outer_witness(&q, &config()).expect("decided");
        assert!(w.value);
        assert_eq!(w.literals.len(), 3); // all vars are top existentials
        let mut cur = q.clone();
        for &l in &w.literals {
            cur = cur.assign(l);
        }
        assert!(semantics::eval(&cur));
        assert!(cur.matrix().is_empty() || !cur.matrix().has_empty_clause());
    }

    #[test]
    fn false_qbf_universal_witness() {
        // ∀y ∃x-free-ish: (y) — false; witness must pick y := false.
        let q = crate::io::qdimacs::parse("p cnf 2 3\na 1 0\ne 2 0\n1 2 0\n-1 -2 0\n2 0\n")
            .unwrap();
        // ∀y ∃x (y∨x)(¬y∨¬x)(x): x forced true, so y must be false… the
        // formula is false; the top universal is y.
        let w = outer_witness(&q, &config()).expect("decided");
        assert!(!w.value);
        assert_eq!(w.literals.len(), 1);
        // The chosen branch keeps the formula false.
        let restricted = q.assign(w.literals[0]);
        assert!(!semantics::eval(&restricted));
    }

    #[test]
    fn true_nonprenex_witness() {
        let q = samples::two_independent_games();
        // top vars are the two universals; the value is true so there is
        // no existential witness at the top.
        let w = outer_witness(&q, &config()).expect("decided");
        assert!(w.value);
        assert!(w.literals.is_empty());
    }

    #[test]
    fn random_qbfs_witness_invariant() {
        for seed in 0..40u64 {
            let q = samples::random_qbf(0xbeef ^ seed, 6, 9);
            let w = outer_witness(&q, &config()).expect("decided");
            assert_eq!(w.value, semantics::eval(&q), "seed {seed}");
            let mut cur = q.clone();
            for &l in &w.literals {
                cur = cur.assign(l);
            }
            assert_eq!(semantics::eval(&cur), w.value, "seed {seed} witness");
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let cfg = SolverConfig::partial_order().with_node_limit(0);
        assert!(outer_witness(&samples::paper_example(), &cfg).is_none());
    }

    /// The caller's config must reach the *inner* restriction solves,
    /// not just the initial one. This instance is decided without a
    /// single assignment (the initial solve survives a zero node
    /// budget), but fixing its top variable leaves a restriction that
    /// needs real search — so a plumbed-through limit makes the
    /// self-reduction fail while a dropped one would silently succeed.
    #[test]
    fn restriction_solves_respect_the_callers_budget() {
        let q = samples::random_qbf(0xb823c, 8, 14);
        let cfg = SolverConfig::partial_order().with_node_limit(0);
        assert_eq!(
            Solver::new(&q, cfg.clone()).solve().value(),
            Some(false),
            "the unrestricted instance must be decidable within the budget"
        );
        assert!(
            outer_witness(&q, &cfg).is_none(),
            "a restriction solve must inherit and exhaust the budget"
        );
        assert!(
            outer_witness(&q, &SolverConfig::partial_order()).is_some(),
            "without the limit the witness extraction completes"
        );
    }
}
