//! Variables, literals and quantifiers.
//!
//! A [`Var`] is a dense index into the tables of a formula (0-based
//! internally, displayed 1-based like DIMACS). A [`Lit`] packs a variable and
//! a sign into a single `u32`, so that literal-indexed tables can be addressed
//! with [`Lit::code`].

use std::fmt;

/// A propositional variable, identified by a dense 0-based index.
///
/// # Examples
///
/// ```
/// use qbf_core::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "4"); // displayed 1-based, DIMACS style
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 0-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit the packed literal representation
    /// (`index >= u32::MAX / 2`).
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(index < (u32::MAX / 2) as usize, "variable index too large");
        Var(index as u32)
    }

    /// The 0-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// The literal of this variable with the given sign.
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a variable together with a sign.
///
/// Internally packed as `var << 1 | sign` so that literals index arrays
/// densely via [`Lit::code`]. The negation operator is overloaded:
///
/// ```
/// use qbf_core::{Var, Lit};
/// let l = Var::new(0).positive();
/// assert_eq!(!l, Var::new(0).negative());
/// assert_eq!(!!l, l);
/// ```
// `repr(transparent)` guarantees the layout matches `u32`, which lets the
// constraint arena (`solver/db.rs`) reinterpret its packed literal words as
// `&[Lit]` without copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a sign (`true` = positive).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | positive as u32)
    }

    /// Creates a literal from a DIMACS-style non-zero integer
    /// (`1` is the positive literal of the first variable, `-1` its negation).
    ///
    /// # Panics
    ///
    /// Panics if `code == 0`.
    pub fn from_dimacs(code: i64) -> Self {
        assert!(code != 0, "DIMACS literal must be non-zero");
        let var = Var::new(code.unsigned_abs() as usize - 1);
        Lit::new(var, code > 0)
    }

    /// This literal as a DIMACS-style signed integer.
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64 + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// The variable `|l|` occurring in this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is the positive literal of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this literal is the negative literal of its variable.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 0
    }

    /// A dense code suitable for indexing literal tables
    /// (`2 * var + sign`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// The truth value this literal asserts for its variable.
    #[inline]
    pub fn phase(self) -> bool {
        self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// The two kinds of quantifier binding a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Quantifier {
    /// The existential quantifier `∃`.
    Exists,
    /// The universal quantifier `∀`.
    Forall,
}

impl Quantifier {
    /// The dual quantifier (`∃` ↔ `∀`).
    #[inline]
    pub fn dual(self) -> Self {
        match self {
            Quantifier::Exists => Quantifier::Forall,
            Quantifier::Forall => Quantifier::Exists,
        }
    }

    /// Whether this is the existential quantifier.
    #[inline]
    pub fn is_exists(self) -> bool {
        matches!(self, Quantifier::Exists)
    }

    /// Whether this is the universal quantifier.
    #[inline]
    pub fn is_forall(self) -> bool {
        matches!(self, Quantifier::Forall)
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "e"),
            Quantifier::Forall => write!(f, "a"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        let v = Var::new(41);
        assert_eq!(v.index(), 41);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
    }

    #[test]
    fn lit_packing() {
        let v = Var::new(7);
        let p = v.positive();
        let n = v.negative();
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(p.code(), 15);
        assert_eq!(n.code(), 14);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn lit_negation_is_involutive() {
        let l = Var::new(3).positive();
        assert_eq!(!l, Var::new(3).negative());
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
    }

    #[test]
    fn dimacs_conversion() {
        assert_eq!(Lit::from_dimacs(5).to_dimacs(), 5);
        assert_eq!(Lit::from_dimacs(-5).to_dimacs(), -5);
        assert_eq!(Lit::from_dimacs(1).var(), Var::new(0));
        assert_eq!(Lit::from_dimacs(-1), !Lit::from_dimacs(1));
    }

    #[test]
    #[should_panic]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn quantifier_dual() {
        assert_eq!(Quantifier::Exists.dual(), Quantifier::Forall);
        assert_eq!(Quantifier::Forall.dual(), Quantifier::Exists);
        assert!(Quantifier::Exists.is_exists());
        assert!(Quantifier::Forall.is_forall());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Var::new(0).to_string(), "1");
        assert_eq!(Var::new(0).positive().to_string(), "1");
        assert_eq!(Var::new(0).negative().to_string(), "-1");
        assert_eq!(Quantifier::Exists.to_string(), "e");
        assert_eq!(Quantifier::Forall.to_string(), "a");
    }
}
