//! Small ready-made QBFs used throughout documentation and tests.

use crate::clause::Clause;
use crate::matrix::Matrix;
use crate::prefix::{Prefix, PrefixBuilder};
use crate::qbf::Qbf;
use crate::var::{Lit, Quantifier::*, Var};

fn clause(lits: &[i64]) -> Clause {
    Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d)))
        .expect("sample clauses are well-formed")
}

/// The paper's running example, QBF (1) of §II:
///
/// ```text
/// ∃x0 ( ∀y1 ∃x1 x2 ((¬x0 ∨ x1 ∨ x2) ∧ (y1 ∨ ¬x1 ∨ x2) ∧ (x1 ∨ ¬x2) ∧ (¬x0 ∨ ¬x1 ∨ ¬x2))
///     ∧ ∀y2 ∃x3 x4 (( x0 ∨ x3 ∨ x4) ∧ (y2 ∨ ¬x3 ∨ x4) ∧ (x3 ∨ ¬x4) ∧ ( x0 ∨ ¬x3 ∨ ¬x4)) )
/// ```
///
/// with the variable numbering `x0=1, y1=2, x1=3, x2=4, y2=5, x3=6, x4=7`
/// (DIMACS 1-based). Its prefix (3) is
/// `x0 ≺ y1 ≺ x1,x2` and `x0 ≺ y2 ≺ x3,x4`; its matrix is (4).
///
/// The negation overlines of the published matrix do not survive text
/// extraction, so the polarities are reconstructed to satisfy the
/// properties the paper states about the example: the QBF is **false**
/// (Fig. 2 shows its refutation tree — under `x0` the first subgame's four
/// clauses cover all sign patterns of `x1,x2` once `y1` is false, and
/// symmetrically for `¬x0`), and `y1`, `y2` occur with a single polarity
/// (footnote 5 points out they are monotone).
///
/// # Examples
///
/// ```
/// let q = qbf_core::samples::paper_example();
/// assert!(!qbf_core::semantics::eval(&q)); // the search tree of Fig. 2 refutes it
/// ```
pub fn paper_example() -> Qbf {
    let v: Vec<Var> = (0..7).map(Var::new).collect();
    let mut b = PrefixBuilder::new(7);
    let root = b.add_root(Exists, [v[0]]).expect("fresh builder");
    let y1 = b.add_child(root, Forall, [v[1]]).expect("fresh builder");
    b.add_child(y1, Exists, [v[2], v[3]]).expect("fresh builder");
    let y2 = b.add_child(root, Forall, [v[4]]).expect("fresh builder");
    b.add_child(y2, Exists, [v[5], v[6]]).expect("fresh builder");
    let prefix = b.finish().expect("canonicalization of a valid forest");

    // Matrix (4), polarities reconstructed (see the doc comment):
    // {¬x0,x1,x2}, {y1,¬x1,x2}, {x1,¬x2}, {¬x0,¬x1,¬x2},
    // { x0,x3,x4}, {y2,¬x3,x4}, {x3,¬x4}, { x0,¬x3,¬x4}
    let matrix = Matrix::from_clauses(
        7,
        [
            clause(&[-1, 3, 4]),
            clause(&[2, -3, 4]),
            clause(&[3, -4]),
            clause(&[-1, -3, -4]),
            clause(&[1, 6, 7]),
            clause(&[5, -6, 7]),
            clause(&[6, -7]),
            clause(&[1, -6, -7]),
        ],
    );
    Qbf::new(prefix, matrix).expect("sample is well-formed")
}

/// `∀y ∃x ((y ∨ x) ∧ (¬y ∨ ¬x))` — true (x := ¬y). Variables `y=1, x=2`.
pub fn forall_exists_xor() -> Qbf {
    let prefix = Prefix::prenex(2, [(Forall, vec![Var::new(0)]), (Exists, vec![Var::new(1)])])
        .expect("two fresh blocks");
    let matrix = Matrix::from_clauses(2, [clause(&[1, 2]), clause(&[-1, -2])]);
    Qbf::new(prefix, matrix).expect("sample is well-formed")
}

/// `∃x ∀y ((x ∨ y) ∧ (¬x ∨ ¬y))` — false (no constant x works for both y).
pub fn exists_forall_xor() -> Qbf {
    let prefix = Prefix::prenex(2, [(Exists, vec![Var::new(0)]), (Forall, vec![Var::new(1)])])
        .expect("two fresh blocks");
    let matrix = Matrix::from_clauses(2, [clause(&[1, 2]), clause(&[-1, -2])]);
    Qbf::new(prefix, matrix).expect("sample is well-formed")
}

/// A true non-prenex QBF with two independent subtrees:
/// `∃x1 (∀y1 (x1 ∨ ¬y1 ∨ e1)∧(e1∨¬e1-part…))` kept simple:
///
/// `(∀y1 ∃a (y1 ∨ a) ∧ (¬y1 ∨ ¬a)) ∧ (∀y2 ∃b (y2 ∨ b) ∧ (¬y2 ∨ ¬b))`
///
/// Variables `y1=1, a=2, y2=3, b=4`. True: each conjunct is the xor sample.
pub fn two_independent_games() -> Qbf {
    let mut builder = PrefixBuilder::new(4);
    let r1 = builder.add_root(Forall, [Var::new(0)]).expect("fresh");
    builder.add_child(r1, Exists, [Var::new(1)]).expect("fresh");
    let r2 = builder.add_root(Forall, [Var::new(2)]).expect("fresh");
    builder.add_child(r2, Exists, [Var::new(3)]).expect("fresh");
    let prefix = builder.finish().expect("valid forest");
    let matrix = Matrix::from_clauses(
        4,
        [
            clause(&[1, 2]),
            clause(&[-1, -2]),
            clause(&[3, 4]),
            clause(&[-3, -4]),
        ],
    );
    Qbf::new(prefix, matrix).expect("sample is well-formed")
}

/// A purely existential (SAT) instance: `(x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3)`
/// — satisfiable.
pub fn sat_instance() -> Qbf {
    let prefix = Prefix::prenex(
        3,
        [(Exists, vec![Var::new(0), Var::new(1), Var::new(2)])],
    )
    .expect("single block");
    let matrix = Matrix::from_clauses(3, [clause(&[1, 2]), clause(&[-1, 2]), clause(&[-2, 3])]);
    Qbf::new(prefix, matrix).expect("sample is well-formed")
}

/// An unsatisfiable purely existential instance:
/// `(x1) ∧ (¬x1 ∨ x2) ∧ (¬x2)`.
pub fn unsat_instance() -> Qbf {
    let prefix = Prefix::prenex(2, [(Exists, vec![Var::new(0), Var::new(1)])])
        .expect("single block");
    let matrix = Matrix::from_clauses(2, [clause(&[1]), clause(&[-1, 2]), clause(&[-2])]);
    Qbf::new(prefix, matrix).expect("sample is well-formed")
}

/// A deterministic pseudo-random **well-formed** QBF for differential
/// testing: a random quantifier forest whose clauses each draw their
/// variables from a single root path (the §II well-formedness condition —
/// a clause of an actual formula lies inside some scope containing all its
/// variables).
///
/// # Examples
///
/// ```
/// let a = qbf_core::samples::random_qbf(7, 6, 9);
/// let b = qbf_core::samples::random_qbf(7, 6, 9);
/// assert_eq!(a, b); // deterministic per seed
/// ```
pub fn random_qbf(seed: u64, num_vars: usize, num_clauses: usize) -> Qbf {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };

    // Random forest: each variable starts a root or attaches below a
    // previously placed variable's block. Track each block's path.
    let mut builder = PrefixBuilder::new(num_vars);
    let mut blocks: Vec<crate::prefix::BlockId> = Vec::new();
    // paths[i] = variables visible at block i (root path, inclusive)
    let mut paths: Vec<Vec<Var>> = Vec::new();
    for i in 0..num_vars {
        let v = Var::new(i);
        let quant = if next() % 2 == 0 { Exists } else { Forall };
        if blocks.is_empty() || next() % 4 == 0 {
            blocks.push(builder.add_root(quant, [v]).expect("fresh variable"));
            paths.push(vec![v]);
        } else {
            let p = (next() % blocks.len() as u64) as usize;
            blocks.push(
                builder
                    .add_child(blocks[p], quant, [v])
                    .expect("fresh variable"),
            );
            let mut path = paths[p].clone();
            path.push(v);
            paths.push(path);
        }
    }
    let prefix = builder.finish().expect("valid forest");

    let mut clauses = Vec::new();
    let mut guard = 0;
    while clauses.len() < num_clauses && guard < 20 * num_clauses {
        guard += 1;
        let path = &paths[(next() % paths.len() as u64) as usize];
        let len = 1 + (next() % 3) as usize;
        let lits: Vec<Lit> = (0..len)
            .map(|_| {
                let v = path[(next() % path.len() as u64) as usize];
                v.lit(next() % 2 == 0)
            })
            .collect();
        if let Ok(c) = Clause::new(lits) {
            clauses.push(c);
        }
    }
    Qbf::new(prefix, Matrix::from_clauses(num_vars, clauses))
        .expect("path-drawn clauses are scope-compatible")
}
