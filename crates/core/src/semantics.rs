//! The naive recursive semantics of QBFs (§II).
//!
//! This module is the *ground-truth oracle* of the workspace: it evaluates a
//! QBF by direct structural recursion on the definition of §II, with no
//! simplification rules beyond the two base cases. It is exponential and
//! meant for small formulas (tests, cross-validation of the solvers).

use crate::qbf::Qbf;
use crate::var::Var;

/// Evaluates a QBF by the recursive definition of §II:
///
/// * an empty matrix is true;
/// * a matrix containing the empty clause is false;
/// * otherwise pick a *top* variable `z` and combine `ϕ_z` and `ϕ_¬z` with
///   `or` (existential) or `and` (universal).
///
/// Free matrix variables are treated as outermost existentials (§II point
/// 2). The choice of top variable does not affect the value (see the
/// property tests); this implementation always picks the smallest-index one.
///
/// # Examples
///
/// ```
/// use qbf_core::{samples, semantics};
/// assert!(semantics::eval(&samples::forall_exists_xor()));
/// assert!(!semantics::eval(&samples::exists_forall_xor()));
/// ```
pub fn eval(qbf: &Qbf) -> bool {
    eval_counting(qbf).0
}

/// Like [`eval`] but also returns the number of recursive calls, a
/// deterministic size measure of the naive search tree.
pub fn eval_counting(qbf: &Qbf) -> (bool, u64) {
    let mut nodes = 0;
    let value = eval_rec(&qbf.prune_vacuous(), &mut nodes);
    (value, nodes)
}

fn eval_rec(qbf: &Qbf, nodes: &mut u64) -> bool {
    *nodes += 1;
    if qbf.matrix().has_empty_clause() {
        return false;
    }
    if qbf.matrix().is_empty() {
        return true;
    }
    let z = pick_top(qbf);
    let pos = qbf.assign(z.positive()).prune_vacuous();
    let neg = qbf.assign(z.negative()).prune_vacuous();
    if qbf.prefix().is_universal(z) {
        eval_rec(&pos, nodes) && eval_rec(&neg, nodes)
    } else {
        eval_rec(&pos, nodes) || eval_rec(&neg, nodes)
    }
}

/// Picks the smallest-index variable that is *top* (§II): a bound variable
/// of prefix level 1, or — if the prefix binds nothing — any free variable
/// occurring in the matrix (free variables are outermost existentials).
fn pick_top(qbf: &Qbf) -> Var {
    let tops = qbf.prefix().top_vars();
    if let Some(&v) = tops.iter().min() {
        return v;
    }
    // Prefix is empty but the matrix is not: all remaining variables are
    // free, hence existential and top.
    qbf.matrix()
        .occurring_vars()
        .iter()
        .position(|&b| b)
        .map(Var::new)
        .expect("non-empty matrix without empty clause mentions a variable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::matrix::Matrix;
    use crate::prefix::Prefix;
    use crate::qbf::Qbf;
    use crate::samples;
    use crate::var::{Lit, Quantifier::*};

    fn clause(lits: &[i64]) -> Clause {
        Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d))).unwrap()
    }

    #[test]
    fn base_cases() {
        let empty = Qbf::new(Prefix::empty(0), Matrix::new(0)).unwrap();
        assert!(eval(&empty));
        let falsum = Qbf::new(
            Prefix::empty(0),
            Matrix::from_clauses(0, [Clause::empty()]),
        )
        .unwrap();
        assert!(!eval(&falsum));
    }

    #[test]
    fn xor_samples() {
        assert!(eval(&samples::forall_exists_xor()));
        assert!(!eval(&samples::exists_forall_xor()));
    }

    #[test]
    fn sat_samples() {
        assert!(eval(&samples::sat_instance()));
        assert!(!eval(&samples::unsat_instance()));
    }

    #[test]
    fn paper_example_is_false() {
        // Fig. 2 shows a refutation tree for QBF (1).
        assert!(!eval(&samples::paper_example()));
    }

    #[test]
    fn two_independent_games_true() {
        assert!(eval(&samples::two_independent_games()));
    }

    #[test]
    fn free_variables_are_existential() {
        // x free: (x) is satisfiable by x := true.
        let q = Qbf::new_closing_free(Prefix::empty(1), Matrix::from_clauses(1, [clause(&[1])]))
            .unwrap();
        assert!(eval(&q));
        // (x) ∧ (¬x) is not.
        let q = Qbf::new_closing_free(
            Prefix::empty(1),
            Matrix::from_clauses(1, [clause(&[1]), clause(&[-1])]),
        )
        .unwrap();
        assert!(!eval(&q));
    }

    #[test]
    fn universal_var_alone_is_false_when_forced() {
        // ∀y (y) is false.
        let p = Prefix::prenex(1, [(Forall, vec![crate::var::Var::new(0)])]).unwrap();
        let m = Matrix::from_clauses(1, [clause(&[1])]);
        assert!(!eval(&Qbf::new(p, m).unwrap()));
    }

    #[test]
    fn counting_reports_nodes() {
        let (value, nodes) = eval_counting(&samples::exists_forall_xor());
        assert!(!value);
        assert!(nodes >= 3);
    }
}
