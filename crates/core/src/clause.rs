//! Clauses: finite disjunctions of literals over pairwise distinct variables.
//!
//! Following §II of the paper, a clause never contains two literals over the
//! same variable: duplicate literals are merged and opposite literals are
//! rejected as an error ([`ClauseError::Tautology`]). The empty clause is
//! permitted (it is the canonical contradictory clause).

use std::fmt;

use crate::var::{Lit, Var};

/// A clause: a set of literals with pairwise distinct variables, stored
/// sorted by variable index.
///
/// # Examples
///
/// ```
/// use qbf_core::{Clause, Lit};
/// let c = Clause::new([Lit::from_dimacs(2), Lit::from_dimacs(-1)])?;
/// assert_eq!(c.len(), 2);
/// assert!(c.contains(Lit::from_dimacs(-1)));
/// # Ok::<(), qbf_core::ClauseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

/// Error produced when building a [`Clause`] from raw literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseError {
    /// The literal set contained both `l` and `¬l` for the reported variable.
    Tautology(Var),
}

impl fmt::Display for ClauseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClauseError::Tautology(v) => {
                write!(f, "clause contains both polarities of variable {v}")
            }
        }
    }
}

impl std::error::Error for ClauseError {}

impl Clause {
    /// Builds a clause from literals, deduplicating repeated literals.
    ///
    /// # Errors
    ///
    /// Returns [`ClauseError::Tautology`] if both polarities of some variable
    /// occur: the paper's clause syntax requires `|l_i| ≠ |l_j|`.
    pub fn new<I: IntoIterator<Item = Lit>>(lits: I) -> Result<Self, ClauseError> {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable_by_key(|l| (l.var(), l.is_positive()));
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return Err(ClauseError::Tautology(w[0].var()));
            }
        }
        Ok(Clause { lits })
    }

    /// The empty (contradictory) clause.
    pub fn empty() -> Self {
        Clause::default()
    }

    /// Number of literals in the clause.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The literals, sorted by variable index.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Whether the clause contains the given literal.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits
            .binary_search_by_key(&(lit.var(), lit.is_positive()), |l| {
                (l.var(), l.is_positive())
            })
            .is_ok()
    }

    /// Whether the clause contains either polarity of the given variable.
    pub fn contains_var(&self, var: Var) -> bool {
        self.lits
            .binary_search_by_key(&var, |l| l.var())
            .is_ok()
    }

    /// The clause obtained by removing the given literal, if present.
    pub fn without(&self, lit: Lit) -> Clause {
        Clause {
            lits: self.lits.iter().copied().filter(|&l| l != lit).collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;
    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn builds_sorted_and_deduped() {
        let c = Clause::new([lit(3), lit(-1), lit(3)]).unwrap();
        assert_eq!(c.lits(), &[lit(-1), lit(3)]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rejects_tautology() {
        let err = Clause::new([lit(2), lit(-2)]).unwrap_err();
        assert_eq!(err, ClauseError::Tautology(Var::new(1)));
        assert!(err.to_string().contains("both polarities"));
    }

    #[test]
    fn empty_clause() {
        let c = Clause::empty();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.to_string(), "{}");
        assert_eq!(c, Clause::new([]).unwrap());
    }

    #[test]
    fn contains_queries() {
        let c = Clause::new([lit(1), lit(-2), lit(4)]).unwrap();
        assert!(c.contains(lit(1)));
        assert!(!c.contains(lit(-1)));
        assert!(c.contains(lit(-2)));
        assert!(c.contains_var(Var::new(3)));
        assert!(!c.contains_var(Var::new(2)));
    }

    #[test]
    fn without_removes_only_that_literal() {
        let c = Clause::new([lit(1), lit(-2)]).unwrap();
        let d = c.without(lit(-2));
        assert_eq!(d, Clause::new([lit(1)]).unwrap());
        // removing an absent literal is a no-op
        assert_eq!(c.without(lit(2)), c);
    }

    #[test]
    fn display() {
        let c = Clause::new([lit(1), lit(-3)]).unwrap();
        assert_eq!(c.to_string(), "{1, -3}");
    }
}
