//! The matrix of a QBF: a set of clauses in conjunctive normal form.

use std::fmt;

use crate::clause::Clause;
use crate::var::{Lit, Var};

/// A CNF matrix: the conjunction of a set of clauses (§II).
///
/// # Examples
///
/// ```
/// use qbf_core::{Clause, Lit, Matrix};
/// let mut m = Matrix::new(2);
/// m.push(Clause::new([Lit::from_dimacs(1), Lit::from_dimacs(-2)])?);
/// assert_eq!(m.len(), 1);
/// assert!(!m.has_empty_clause());
/// # Ok::<(), qbf_core::ClauseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Matrix {
    clauses: Vec<Clause>,
    num_vars: usize,
}

impl Matrix {
    /// An empty matrix over the variable universe `0..num_vars`.
    ///
    /// Note that per the QBF semantics an *empty matrix* is true.
    pub fn new(num_vars: usize) -> Self {
        Matrix {
            clauses: Vec::new(),
            num_vars,
        }
    }

    /// Builds a matrix from clauses.
    pub fn from_clauses(num_vars: usize, clauses: impl IntoIterator<Item = Clause>) -> Self {
        Matrix {
            clauses: clauses.into_iter().collect(),
            num_vars,
        }
    }

    /// Adds a clause.
    pub fn push(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the matrix has no clauses (a true matrix).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The variable universe size.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Whether the matrix contains the empty clause (a false matrix).
    pub fn has_empty_clause(&self) -> bool {
        self.clauses.iter().any(Clause::is_empty)
    }

    /// Whether any clause mentions the given variable.
    pub fn mentions(&self, var: Var) -> bool {
        self.clauses.iter().any(|c| c.contains_var(var))
    }

    /// The set of variables occurring in some clause, as a membership mask
    /// indexed by variable.
    pub fn occurring_vars(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_vars];
        for c in &self.clauses {
            for l in c {
                seen[l.var().index()] = true;
            }
        }
        seen
    }

    /// The matrix of `ϕ_l` (§II): clauses containing `l` are removed and
    /// `¬l` is removed from the remaining clauses.
    pub fn assign(&self, lit: Lit) -> Matrix {
        let mut out = Matrix::new(self.num_vars);
        for c in &self.clauses {
            if c.contains(lit) {
                continue;
            }
            out.push(c.without(!lit));
        }
        out
    }

    /// Evaluates the matrix under a total assignment (`assignment[v]` is the
    /// value of variable `v`). Used by the model-checking oracle tests.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }
}

impl FromIterator<Clause> for Matrix {
    /// Collects clauses into a matrix, inferring the universe size from the
    /// largest variable mentioned.
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let clauses: Vec<Clause> = iter.into_iter().collect();
        let num_vars = clauses
            .iter()
            .flat_map(|c| c.iter())
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);
        Matrix { clauses, num_vars }
    }
}

impl Extend<Clause> for Matrix {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        self.clauses.extend(iter);
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[i64]) -> Clause {
        Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d))).unwrap()
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::new(3);
        assert!(m.is_empty());
        assert!(!m.has_empty_clause());
        assert_eq!(m.num_vars(), 3);
    }

    #[test]
    fn assign_removes_satisfied_and_shrinks_others() {
        let m = Matrix::from_clauses(3, [clause(&[1, 2]), clause(&[-1, 3]), clause(&[2, 3])]);
        let m1 = m.assign(Lit::from_dimacs(1));
        assert_eq!(m1.len(), 2);
        assert_eq!(m1.clauses()[0], clause(&[3]));
        assert_eq!(m1.clauses()[1], clause(&[2, 3]));
        let m2 = m.assign(Lit::from_dimacs(-1));
        assert_eq!(m2.len(), 2);
        assert_eq!(m2.clauses()[0], clause(&[2]));
    }

    #[test]
    fn assign_can_produce_empty_clause() {
        let m = Matrix::from_clauses(1, [clause(&[1])]);
        let m0 = m.assign(Lit::from_dimacs(-1));
        assert!(m0.has_empty_clause());
    }

    #[test]
    fn eval_total_assignment() {
        let m = Matrix::from_clauses(2, [clause(&[1, 2]), clause(&[-1, 2])]);
        assert!(m.eval(&[true, true]));
        assert!(m.eval(&[false, true]));
        assert!(!m.eval(&[true, false]));
    }

    #[test]
    fn from_iterator_infers_universe() {
        let m: Matrix = [clause(&[1, -5])].into_iter().collect();
        assert_eq!(m.num_vars(), 5);
        assert!(m.mentions(Var::new(4)));
        assert!(!m.mentions(Var::new(2)));
    }

    #[test]
    fn occurring_vars_mask() {
        let m = Matrix::from_clauses(4, [clause(&[1, -3])]);
        assert_eq!(m.occurring_vars(), vec![true, false, true, false]);
    }
}
