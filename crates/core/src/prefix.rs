//! Partially ordered quantifier prefixes, represented as a forest of blocks.
//!
//! §II of the paper represents a (possibly non-prenex) QBF prefix as a
//! partial order `≺` on variables. We store the *quantifier forest*: each
//! block binds a set of variables with one quantifier; a same-quantifier
//! child is fused into its parent only when it is the parent's single child
//! (the exact `Q1 z1 Q2 z2 ↦ Q2 z2 Q1 z1` freedom for `Q1 = Q2`; fusing a
//! child that has siblings would invent `≺` pairs towards the sibling
//! subtrees).
//!
//! The `≺` test is implemented exactly as in §VI of the paper: DFS
//! discovery/finish timestamps `d`/`f` whose clock advances only when the
//! quantifier *alternates*, and by the parenthesis theorem
//! `z ≺ z′ ⇔ d(z) < d(z′) ≤ f(z)` (Eq. 13). Like the paper's scheme, this
//! over-approximates `≺` by at most some same-branching-freedom pairs
//! (never a missing pair, so every unit/reduction/branching decision based
//! on it stays sound), and it is exact on alternation chains. The prefix
//! *level* of a variable counts quantifier alternations along its root
//! path, matching the longest-`≺`-chain definition of §II. A prenex prefix
//! is the special case of a single root-to-leaf path.

use std::fmt;

use crate::var::{Quantifier, Var};

/// Identifier of a block inside a [`Prefix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Dense index of this block for table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlockData {
    quant: Quantifier,
    vars: Vec<Var>,
    parent: Option<BlockId>,
    children: Vec<BlockId>,
    /// DFS discovery timestamp (block granularity, §VI).
    d: u32,
    /// DFS finish timestamp.
    f: u32,
    /// Prefix level of the block's variables (1-based, §II).
    level: u32,
}

/// Errors produced while building a [`Prefix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixError {
    /// A variable index was `>= num_vars`.
    VarOutOfRange(Var),
    /// A variable was bound by more than one quantifier occurrence.
    DuplicateBinding(Var),
    /// A parent block id passed to the builder does not exist.
    UnknownBlock,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::VarOutOfRange(v) => write!(f, "variable {v} out of range"),
            PrefixError::DuplicateBinding(v) => {
                write!(f, "variable {v} bound by more than one quantifier")
            }
            PrefixError::UnknownBlock => write!(f, "unknown parent block id"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// A canonicalized quantifier prefix: a forest of alternation blocks over a
/// fixed variable universe `0..num_vars`.
///
/// Variables not bound by any block are permitted in the *prefix* (the
/// containing [`crate::Qbf`] decides whether that is an error); queries like
/// [`Prefix::quant`] return `None` for them.
///
/// # Examples
///
/// Building the prefix of the paper's running example (1), i.e.
/// `x0 ≺ y1 ≺ x1,x2` and `x0 ≺ y2 ≺ x3,x4`:
///
/// ```
/// use qbf_core::{Prefix, PrefixBuilder, Quantifier::*, Var};
/// let v: Vec<Var> = (0..7).map(Var::new).collect();
/// let mut b = PrefixBuilder::new(7);
/// let root = b.add_root(Exists, [v[0]])?;
/// let y1 = b.add_child(root, Forall, [v[1]])?;
/// b.add_child(y1, Exists, [v[2], v[3]])?;
/// let y2 = b.add_child(root, Forall, [v[4]])?;
/// b.add_child(y2, Exists, [v[5], v[6]])?;
/// let p = b.finish()?;
/// assert!(p.precedes(v[0], v[2]));
/// assert!(!p.precedes(v[1], v[5])); // y1 and x3 are incomparable
/// assert_eq!(p.prefix_level(), 3);
/// # Ok::<(), qbf_core::PrefixError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Prefix {
    blocks: Vec<BlockData>,
    roots: Vec<BlockId>,
    /// Per variable: the block binding it, if any.
    var_block: Vec<Option<BlockId>>,
    num_vars: usize,
}

impl Prefix {
    /// An empty prefix binding no variables over a universe of `num_vars`.
    pub fn empty(num_vars: usize) -> Self {
        Prefix {
            blocks: Vec::new(),
            roots: Vec::new(),
            var_block: vec![None; num_vars],
            num_vars,
        }
    }

    /// Builds a prenex (totally ordered) prefix from an outermost-first list
    /// of quantifier blocks. Consecutive same-quantifier blocks are merged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PrefixBuilder::finish`].
    pub fn prenex<I, J>(num_vars: usize, blocks: I) -> Result<Self, PrefixError>
    where
        I: IntoIterator<Item = (Quantifier, J)>,
        J: IntoIterator<Item = Var>,
    {
        let mut b = PrefixBuilder::new(num_vars);
        let mut parent: Option<BlockId> = None;
        for (q, vars) in blocks {
            let id = match parent {
                None => b.add_root(q, vars)?,
                Some(p) => b.add_child(p, q, vars)?,
            };
            parent = Some(id);
        }
        b.finish()
    }

    /// Number of variables in the universe (bound or not).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of blocks in the canonical forest.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The quantifier binding `v`, or `None` if `v` is unbound.
    pub fn quant(&self, v: Var) -> Option<Quantifier> {
        self.var_block[v.index()].map(|b| self.blocks[b.index()].quant)
    }

    /// Whether `v` is existential (unbound variables count as existential,
    /// per §II point 2).
    pub fn is_existential(&self, v: Var) -> bool {
        self.quant(v) != Some(Quantifier::Forall)
    }

    /// Whether `v` is universal.
    pub fn is_universal(&self, v: Var) -> bool {
        self.quant(v) == Some(Quantifier::Forall)
    }

    /// The block binding `v`, if any.
    pub fn block_of(&self, v: Var) -> Option<BlockId> {
        self.var_block[v.index()]
    }

    /// The prefix level of `v` (1-based, §II), or `None` if unbound.
    pub fn level(&self, v: Var) -> Option<u32> {
        self.var_block[v.index()].map(|b| self.blocks[b.index()].level)
    }

    /// The prefix level of the whole prefix (0 for an empty prefix).
    pub fn prefix_level(&self) -> u32 {
        self.blocks.iter().map(|b| b.level).max().unwrap_or(0)
    }

    /// The `≺` test of §VI: `a ≺ b` iff `d(a) < d(b) ≤ f(a)` (Eq. 13).
    ///
    /// Unbound variables are incomparable to everything.
    #[inline]
    pub fn precedes(&self, a: Var, b: Var) -> bool {
        match (self.var_block[a.index()], self.var_block[b.index()]) {
            (Some(ba), Some(bb)) => {
                let ba = &self.blocks[ba.index()];
                let bb = &self.blocks[bb.index()];
                ba.d < bb.d && bb.d <= ba.f
            }
            _ => false,
        }
    }

    /// DFS discovery timestamp of `v`'s block (§VI), if bound.
    pub fn discovery(&self, v: Var) -> Option<u32> {
        self.var_block[v.index()].map(|b| self.blocks[b.index()].d)
    }

    /// DFS finish timestamp of `v`'s block (§VI), if bound.
    pub fn finish_time(&self, v: Var) -> Option<u32> {
        self.var_block[v.index()].map(|b| self.blocks[b.index()].f)
    }

    /// The root blocks of the forest, in canonical order.
    pub fn roots(&self) -> &[BlockId] {
        &self.roots
    }

    /// The quantifier of a block.
    pub fn block_quant(&self, b: BlockId) -> Quantifier {
        self.blocks[b.index()].quant
    }

    /// The variables bound by a block, sorted by index.
    pub fn block_vars(&self, b: BlockId) -> &[Var] {
        &self.blocks[b.index()].vars
    }

    /// The parent of a block, if any.
    pub fn block_parent(&self, b: BlockId) -> Option<BlockId> {
        self.blocks[b.index()].parent
    }

    /// The children of a block, in canonical order.
    pub fn block_children(&self, b: BlockId) -> &[BlockId] {
        &self.blocks[b.index()].children
    }

    /// The prefix level of a block (1-based).
    pub fn block_level(&self, b: BlockId) -> u32 {
        self.blocks[b.index()].level
    }

    /// The DFS interval `(d, f)` of a block (§VI). Two blocks lie on one
    /// root path iff one interval contains the other.
    pub fn block_interval(&self, b: BlockId) -> (u32, u32) {
        let data = &self.blocks[b.index()];
        (data.d, data.f)
    }

    /// Whether `a` is `b` or an ancestor of `b` in the forest.
    pub fn block_is_ancestor_or_self(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.blocks[c.index()].parent;
        }
        false
    }

    /// Iterates over all block ids.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(|i| BlockId(i as u32))
    }

    /// Iterates over all bound variables, grouped by block in DFS order.
    pub fn bound_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.blocks_dfs()
            .flat_map(move |b| self.blocks[b.index()].vars.iter().copied())
    }

    /// Number of bound variables.
    pub fn num_bound(&self) -> usize {
        self.blocks.iter().map(|b| b.vars.len()).sum()
    }

    /// Iterates over blocks in DFS preorder.
    pub fn blocks_dfs(&self) -> impl Iterator<Item = BlockId> + '_ {
        let mut order = Vec::with_capacity(self.blocks.len());
        let mut stack: Vec<BlockId> = self.roots.iter().rev().copied().collect();
        while let Some(b) = stack.pop() {
            order.push(b);
            stack.extend(self.blocks[b.index()].children.iter().rev().copied());
        }
        order.into_iter()
    }

    /// Whether the prefix is in prenex form: a single root-to-leaf chain, so
    /// that `≺` is total across quantifier alternations (§II).
    pub fn is_prenex(&self) -> bool {
        if self.roots.len() > 1 {
            return false;
        }
        let Some(&root) = self.roots.first() else {
            return true;
        };
        let mut b = root;
        loop {
            match self.blocks[b.index()].children.as_slice() {
                [] => return true,
                [only] => b = *only,
                _ => return false,
            }
        }
    }

    /// The outermost-first list of blocks of a prenex prefix.
    ///
    /// # Panics
    ///
    /// Panics if the prefix is not prenex (check with [`Prefix::is_prenex`]).
    pub fn linear_blocks(&self) -> Vec<(Quantifier, Vec<Var>)> {
        assert!(self.is_prenex(), "linear_blocks requires a prenex prefix");
        let mut out = Vec::new();
        let mut cur = self.roots.first().copied();
        while let Some(b) = cur {
            let data = &self.blocks[b.index()];
            out.push((data.quant, data.vars.clone()));
            cur = data.children.first().copied();
        }
        out
    }

    /// The prefix obtained by unbinding `v` (used by `ϕ_l` restriction,
    /// §II). Empty blocks dissolve and same-quantifier neighbours re-merge.
    pub fn without_var(&self, v: Var) -> Prefix {
        let mut b = PrefixBuilder::new(self.num_vars);
        // Rebuild the forest minus `v`; the builder's canonicalization takes
        // care of dissolving emptied blocks.
        fn copy(
            p: &Prefix,
            b: &mut PrefixBuilder,
            src: BlockId,
            parent: Option<BlockId>,
            skip: Var,
        ) {
            let data = &p.blocks[src.index()];
            let vars: Vec<Var> = data.vars.iter().copied().filter(|&w| w != skip).collect();
            let id = match parent {
                None => b.add_root(data.quant, vars),
                Some(pp) => b.add_child(pp, data.quant, vars),
            }
            .expect("rebuilding an existing prefix cannot fail");
            for &c in &data.children {
                copy(p, b, c, Some(id), skip);
            }
        }
        for &r in &self.roots {
            copy(self, &mut b, r, None, v);
        }
        b.finish().expect("rebuilding an existing prefix cannot fail")
    }

    /// The variables that are *top* in this prefix (prefix level 1, §II).
    pub fn top_vars(&self) -> Vec<Var> {
        self.roots
            .iter()
            .flat_map(|r| self.blocks[r.index()].vars.iter().copied())
            .collect()
    }
}

impl fmt::Display for Prefix {
    /// Renders the forest as s-expressions with 1-based DIMACS numbering,
    /// e.g. `(e 1 (a 2 (e 3 4)) (a 5 (e 6 7)))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn node(p: &Prefix, f: &mut fmt::Formatter<'_>, b: BlockId) -> fmt::Result {
            let data = &p.blocks[b.index()];
            write!(f, "({}", data.quant)?;
            for v in &data.vars {
                write!(f, " {v}")?;
            }
            for &c in &data.children {
                write!(f, " ")?;
                node(p, f, c)?;
            }
            write!(f, ")")
        }
        for (i, &r) in self.roots.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            node(self, f, r)?;
        }
        Ok(())
    }
}

/// Builder for [`Prefix`] values: add blocks freely, then
/// [`PrefixBuilder::finish`] canonicalizes (merges same-quantifier
/// parent/child blocks, dissolves empty blocks) and computes timestamps.
#[derive(Debug, Clone)]
pub struct PrefixBuilder {
    num_vars: usize,
    /// Draft blocks: (quant, vars, children).
    drafts: Vec<(Quantifier, Vec<Var>, Vec<usize>)>,
    draft_roots: Vec<usize>,
    bound: Vec<bool>,
}

impl PrefixBuilder {
    /// Creates a builder over the variable universe `0..num_vars`.
    pub fn new(num_vars: usize) -> Self {
        PrefixBuilder {
            num_vars,
            drafts: Vec::new(),
            draft_roots: Vec::new(),
            bound: vec![false; num_vars],
        }
    }

    fn add(
        &mut self,
        parent: Option<usize>,
        quant: Quantifier,
        vars: impl IntoIterator<Item = Var>,
    ) -> Result<BlockId, PrefixError> {
        let vars: Vec<Var> = vars.into_iter().collect();
        for &v in &vars {
            if v.index() >= self.num_vars {
                return Err(PrefixError::VarOutOfRange(v));
            }
            if self.bound[v.index()] {
                return Err(PrefixError::DuplicateBinding(v));
            }
            self.bound[v.index()] = true;
        }
        let id = self.drafts.len();
        self.drafts.push((quant, vars, Vec::new()));
        match parent {
            None => self.draft_roots.push(id),
            Some(p) => self.drafts[p].2.push(id),
        }
        Ok(BlockId(id as u32))
    }

    /// Adds a root block.
    ///
    /// # Errors
    ///
    /// Fails if a variable is out of range or already bound.
    pub fn add_root(
        &mut self,
        quant: Quantifier,
        vars: impl IntoIterator<Item = Var>,
    ) -> Result<BlockId, PrefixError> {
        self.add(None, quant, vars)
    }

    /// Adds a block in the scope of `parent`'s variables.
    ///
    /// # Errors
    ///
    /// Fails if `parent` is unknown, or a variable is out of range or
    /// already bound.
    pub fn add_child(
        &mut self,
        parent: BlockId,
        quant: Quantifier,
        vars: impl IntoIterator<Item = Var>,
    ) -> Result<BlockId, PrefixError> {
        if parent.index() >= self.drafts.len() {
            return Err(PrefixError::UnknownBlock);
        }
        self.add(Some(parent.index()), quant, vars)
    }

    /// Canonicalizes and finishes the prefix.
    ///
    /// # Errors
    ///
    /// Currently infallible after the per-block checks in
    /// [`PrefixBuilder::add_root`]/[`PrefixBuilder::add_child`]; the
    /// `Result` is kept for future validation.
    pub fn finish(self) -> Result<Prefix, PrefixError> {
        // Normalized draft node.
        struct Norm {
            quant: Quantifier,
            vars: Vec<Var>,
            children: Vec<Norm>,
        }

        // Normalizing a draft yields a list (an empty block dissolves into
        // its normalized children).
        //
        // A same-quantifier child is merged into its parent ONLY when it is
        // the parent's single child: that merge is exact (`≺` unchanged).
        // Merging a same-quantifier child that has siblings would invent
        // `≺` pairs between its variables and the sibling subtrees, which
        // the partial order of §II does not contain.
        fn norm(drafts: &[(Quantifier, Vec<Var>, Vec<usize>)], id: usize) -> Vec<Norm> {
            let (quant, vars, child_ids) = &drafts[id];
            let mut children: Vec<Norm> =
                child_ids.iter().flat_map(|&c| norm(drafts, c)).collect();
            if vars.is_empty() {
                return children;
            }
            let mut vars = vars.clone();
            // Chain-merge single same-quantifier children.
            while children.len() == 1 && children[0].quant == *quant {
                let only = children.pop().expect("len checked");
                vars.extend(only.vars);
                children = only.children;
            }
            // Canonical order: same-quantifier children first (so the
            // alternation clock of earlier alternating siblings cannot leak
            // spurious mixed-quantifier `≺` pairs onto them), then by
            // minimum variable.
            children.sort_by_key(|k| (k.quant != *quant, k.vars.iter().copied().min()));
            vars.sort_unstable();
            vec![Norm {
                quant: *quant,
                vars,
                children,
            }]
        }

        let mut roots: Vec<Norm> = self
            .draft_roots
            .iter()
            .flat_map(|&r| norm(&self.drafts, r))
            .collect();
        roots.sort_by_key(|k| k.vars.iter().copied().min());

        // Flatten into the final arena, computing levels and timestamps.
        let mut prefix = Prefix::empty(self.num_vars);

        // §VI timestamping: the DFS clock advances when the quantifier
        // *alternates*, and also whenever a block is entered after an
        // ascent (i.e. not directly below the previously visited block).
        // Same-quantifier parent/child pairs thus share `d` and stay
        // `≺`-unordered, while a block entered after a finished sibling
        // subtree starts beyond that subtree's window — so the test (13)
        // relates exactly the alternation-ancestor pairs (plus harmless
        // same-quantifier chain pairs) and reproduces the paper's example
        // values. The prefix level counts alternations along the root path.
        #[allow(clippy::too_many_arguments)]
        fn flatten(
            p: &mut Prefix,
            n: Norm,
            parent: Option<(BlockId, Quantifier, u32)>,
            directly_after_parent: bool,
            time: &mut u32,
        ) -> BlockId {
            let (parent_id, level) = match parent {
                None => {
                    *time += 1;
                    (None, 1)
                }
                Some((pid, pquant, plevel)) => {
                    if n.quant != pquant || !directly_after_parent {
                        *time += 1;
                    }
                    let level = if n.quant != pquant { plevel + 1 } else { plevel };
                    (Some(pid), level)
                }
            };
            let id = BlockId(p.blocks.len() as u32);
            p.blocks.push(BlockData {
                quant: n.quant,
                vars: n.vars.clone(),
                parent: parent_id,
                children: Vec::new(),
                d: *time,
                f: 0,
                level,
            });
            for &v in &n.vars {
                p.var_block[v.index()] = Some(id);
            }
            let quant = n.quant;
            for (i, c) in n.children.into_iter().enumerate() {
                let cid = flatten(p, c, Some((id, quant, level)), i == 0, time);
                p.blocks[id.index()].children.push(cid);
            }
            p.blocks[id.index()].f = *time;
            id
        }

        let mut time = 0;
        for r in roots {
            let id = flatten(&mut prefix, r, None, false, &mut time);
            prefix.roots.push(id);
        }
        Ok(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Quantifier::*;

    fn v(i: usize) -> Var {
        Var::new(i)
    }

    /// Builds the prefix of the paper's QBF (1):
    /// `x0 ≺ y1 ≺ x1,x2` and `x0 ≺ y2 ≺ x3,x4`
    /// with x0=0, y1=1, x1=2, x2=3, y2=4, x3=5, x4=6.
    fn paper_prefix() -> Prefix {
        let mut b = PrefixBuilder::new(7);
        let root = b.add_root(Exists, [v(0)]).unwrap();
        let y1 = b.add_child(root, Forall, [v(1)]).unwrap();
        b.add_child(y1, Exists, [v(2), v(3)]).unwrap();
        let y2 = b.add_child(root, Forall, [v(4)]).unwrap();
        b.add_child(y2, Exists, [v(5), v(6)]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn paper_example_timestamps() {
        // §VI lists the d/f values for QBF (1); block-granularity preorder
        // reproduces them.
        let p = paper_prefix();
        assert_eq!(p.discovery(v(0)), Some(1));
        assert_eq!(p.discovery(v(1)), Some(2));
        assert_eq!(p.discovery(v(2)), Some(3));
        assert_eq!(p.discovery(v(3)), Some(3));
        assert_eq!(p.finish_time(v(1)), Some(3));
        assert_eq!(p.finish_time(v(2)), Some(3));
        assert_eq!(p.discovery(v(4)), Some(4));
        assert_eq!(p.discovery(v(5)), Some(5));
        assert_eq!(p.finish_time(v(0)), Some(5));
        assert_eq!(p.finish_time(v(4)), Some(5));
        assert_eq!(p.finish_time(v(5)), Some(5));
    }

    #[test]
    fn paper_example_order() {
        let p = paper_prefix();
        // x0 precedes everything
        for i in 1..7 {
            assert!(p.precedes(v(0), v(i)), "x0 ≺ var {i}");
            assert!(!p.precedes(v(i), v(0)));
        }
        // y1 precedes x1, x2 but not x3, x4, y2
        assert!(p.precedes(v(1), v(2)));
        assert!(p.precedes(v(1), v(3)));
        assert!(!p.precedes(v(1), v(5)));
        assert!(!p.precedes(v(1), v(4)));
        // same-block variables are incomparable
        assert!(!p.precedes(v(2), v(3)));
        assert!(!p.precedes(v(3), v(2)));
        // cross-subtree incomparability
        assert!(!p.precedes(v(2), v(5)));
        assert!(!p.precedes(v(5), v(2)));
    }

    #[test]
    fn paper_example_levels() {
        let p = paper_prefix();
        assert_eq!(p.level(v(0)), Some(1));
        assert_eq!(p.level(v(1)), Some(2));
        assert_eq!(p.level(v(2)), Some(3));
        assert_eq!(p.level(v(6)), Some(3));
        assert_eq!(p.prefix_level(), 3);
        assert_eq!(p.top_vars(), vec![v(0)]);
        assert!(!p.is_prenex());
    }

    #[test]
    fn prenex_prefix_is_total() {
        let p = Prefix::prenex(
            4,
            [
                (Exists, vec![v(0)]),
                (Forall, vec![v(1)]),
                (Exists, vec![v(2), v(3)]),
            ],
        )
        .unwrap();
        assert!(p.is_prenex());
        assert_eq!(p.prefix_level(), 3);
        assert!(p.precedes(v(0), v(1)));
        assert!(p.precedes(v(1), v(3)));
        assert!(p.precedes(v(0), v(3)));
        assert!(!p.precedes(v(2), v(3)));
        let blocks = p.linear_blocks();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], (Exists, vec![v(0)]));
    }

    #[test]
    fn consecutive_same_quantifier_blocks_merge() {
        let p = Prefix::prenex(
            3,
            [
                (Exists, vec![v(0)]),
                (Exists, vec![v(1)]),
                (Forall, vec![v(2)]),
            ],
        )
        .unwrap();
        assert_eq!(p.num_blocks(), 2);
        assert!(!p.precedes(v(0), v(1)));
        assert!(p.precedes(v(0), v(2)));
        assert!(p.precedes(v(1), v(2)));
    }

    #[test]
    fn empty_blocks_dissolve() {
        let mut b = PrefixBuilder::new(3);
        let root = b.add_root(Exists, [v(0)]).unwrap();
        let hole = b.add_child(root, Forall, Vec::new()).unwrap();
        b.add_child(hole, Exists, [v(1), v(2)]).unwrap();
        let p = b.finish().unwrap();
        // ∃x0 (∀·) ∃x1x2 collapses to a single ∃ block.
        assert_eq!(p.num_blocks(), 1);
        assert!(!p.precedes(v(0), v(1)));
    }

    #[test]
    fn separate_roots_stay_separate() {
        let mut b = PrefixBuilder::new(4);
        let r1 = b.add_root(Exists, [v(0)]).unwrap();
        b.add_child(r1, Forall, [v(1)]).unwrap();
        let r2 = b.add_root(Exists, [v(2)]).unwrap();
        b.add_child(r2, Forall, [v(3)]).unwrap();
        let p = b.finish().unwrap();
        assert_eq!(p.roots().len(), 2);
        assert!(p.precedes(v(0), v(1)));
        assert!(!p.precedes(v(0), v(3)));
        assert!(!p.precedes(v(2), v(1)));
        assert_eq!(p.top_vars(), vec![v(0), v(2)]);
    }

    #[test]
    fn duplicate_binding_rejected() {
        let mut b = PrefixBuilder::new(2);
        b.add_root(Exists, [v(0)]).unwrap();
        let err = b.add_root(Forall, [v(0)]).unwrap_err();
        assert_eq!(err, PrefixError::DuplicateBinding(v(0)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = PrefixBuilder::new(1);
        let err = b.add_root(Exists, [v(3)]).unwrap_err();
        assert_eq!(err, PrefixError::VarOutOfRange(v(3)));
    }

    #[test]
    fn without_var_merges_neighbours() {
        // ∃x0 ∀y1 ∃x2 ; removing y1 must merge the two ∃ blocks.
        let p = Prefix::prenex(
            3,
            [
                (Exists, vec![v(0)]),
                (Forall, vec![v(1)]),
                (Exists, vec![v(2)]),
            ],
        )
        .unwrap();
        let q = p.without_var(v(1));
        assert_eq!(q.num_blocks(), 1);
        assert_eq!(q.quant(v(1)), None);
        assert!(!q.precedes(v(0), v(2)));
        // removing a leaf variable keeps the rest intact
        let r = p.without_var(v(2));
        assert_eq!(r.num_blocks(), 2);
        assert!(r.precedes(v(0), v(1)));
    }

    #[test]
    fn display_sexpr() {
        let p = paper_prefix();
        assert_eq!(p.to_string(), "(e 1 (a 2 (e 3 4)) (a 5 (e 6 7)))");
    }

    #[test]
    fn unbound_vars_are_incomparable() {
        let p = Prefix::prenex(3, [(Exists, vec![v(0)]), (Forall, vec![v(1)])]).unwrap();
        assert_eq!(p.quant(v(2)), None);
        assert!(p.is_existential(v(2)));
        assert!(!p.precedes(v(0), v(2)));
        assert!(!p.precedes(v(2), v(0)));
        assert_eq!(p.level(v(2)), None);
    }

    #[test]
    fn same_quant_sibling_subtree_stays_unordered_from_forall() {
        // ∃x (∀y ϕ1 ∧ ∃z ϕ2): per §II, z ⊀ y and y ⊀ z (z is not in y's
        // scope and vice versa), and z has no alternation ancestor.
        let mut b = PrefixBuilder::new(3);
        let root = b.add_root(Exists, [v(0)]).unwrap();
        b.add_child(root, Forall, [v(1)]).unwrap();
        b.add_child(root, Exists, [v(2)]).unwrap();
        let p = b.finish().unwrap();
        assert!(!p.precedes(v(2), v(1)), "z ⊀ y");
        assert!(!p.precedes(v(1), v(2)), "y ⊀ z");
        assert!(p.precedes(v(0), v(1)));
        // z keeps prefix level 1: no quantifier alternation above it.
        assert_eq!(p.level(v(2)), Some(1));
        assert_eq!(p.num_blocks(), 3, "sibling ∃ child must not merge up");
    }

    #[test]
    fn same_quant_single_child_chain_merges() {
        // ∃x ∃z ∀y: the ∃ chain is a single block (exact: x, z unordered).
        let mut b = PrefixBuilder::new(3);
        let root = b.add_root(Exists, [v(0)]).unwrap();
        let z = b.add_child(root, Exists, [v(2)]).unwrap();
        b.add_child(z, Forall, [v(1)]).unwrap();
        let p = b.finish().unwrap();
        assert_eq!(p.num_blocks(), 2);
        assert!(!p.precedes(v(0), v(2)));
        assert!(p.precedes(v(0), v(1)));
        assert!(p.precedes(v(2), v(1)));
    }

    #[test]
    fn alternation_based_levels() {
        // ∃x (∀y (∃w)) ∧-sibling (∃z): levels x:1 y:2 w:3 z:1.
        let mut b = PrefixBuilder::new(4);
        let root = b.add_root(Exists, [v(0)]).unwrap();
        let y = b.add_child(root, Forall, [v(1)]).unwrap();
        b.add_child(y, Exists, [v(2)]).unwrap();
        b.add_child(root, Exists, [v(3)]).unwrap();
        let p = b.finish().unwrap();
        assert_eq!(p.level(v(0)), Some(1));
        assert_eq!(p.level(v(1)), Some(2));
        assert_eq!(p.level(v(2)), Some(3));
        assert_eq!(p.level(v(3)), Some(1));
        assert_eq!(p.prefix_level(), 3);
    }

    #[test]
    fn no_relations_across_roots_ever() {
        // Roots of any quantifier stay mutually unordered, including their
        // subtrees.
        let mut b = PrefixBuilder::new(4);
        let r1 = b.add_root(Forall, [v(0)]).unwrap();
        b.add_child(r1, Exists, [v(1)]).unwrap();
        let r2 = b.add_root(Exists, [v(2)]).unwrap();
        b.add_child(r2, Forall, [v(3)]).unwrap();
        let p = b.finish().unwrap();
        for a in 0..2 {
            for bb in 2..4 {
                assert!(!p.precedes(v(a), v(bb)), "{a} vs {bb}");
                assert!(!p.precedes(v(bb), v(a)), "{bb} vs {a}");
            }
        }
    }

    #[test]
    fn dfs_order_and_bound_vars() {
        let p = paper_prefix();
        let order: Vec<Var> = p.bound_vars().collect();
        assert_eq!(order, vec![v(0), v(1), v(2), v(3), v(4), v(5), v(6)]);
        assert_eq!(p.num_bound(), 7);
    }
}
