//! Reading and writing QBFs.
//!
//! Two text formats are supported:
//!
//! * [`qdimacs`] — the standard prenex QDIMACS format used by QBF
//!   evaluations;
//! * [`qtree`] — a small non-prenex extension of QDIMACS where the prefix
//!   line carries the quantifier forest as s-expressions, e.g.
//!   `t (e 1 (a 2 (e 3 4)) (a 5 (e 6 7)))`.

pub mod qdimacs;
pub mod qtree;

use std::fmt;

/// Error produced while parsing either format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQbfError {
    /// 1-based line number where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseQbfError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQbfError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseQbfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseQbfError {}
