//! The `qtree` format: QDIMACS with a non-prenex prefix line.
//!
//! The problem line uses the keyword `qtree`; the prefix is given on a
//! single `t` line as one or more s-expressions, one per root block:
//!
//! ```text
//! c the paper's QBF (1)
//! p qtree 7 8
//! t (e 1 (a 2 (e 3 4)) (a 5 (e 6 7)))
//! 1 3 4 0
//! 2 -3 4 0
//! 3 -4 0
//! -1 -3 4 0
//! 1 6 7 0
//! 5 -6 7 0
//! 6 -7 0
//! -1 -6 7 0
//! ```
//!
//! Clause lines are ordinary DIMACS. Unbound matrix variables are closed
//! existentially at the top, as in QDIMACS.

use crate::clause::Clause;
use crate::matrix::Matrix;
use crate::prefix::{BlockId, PrefixBuilder};
use crate::qbf::Qbf;
use crate::var::{Lit, Quantifier, Var};

use super::ParseQbfError;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open,
    Close,
    Quant(Quantifier),
    Num(usize),
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Token>, ParseQbfError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                toks.push(Token::Open);
                chars.next();
            }
            ')' => {
                toks.push(Token::Close);
                chars.next();
            }
            'e' => {
                toks.push(Token::Quant(Quantifier::Exists));
                chars.next();
            }
            'a' => {
                toks.push(Token::Quant(Quantifier::Forall));
                chars.next();
            }
            c if c.is_ascii_whitespace() => {
                chars.next();
            }
            c if c.is_ascii_digit() => {
                let mut n = 0usize;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n * 10 + digit as usize;
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Token::Num(n));
            }
            other => {
                return Err(ParseQbfError::new(
                    lineno,
                    format!("unexpected character `{other}` in prefix"),
                ))
            }
        }
    }
    Ok(toks)
}

/// Parses the `t …` prefix payload into the builder. Grammar:
/// `group := '(' quant num+ group* ')'`, with one or more top-level groups.
fn parse_groups(
    toks: &[Token],
    lineno: usize,
    builder: &mut PrefixBuilder,
    num_vars: usize,
) -> Result<(), ParseQbfError> {
    fn group(
        toks: &[Token],
        pos: &mut usize,
        lineno: usize,
        builder: &mut PrefixBuilder,
        parent: Option<BlockId>,
        num_vars: usize,
    ) -> Result<(), ParseQbfError> {
        let err = |msg: &str| ParseQbfError::new(lineno, msg.to_string());
        if toks.get(*pos) != Some(&Token::Open) {
            return Err(err("expected `(`"));
        }
        *pos += 1;
        let quant = match toks.get(*pos) {
            Some(Token::Quant(q)) => *q,
            _ => return Err(err("expected quantifier `e` or `a`")),
        };
        *pos += 1;
        let mut vars = Vec::new();
        while let Some(Token::Num(n)) = toks.get(*pos) {
            if *n == 0 || *n > num_vars {
                return Err(ParseQbfError::new(
                    lineno,
                    format!("variable {n} out of range"),
                ));
            }
            vars.push(Var::new(n - 1));
            *pos += 1;
        }
        if vars.is_empty() {
            return Err(err("block binds no variables"));
        }
        let id = match parent {
            None => builder.add_root(quant, vars),
            Some(p) => builder.add_child(p, quant, vars),
        }
        .map_err(|e| ParseQbfError::new(lineno, e.to_string()))?;
        while toks.get(*pos) == Some(&Token::Open) {
            group(toks, pos, lineno, builder, Some(id), num_vars)?;
        }
        if toks.get(*pos) != Some(&Token::Close) {
            return Err(err("expected `)`"));
        }
        *pos += 1;
        Ok(())
    }

    let mut pos = 0;
    while pos < toks.len() {
        group(toks, &mut pos, lineno, builder, None, num_vars)?;
    }
    Ok(())
}

/// Parses a `qtree` document.
///
/// # Errors
///
/// Returns a [`ParseQbfError`] for malformed headers, prefix syntax errors,
/// out-of-range or tautological clauses, or double-bound variables.
///
/// # Examples
///
/// ```
/// let src = "p qtree 4 4\nt (a 1 (e 2)) (a 3 (e 4))\n1 2 0\n-1 -2 0\n3 4 0\n-3 -4 0\n";
/// let q = qbf_core::io::qtree::parse(src)?;
/// assert!(!q.is_prenex());
/// assert!(qbf_core::semantics::eval(&q));
/// # Ok::<(), qbf_core::io::ParseQbfError>(())
/// ```
pub fn parse(input: &str) -> Result<Qbf, ParseQbfError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses: Option<usize> = None;
    let mut builder: Option<PrefixBuilder> = None;
    let mut saw_prefix = false;
    let mut prefix_line = 0usize;
    let mut clauses: Vec<Clause> = Vec::new();

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if num_vars.is_some() {
                return Err(ParseQbfError::new(lineno, "duplicate problem line"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("qtree") {
                return Err(ParseQbfError::new(
                    lineno,
                    "expected `p qtree <vars> <clauses>`",
                ));
            }
            let nv: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseQbfError::new(lineno, "bad variable count"))?;
            let nc: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseQbfError::new(lineno, "bad clause count"))?;
            num_vars = Some(nv);
            declared_clauses = Some(nc);
            builder = Some(PrefixBuilder::new(nv));
            continue;
        }
        let nv = num_vars
            .ok_or_else(|| ParseQbfError::new(lineno, "content before the problem line"))?;
        if let Some(rest) = line.strip_prefix("t ").or(if line == "t" { Some("") } else { None }) {
            if saw_prefix {
                return Err(ParseQbfError::new(lineno, "duplicate prefix line"));
            }
            if !clauses.is_empty() {
                return Err(ParseQbfError::new(lineno, "prefix line after clauses"));
            }
            saw_prefix = true;
            prefix_line = lineno;
            let toks = tokenize(rest, lineno)?;
            parse_groups(
                &toks,
                lineno,
                builder.as_mut().expect("builder created with problem line"),
                nv,
            )?;
            continue;
        }
        // Clause line.
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| ParseQbfError::new(lineno, format!("bad token `{tok}`")))?;
            if n == 0 {
                terminated = true;
                break;
            }
            if n.unsigned_abs() as usize > nv {
                return Err(ParseQbfError::new(
                    lineno,
                    format!("literal `{tok}` names an undeclared variable (1..={nv})"),
                ));
            }
            let l = Lit::from_dimacs(n);
            if lits.contains(&l) {
                return Err(ParseQbfError::new(
                    lineno,
                    format!("duplicate literal `{tok}` in clause"),
                ));
            }
            lits.push(l);
        }
        if !terminated {
            return Err(ParseQbfError::new(lineno, "clause not 0-terminated"));
        }
        clauses.push(Clause::new(lits).map_err(|e| ParseQbfError::new(lineno, e.to_string()))?);
    }

    let nv = num_vars
        .ok_or_else(|| ParseQbfError::new(input.lines().count(), "missing problem line"))?;
    if let Some(nc) = declared_clauses {
        if nc != clauses.len() {
            return Err(ParseQbfError::new(
                input.lines().count(),
                format!("declared {nc} clauses, found {}", clauses.len()),
            ));
        }
    }
    let prefix = builder
        .expect("builder created with problem line")
        .finish()
        .map_err(|e| ParseQbfError::new(prefix_line.max(1), e.to_string()))?;
    let matrix = Matrix::from_clauses(nv, clauses);
    Qbf::new_closing_free(prefix, matrix)
        .map_err(|e| ParseQbfError::new(input.lines().count().max(1), e.to_string()))
}

/// Writes any QBF (prenex or not) in `qtree` format.
pub fn write(qbf: &Qbf) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "p qtree {} {}\n",
        qbf.num_vars(),
        qbf.matrix().len()
    ));
    if qbf.prefix().num_bound() > 0 {
        out.push_str(&format!("t {}\n", qbf.prefix()));
    }
    for c in qbf.matrix().iter() {
        for l in c {
            out.push_str(&format!("{l} "));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::semantics;

    #[test]
    fn roundtrip_paper_example() {
        let q = samples::paper_example();
        let text = write(&q);
        let q2 = parse(&text).unwrap();
        assert_eq!(q, q2);
        assert!(!q2.is_prenex());
    }

    #[test]
    fn roundtrip_two_roots() {
        let q = samples::two_independent_games();
        let q2 = parse(&write(&q)).unwrap();
        assert_eq!(q, q2);
        assert!(semantics::eval(&q2));
    }

    #[test]
    fn parse_doc_example() {
        let src = "p qtree 4 4\nt (a 1 (e 2)) (a 3 (e 4))\n1 2 0\n-1 -2 0\n3 4 0\n-3 -4 0\n";
        let q = parse(src).unwrap();
        assert_eq!(q.prefix().roots().len(), 2);
        assert!(semantics::eval(&q));
    }

    #[test]
    fn error_cases() {
        assert!(parse("p qtree 2 1\nt (e 1\n1 0\n").is_err()); // missing )
        assert!(parse("p qtree 2 1\nt (x 1)\n1 0\n").is_err()); // bad quant
        assert!(parse("p qtree 2 1\nt (e 3)\n1 0\n").is_err()); // out of range
        assert!(parse("p qtree 2 1\nt (e 1) (a 1)\n1 0\n").is_err()); // double bind
        assert!(parse("p qtree 2 1\nt (e)\n1 0\n").is_err()); // empty block
        assert!(parse("p qtree 2 1\n1 0\nt (e 1)\n").is_err()); // prefix after clause
        assert!(parse("p cnf 2 1\n1 0\n").is_err()); // wrong keyword
    }

    /// Rejections name the 1-based line and quote the offending token.
    #[test]
    fn errors_carry_line_and_token() {
        let err = parse("p qtree 3 1\nt (e 1 2)\n1 2 2 0\n").unwrap_err();
        assert_eq!(err.line, 3, "duplicate literal: {err}");
        assert!(err.to_string().contains("duplicate literal `2`"), "{err}");

        let err = parse("p qtree 3 1\nt (e 1)\n1 4 0\n").unwrap_err();
        assert_eq!(err.line, 3, "undeclared variable: {err}");
        assert!(err.to_string().contains("`4`"), "{err}");

        let err = parse("p qtree 3 1\nt (e 1) (a)\n1 0\n").unwrap_err();
        assert_eq!(err.line, 2, "empty block: {err}");
        assert!(err.to_string().contains("binds no variables"), "{err}");

        let err = parse("p qtree 2 1\nt (e 1) (a 1)\n1 0\n").unwrap_err();
        assert_eq!(err.line, 2, "double binding: {err}");
    }

    #[test]
    fn free_vars_closed() {
        let q = parse("p qtree 2 1\nt (a 1)\n1 2 0\n").unwrap();
        assert!(q.prefix().precedes(crate::var::Var::new(1), crate::var::Var::new(0)));
        assert!(semantics::eval(&q)); // x free/existential top: pick x=true? clause (y ∨ x): x:=true wins
    }
}
