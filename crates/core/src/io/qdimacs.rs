//! The prenex QDIMACS format.
//!
//! ```text
//! c a comment
//! p cnf 4 2
//! a 1 2 0
//! e 3 4 0
//! 1 3 0
//! -2 -4 0
//! ```
//!
//! Variables left unquantified are bound existentially at the outermost
//! level (§II point 2).

use crate::clause::Clause;
use crate::matrix::Matrix;
use crate::prefix::Prefix;
use crate::qbf::Qbf;
use crate::var::{Lit, Quantifier, Var};

use super::ParseQbfError;

/// Parses a QDIMACS document.
///
/// # Errors
///
/// Returns a [`ParseQbfError`] describing the offending line for malformed
/// headers, literals out of range, tautological clauses, quantifier lines
/// after the first clause, or variables bound twice.
///
/// # Examples
///
/// ```
/// let q = qbf_core::io::qdimacs::parse("p cnf 2 2\na 1 0\ne 2 0\n1 2 0\n-1 -2 0\n")?;
/// assert!(q.is_prenex());
/// assert!(qbf_core::semantics::eval(&q));
/// # Ok::<(), qbf_core::io::ParseQbfError>(())
/// ```
pub fn parse(input: &str) -> Result<Qbf, ParseQbfError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses: Option<usize> = None;
    let mut blocks: Vec<(Quantifier, Vec<Var>)> = Vec::new();
    let mut clauses: Vec<Clause> = Vec::new();
    let mut in_matrix = false;
    let mut bound: Vec<bool> = Vec::new();
    let mut last_prefix_line = 0usize;

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if num_vars.is_some() {
                return Err(ParseQbfError::new(lineno, "duplicate problem line"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(ParseQbfError::new(lineno, "expected `p cnf <vars> <clauses>`"));
            }
            let nv: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseQbfError::new(lineno, "bad variable count"))?;
            let nc: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseQbfError::new(lineno, "bad clause count"))?;
            num_vars = Some(nv);
            declared_clauses = Some(nc);
            bound = vec![false; nv];
            continue;
        }
        let nv = num_vars
            .ok_or_else(|| ParseQbfError::new(lineno, "content before the problem line"))?;
        let first = line.split_whitespace().next().unwrap_or_default();
        if first == "e" || first == "a" {
            if in_matrix {
                return Err(ParseQbfError::new(
                    lineno,
                    "quantifier line after the first clause",
                ));
            }
            let quant = if first == "e" {
                Quantifier::Exists
            } else {
                Quantifier::Forall
            };
            let mut vars = Vec::new();
            let mut terminated = false;
            for tok in line.split_whitespace().skip(1) {
                let n: i64 = tok
                    .parse()
                    .map_err(|_| ParseQbfError::new(lineno, format!("bad token `{tok}`")))?;
                if n == 0 {
                    terminated = true;
                    break;
                }
                if n < 0 {
                    return Err(ParseQbfError::new(lineno, "negative variable in prefix"));
                }
                let v = n as usize;
                if v > nv {
                    return Err(ParseQbfError::new(
                        lineno,
                        format!("variable `{tok}` out of range (1..={nv})"),
                    ));
                }
                if std::mem::replace(&mut bound[v - 1], true) {
                    return Err(ParseQbfError::new(
                        lineno,
                        format!("variable `{tok}` bound twice"),
                    ));
                }
                vars.push(Var::new(v - 1));
            }
            if !terminated {
                return Err(ParseQbfError::new(lineno, "quantifier line not 0-terminated"));
            }
            if vars.is_empty() {
                return Err(ParseQbfError::new(
                    lineno,
                    format!("empty quantifier block `{line}`"),
                ));
            }
            last_prefix_line = lineno;
            blocks.push((quant, vars));
            continue;
        }
        // Clause line.
        in_matrix = true;
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| ParseQbfError::new(lineno, format!("bad token `{tok}`")))?;
            if n == 0 {
                terminated = true;
                break;
            }
            if n.unsigned_abs() as usize > nv {
                return Err(ParseQbfError::new(
                    lineno,
                    format!("literal `{tok}` names an undeclared variable (1..={nv})"),
                ));
            }
            let l = Lit::from_dimacs(n);
            if lits.contains(&l) {
                return Err(ParseQbfError::new(
                    lineno,
                    format!("duplicate literal `{tok}` in clause"),
                ));
            }
            lits.push(l);
        }
        if !terminated {
            return Err(ParseQbfError::new(lineno, "clause not 0-terminated"));
        }
        let clause = Clause::new(lits)
            .map_err(|e| ParseQbfError::new(lineno, e.to_string()))?;
        clauses.push(clause);
    }

    let nv = num_vars.ok_or_else(|| ParseQbfError::new(input.lines().count(), "missing problem line"))?;
    if let Some(nc) = declared_clauses {
        if nc != clauses.len() {
            return Err(ParseQbfError::new(
                input.lines().count(),
                format!("declared {nc} clauses, found {}", clauses.len()),
            ));
        }
    }
    let prefix = Prefix::prenex(nv, blocks)
        .map_err(|e| ParseQbfError::new(last_prefix_line.max(1), e.to_string()))?;
    let matrix = Matrix::from_clauses(nv, clauses);
    Qbf::new_closing_free(prefix, matrix)
        .map_err(|e| ParseQbfError::new(input.lines().count().max(1), e.to_string()))
}

/// Writes a prenex QBF in QDIMACS format.
///
/// # Panics
///
/// Panics if the prefix is not prenex; use
/// [`crate::io::qtree::write`] for non-prenex QBFs, or prenex the formula
/// first.
pub fn write(qbf: &Qbf) -> String {
    assert!(qbf.is_prenex(), "qdimacs::write requires a prenex QBF");
    let mut out = String::new();
    out.push_str(&format!(
        "p cnf {} {}\n",
        qbf.num_vars(),
        qbf.matrix().len()
    ));
    if qbf.prefix().num_bound() > 0 {
        for (quant, vars) in qbf.prefix().linear_blocks() {
            out.push_str(&quant.to_string());
            for v in vars {
                out.push_str(&format!(" {v}"));
            }
            out.push_str(" 0\n");
        }
    }
    for c in qbf.matrix().iter() {
        for l in c {
            out.push_str(&format!("{l} "));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics;
    use crate::var::Quantifier::*;

    #[test]
    fn parse_simple() {
        let q = parse("c hi\np cnf 3 2\ne 1 0\na 2 0\ne 3 0\n1 -2 3 0\n-1 2 0\n").unwrap();
        assert!(q.is_prenex());
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.matrix().len(), 2);
        assert_eq!(q.prefix().quant(Var::new(1)), Some(Forall));
    }

    #[test]
    fn roundtrip() {
        let src = "p cnf 3 2\ne 1 0\na 2 0\ne 3 0\n1 -2 3 0\n-1 2 0\n";
        let q = parse(src).unwrap();
        let written = write(&q);
        let q2 = parse(&written).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn free_vars_bound_existentially() {
        let q = parse("p cnf 2 1\na 1 0\n1 2 0\n").unwrap();
        assert_eq!(q.prefix().quant(Var::new(1)), Some(Exists));
        assert_eq!(q.prefix().level(Var::new(1)), Some(1));
        assert!(q.prefix().precedes(Var::new(1), Var::new(0)));
    }

    #[test]
    fn value_agrees_with_semantics() {
        let q = parse("p cnf 2 2\na 1 0\ne 2 0\n1 2 0\n-1 -2 0\n").unwrap();
        assert!(semantics::eval(&q));
        let q = parse("p cnf 2 2\ne 1 0\na 2 0\n1 2 0\n-1 -2 0\n").unwrap();
        assert!(!semantics::eval(&q));
    }

    #[test]
    fn error_cases() {
        assert!(parse("e 1 0\n").is_err()); // content before p line
        assert!(parse("p cnf 1 1\n1 1\n").is_err()); // not 0-terminated
        assert!(parse("p cnf 1 1\n1 -1 0\n").is_err()); // tautology
        assert!(parse("p cnf 1 2\n1 0\n").is_err()); // clause count mismatch
        assert!(parse("p cnf 1 1\n1 0\ne 1 0\n").is_err()); // quantifier after clause
        assert!(parse("p cnf 1 1\n2 0\n").is_err()); // out of range
        let err = parse("p cnf 1 1\nxyz 0\n").unwrap_err();
        assert!(err.to_string().contains("bad token"));
    }

    /// Every rejection names the 1-based line and quotes the offending
    /// token, so a user can fix the document without bisecting it.
    #[test]
    fn errors_carry_line_and_token() {
        let err = parse("p cnf 3 1\ne 1 2 0\n1 2 2 0\n").unwrap_err();
        assert_eq!(err.line, 3, "duplicate literal: {err}");
        assert!(err.to_string().contains("duplicate literal `2`"), "{err}");

        let err = parse("p cnf 3 1\ne 1 0\n1 4 0\n").unwrap_err();
        assert_eq!(err.line, 3, "undeclared variable: {err}");
        assert!(err.to_string().contains("`4`"), "{err}");
        assert!(err.to_string().contains("undeclared"), "{err}");

        let err = parse("p cnf 3 1\ne 1 0\na 0\ne 2 0\n1 2 0\n").unwrap_err();
        assert_eq!(err.line, 3, "empty quantifier block: {err}");
        assert!(err.to_string().contains("empty quantifier block"), "{err}");

        let err = parse("p cnf 3 1\ne 1 2 0\na 2 0\n1 2 0\n").unwrap_err();
        assert_eq!(err.line, 3, "double binding: {err}");
        assert!(err.to_string().contains("`2` bound twice"), "{err}");

        let err = parse("p cnf 2 1\ne 1 3 0\n1 0\n").unwrap_err();
        assert_eq!(err.line, 2, "prefix out of range: {err}");
        assert!(err.to_string().contains("`3` out of range"), "{err}");
    }

    #[test]
    fn consecutive_blocks_merge() {
        let q = parse("p cnf 2 1\ne 1 0\ne 2 0\n1 2 0\n").unwrap();
        assert_eq!(q.prefix().num_blocks(), 1);
    }
}
