//! Q-resolution / Q-consensus **proof logging** for the search engine.
//!
//! A run of the iterative solver with a [`ProofLog`] attached emits a
//! line-oriented certificate: every learned clause is derived by a chain
//! of Q-resolution steps (antecedents are earlier proof lines) and
//! ∀-reductions, every learned cube by a Q-consensus chain from an
//! *initial cube* (an implicant of the matrix), and the run ends with the
//! empty clause (FALSE) or the empty cube (TRUE). Under a tree prefix
//! every reduction is justified by the partial order `≺` alone, which
//! makes the paper's central claim — learning stays sound when the prenex
//! total order is relaxed to the quantifier tree — machine-checkable: the
//! independent verifier in the `qbf-proof` crate (`qbfcheck`) replays the
//! chains with its own `≺` test.
//!
//! # Certificate format (`qrp`, version 1)
//!
//! ASCII, one record per line, ids strictly increasing. The original
//! clauses implicitly occupy ids `1..=num_clauses` in matrix order.
//!
//! ```text
//! p qrp 1 <num_vars> <num_clauses>
//! h <prefix-fnv64-hex> <matrix-fnv64-hex>
//! r <id> <ant1> <ant2> <pivot>        resolution: pivot ∈ ant1, ¬pivot ∈ ant2;
//!                                     the new line is ant1∖{pivot} ∪ ant2∖{¬pivot}
//! u <id> <ant> <removed…> 0           reduction: removes the listed literals
//! i <id> <lits…> 0                    initial cube (implicant of the matrix)
//! l <id> <ant> <lits…> 0              learned constraint (set-equal copy of ant)
//! d <id>                              the solver forgot this learned constraint
//! c 0 <id>   |   c 1 <id>             conclusion: <id> is the empty clause / cube
//! ```
//!
//! Literals are DIMACS integers. A `r`/`u` line inherits its kind (clause
//! or cube) from its antecedents; `i` lines are cubes. The verifier
//! accepts *long-distance* resolvents containing a complementary pair of
//! irrelevant-quantifier literals `{x, ¬x}` only when `pivot ≺ x` (the
//! Balabanov–Jiang side condition transplanted to the tree order);
//! relevant-quantifier tautologies are always rejected.
//!
//! # Zero cost when disabled
//!
//! [`Solver`](crate::solver::Solver) takes a [`ProofSink`] type parameter
//! defaulting to [`NoProof`], whose `ENABLED = false` constant compiles
//! every hook out — the same monomorphization pattern as
//! [`SearchObserver`](crate::observe::SearchObserver). The bit-identical
//! `Stats` guard lives in `tests/observe_integration.rs`.
//!
//! # Determinism
//!
//! The engine is deterministic, every hook fires at a deterministic point
//! and the writer appends to an in-memory buffer, so the emitted bytes are
//! identical across runs (asserted by the CI proof gate).

use std::collections::HashMap;

use crate::prefix::Prefix;
use crate::qbf::Qbf;
use crate::var::Lit;

/// The proof hooks called by the search engine.
///
/// All methods have empty defaults; a sink with `ENABLED = false` costs
/// nothing (every call site is additionally guarded by
/// `if P::ENABLED`). The hooks mirror the engine's analysis verbatim: a
/// *chain* is opened at each conflict/solution, mutated in lockstep with
/// the engine's working constraint, snapshotted by `chain_learn`, and
/// closed either implicitly (search continues) or by `conclude`.
pub trait ProofSink: std::fmt::Debug {
    /// Whether this sink records anything. `false` compiles all hooks out.
    const ENABLED: bool;

    /// Called once before the search starts; writes the header.
    fn begin(&mut self, _qbf: &Qbf) {}
    /// Registers one original matrix clause, in matrix order.
    fn on_original(&mut self, _token: u64) {}

    /// Opens a chain from an existing constraint (original or learned).
    fn chain_start(&mut self, _token: u64, _lits: &[Lit], _cube: bool) {}
    /// Opens a cube chain from an implicant of the matrix.
    fn chain_init_cube(&mut self, _lits: &[Lit]) {}
    /// Resolves the working constraint with constraint `token` on `pivot`
    /// (`pivot` is in the working constraint, `¬pivot` in the antecedent).
    fn chain_resolve(&mut self, _prefix: &Prefix, _token: u64, _ant: &[Lit], _pivot: Lit) {}
    /// Maximal ∀-reduction (∃-reduction for cubes) of the working
    /// constraint under `≺`.
    fn chain_reduce(&mut self, _prefix: &Prefix) {}
    /// Removes exactly `lit` from the working constraint (a single
    /// reduction step the engine has already proven legal).
    fn chain_remove(&mut self, _prefix: &Prefix, _lit: Lit) {}
    /// The engine stored the working constraint as learned constraint
    /// `token` with literals `lits` (set-equal to the working constraint).
    fn chain_learn(&mut self, _token: u64, _lits: &[Lit]) {}
    /// A frame holding `assigned` is being popped during a terminal walk:
    /// combine the working constraint with the frame's shadow refutation
    /// (resolution or replacement), then reduce.
    fn chain_absorb_frame(&mut self, _prefix: &Prefix, _assigned: Lit, _existential: bool) {}
    /// Emits the conclusion record; the working constraint must be empty.
    fn conclude(&mut self, _value: bool) {}

    /// A plain (unflipped) decision frame was pushed.
    fn frame_push(&mut self) {}
    /// A flipped decision frame was pushed whose first branch is refuted
    /// by the current working constraint (chronological flip).
    fn frame_push_working(&mut self) {}
    /// A flipped decision frame was pushed whose first branch is refuted
    /// by constraint `token` (the engine's pseudo-reason).
    fn frame_push_token(&mut self, _token: u64, _lits: &[Lit], _cube: bool) {}
    /// The topmost decision frame was popped.
    fn frame_pop(&mut self) {}

    /// The solver forgot a learned constraint (database reduction).
    fn on_delete(&mut self, _token: u64) {}
    /// Arena compaction renamed constraint tokens: `(old, new)` pairs
    /// covering every live constraint.
    fn remap_tokens(&mut self, _pairs: &[(u64, u64)]) {}

    /// Whether the working constraint currently contains `lit`.
    fn working_contains(&self, _lit: Lit) -> bool {
        false
    }
    /// `(proof_steps, proof_bytes, proof_dels)` so far.
    fn proof_stats(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }
}

/// The zero-cost disabled sink (the default for `Solver`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProof;

impl ProofSink for NoProof {
    const ENABLED: bool = false;
}

impl<P: ProofSink> ProofSink for &mut P {
    const ENABLED: bool = P::ENABLED;
    #[inline]
    fn begin(&mut self, qbf: &Qbf) {
        (**self).begin(qbf);
    }
    #[inline]
    fn on_original(&mut self, token: u64) {
        (**self).on_original(token);
    }
    #[inline]
    fn chain_start(&mut self, token: u64, lits: &[Lit], cube: bool) {
        (**self).chain_start(token, lits, cube);
    }
    #[inline]
    fn chain_init_cube(&mut self, lits: &[Lit]) {
        (**self).chain_init_cube(lits);
    }
    #[inline]
    fn chain_resolve(&mut self, prefix: &Prefix, token: u64, ant: &[Lit], pivot: Lit) {
        (**self).chain_resolve(prefix, token, ant, pivot);
    }
    #[inline]
    fn chain_reduce(&mut self, prefix: &Prefix) {
        (**self).chain_reduce(prefix);
    }
    #[inline]
    fn chain_remove(&mut self, prefix: &Prefix, lit: Lit) {
        (**self).chain_remove(prefix, lit);
    }
    #[inline]
    fn chain_learn(&mut self, token: u64, lits: &[Lit]) {
        (**self).chain_learn(token, lits);
    }
    #[inline]
    fn chain_absorb_frame(&mut self, prefix: &Prefix, assigned: Lit, existential: bool) {
        (**self).chain_absorb_frame(prefix, assigned, existential);
    }
    #[inline]
    fn conclude(&mut self, value: bool) {
        (**self).conclude(value);
    }
    #[inline]
    fn frame_push(&mut self) {
        (**self).frame_push();
    }
    #[inline]
    fn frame_push_working(&mut self) {
        (**self).frame_push_working();
    }
    #[inline]
    fn frame_push_token(&mut self, token: u64, lits: &[Lit], cube: bool) {
        (**self).frame_push_token(token, lits, cube);
    }
    #[inline]
    fn frame_pop(&mut self) {
        (**self).frame_pop();
    }
    #[inline]
    fn on_delete(&mut self, token: u64) {
        (**self).on_delete(token);
    }
    #[inline]
    fn remap_tokens(&mut self, pairs: &[(u64, u64)]) {
        (**self).remap_tokens(pairs);
    }
    #[inline]
    fn working_contains(&self, lit: Lit) -> bool {
        (**self).working_contains(lit)
    }
    #[inline]
    fn proof_stats(&self) -> (u64, u64, u64) {
        (**self).proof_stats()
    }
}

/// A shadow refutation attached to a flipped decision frame: a derived
/// proof line refuting the frame's *first* branch, kept as `(line id,
/// literal snapshot)` so it stays usable after database reduction or
/// compaction (proof lines are never invalidated).
#[derive(Debug, Clone)]
struct Shadow {
    line: u64,
    lits: Vec<Lit>,
    cube: bool,
}

/// The concrete proof writer: accumulates the certificate in memory.
///
/// Byte-deterministic: identical runs produce identical bytes. Retrieve
/// the certificate with [`ProofLog::as_text`] after `solve()` (pass the
/// log as `&mut` to keep ownership).
#[derive(Debug, Default)]
pub struct ProofLog {
    buf: String,
    next_id: u64,
    /// Live constraint token (engine `ConstraintRef` bits) → proof line.
    token_line: HashMap<u64, u64>,
    working: Vec<Lit>,
    working_line: u64,
    working_cube: bool,
    shadows: Vec<Option<Shadow>>,
    steps: u64,
    dels: u64,
    concluded: bool,
}

impl ProofLog {
    /// Creates an empty proof log.
    pub fn new() -> Self {
        ProofLog::default()
    }

    /// The certificate text emitted so far.
    pub fn as_text(&self) -> &str {
        &self.buf
    }

    /// Whether a conclusion record has been written (a run that exhausts
    /// its budget leaves the proof unconcluded).
    pub fn is_concluded(&self) -> bool {
        self.concluded
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn line_of(&self, token: u64) -> u64 {
        *self
            .token_line
            .get(&token)
            .expect("proof: constraint token has no proof line")
    }

    /// `resolvent = working ∖ {pivot} ∪ ant ∖ {¬pivot}` — exactly the
    /// verifier's rule, merged (long-distance) pairs included.
    fn resolve_with(&mut self, line: u64, ant: &[Lit], pivot: Lit) {
        debug_assert!(self.working.contains(&pivot), "pivot not in working");
        debug_assert!(ant.contains(&!pivot), "¬pivot not in antecedent");
        self.working.retain(|&l| l != pivot);
        for &x in ant {
            if x == !pivot {
                continue;
            }
            if !self.working.contains(&x) {
                self.working.push(x);
            }
        }
        let id = self.fresh_id();
        let w = self.working_line;
        self.buf
            .push_str(&format!("r {id} {w} {line} {}\n", pivot.to_dimacs()));
        self.working_line = id;
        self.steps += 1;
    }

    /// Removes `removed` from the working constraint and emits a `u`
    /// record (caller guarantees each removal is a legal reduction).
    fn emit_reduction(&mut self, removed: &[Lit]) {
        if removed.is_empty() {
            return;
        }
        self.working.retain(|l| !removed.contains(l));
        let id = self.fresh_id();
        let w = self.working_line;
        let mut rec = format!("u {id} {w}");
        for &l in removed {
            rec.push_str(&format!(" {}", l.to_dimacs()));
        }
        rec.push_str(" 0\n");
        self.buf.push_str(&rec);
        self.working_line = id;
        self.steps += 1;
    }

    /// The literals a maximal reduction removes: irrelevant-quantifier
    /// literals preceding no relevant-quantifier literal of the working
    /// constraint (Lemma 3 and its dual, phrased with `≺`).
    fn reducible(&self, prefix: &Prefix) -> Vec<Lit> {
        let relevant = |l: &Lit| prefix.is_existential(l.var()) != self.working_cube;
        let anchors: Vec<_> = self.working.iter().filter(|l| relevant(l)).map(|l| l.var()).collect();
        self.working
            .iter()
            .copied()
            .filter(|l| !relevant(l) && !anchors.iter().any(|&a| prefix.precedes(l.var(), a)))
            .collect()
    }
}

impl ProofSink for ProofLog {
    const ENABLED: bool = true;

    fn begin(&mut self, qbf: &Qbf) {
        let (ph, mh) = instance_fingerprints(qbf);
        self.buf.push_str(&format!(
            "p qrp 1 {} {}\nh {ph:016x} {mh:016x}\n",
            qbf.num_vars(),
            qbf.matrix().len()
        ));
    }

    fn on_original(&mut self, token: u64) {
        let id = self.fresh_id();
        self.token_line.insert(token, id);
    }

    fn chain_start(&mut self, token: u64, lits: &[Lit], cube: bool) {
        self.working = lits.to_vec();
        self.working_line = self.line_of(token);
        self.working_cube = cube;
    }

    fn chain_init_cube(&mut self, lits: &[Lit]) {
        self.working = lits.to_vec();
        self.working_cube = true;
        let id = self.fresh_id();
        let mut rec = format!("i {id}");
        for &l in lits {
            rec.push_str(&format!(" {}", l.to_dimacs()));
        }
        rec.push_str(" 0\n");
        self.buf.push_str(&rec);
        self.working_line = id;
        self.steps += 1;
    }

    fn chain_resolve(&mut self, _prefix: &Prefix, token: u64, ant: &[Lit], pivot: Lit) {
        let line = self.line_of(token);
        self.resolve_with(line, ant, pivot);
    }

    fn chain_reduce(&mut self, prefix: &Prefix) {
        let removed = self.reducible(prefix);
        self.emit_reduction(&removed);
    }

    fn chain_remove(&mut self, _prefix: &Prefix, lit: Lit) {
        if self.working.contains(&lit) {
            self.emit_reduction(&[lit]);
        }
    }

    fn chain_learn(&mut self, token: u64, lits: &[Lit]) {
        debug_assert_eq!(
            {
                let mut a: Vec<i64> = self.working.iter().map(|l| l.to_dimacs()).collect();
                a.sort_unstable();
                a
            },
            {
                let mut b: Vec<i64> = lits.iter().map(|l| l.to_dimacs()).collect();
                b.sort_unstable();
                b
            },
            "proof: learned constraint diverged from the logged chain"
        );
        let id = self.fresh_id();
        let w = self.working_line;
        let mut rec = format!("l {id} {w}");
        for &l in lits {
            rec.push_str(&format!(" {}", l.to_dimacs()));
        }
        rec.push_str(" 0\n");
        self.buf.push_str(&rec);
        self.token_line.insert(token, id);
        self.working_line = id;
        self.steps += 1;
    }

    fn chain_absorb_frame(&mut self, prefix: &Prefix, assigned: Lit, existential: bool) {
        // Only a decision of the working constraint's *relevant* kind can
        // carry a usable shadow (existential flips are refuted by clauses,
        // universal flips by cubes); irrelevant decisions are handled by
        // the maximal reduction below.
        let relevant = existential != self.working_cube;
        if relevant {
            // For clauses the working constraint depends on the decision
            // through ¬assigned (falsified); for cubes through assigned.
            let dep = if self.working_cube { assigned } else { !assigned };
            if self.working.contains(&dep) {
                if let Some(Some(shadow)) = self.shadows.last().cloned() {
                    if shadow.cube == self.working_cube {
                        if shadow.lits.contains(&!dep) {
                            self.resolve_with(shadow.line, &shadow.lits, dep);
                        } else {
                            // The first-branch refutation is independent of
                            // the decision: it refutes the whole node.
                            self.working = shadow.lits.clone();
                            self.working_line = shadow.line;
                        }
                    }
                }
            }
        }
        let removed = self.reducible(prefix);
        self.emit_reduction(&removed);
    }

    fn conclude(&mut self, value: bool) {
        debug_assert!(
            self.working.is_empty(),
            "proof: conclusion with a non-empty working constraint: {:?}",
            self.working
        );
        let w = self.working_line;
        self.buf
            .push_str(&format!("c {} {w}\n", if value { 1 } else { 0 }));
        self.concluded = true;
    }

    fn frame_push(&mut self) {
        self.shadows.push(None);
    }

    fn frame_push_working(&mut self) {
        self.shadows.push(Some(Shadow {
            line: self.working_line,
            lits: self.working.clone(),
            cube: self.working_cube,
        }));
    }

    fn frame_push_token(&mut self, token: u64, lits: &[Lit], cube: bool) {
        self.shadows.push(Some(Shadow {
            line: self.line_of(token),
            lits: lits.to_vec(),
            cube,
        }));
    }

    fn frame_pop(&mut self) {
        self.shadows.pop();
    }

    fn on_delete(&mut self, token: u64) {
        if let Some(line) = self.token_line.remove(&token) {
            // A line still referenced by a live shadow (or by the parked
            // working chain) may yet appear as an antecedent; keep it
            // alive in the certificate — the verifier rejects any use of
            // a deleted line.
            let pinned = line == self.working_line
                || self.shadows.iter().flatten().any(|s| s.line == line);
            if !pinned {
                self.buf.push_str(&format!("d {line}\n"));
                self.dels += 1;
            }
        }
    }

    fn remap_tokens(&mut self, pairs: &[(u64, u64)]) {
        let mut remapped = HashMap::with_capacity(pairs.len());
        for &(old, new) in pairs {
            if let Some(line) = self.token_line.get(&old) {
                remapped.insert(new, *line);
            }
        }
        self.token_line = remapped;
    }

    fn working_contains(&self, lit: Lit) -> bool {
        self.working.contains(&lit)
    }

    fn proof_stats(&self) -> (u64, u64, u64) {
        (self.steps, self.buf.len() as u64, self.dels)
    }
}

/// FNV-1a 64-bit fingerprints binding a certificate to its instance:
/// `(prefix hash, matrix hash)`.
///
/// Canonical serialization (the verifier recomputes this independently):
/// the prefix forest is walked root-to-leaf in declaration order, each
/// block emitting `(`, its quantifier letter (`a`/`e`), its variables as
/// 1-based decimal numbers each followed by a space, its children, and
/// `)`; the matrix emits each clause in order as sorted DIMACS literals
/// followed by `0\n`.
pub fn instance_fingerprints(qbf: &Qbf) -> (u64, u64) {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    fn fnv(acc: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *acc ^= b as u64;
            *acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let prefix = qbf.prefix();
    let mut ph = OFFSET;
    let mut stack: Vec<(crate::prefix::BlockId, bool)> =
        prefix.roots().iter().rev().map(|&b| (b, false)).collect();
    while let Some((b, closing)) = stack.pop() {
        if closing {
            fnv(&mut ph, b")");
            continue;
        }
        fnv(&mut ph, b"(");
        fnv(
            &mut ph,
            if prefix.block_quant(b).is_exists() { b"e" } else { b"a" },
        );
        for &v in prefix.block_vars(b) {
            fnv(&mut ph, (v.index() + 1).to_string().as_bytes());
            fnv(&mut ph, b" ");
        }
        stack.push((b, true));
        for &c in prefix.block_children(b).iter().rev() {
            stack.push((c, false));
        }
    }
    let mut mh = OFFSET;
    for c in qbf.matrix().iter() {
        for &l in c.lits() {
            fnv(&mut mh, l.to_dimacs().to_string().as_bytes());
            fnv(&mut mh, b" ");
        }
        fnv(&mut mh, b"0\n");
    }
    (ph, mh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn fingerprints_distinguish_instances() {
        let a = instance_fingerprints(&samples::paper_example());
        let b = instance_fingerprints(&samples::sat_instance());
        assert_ne!(a, b);
        assert_eq!(a, instance_fingerprints(&samples::paper_example()));
    }

    #[test]
    fn proof_log_concludes_on_samples() {
        use crate::solver::{Solver, SolverConfig};
        let cases: [(Qbf, bool); 6] = [
            (samples::paper_example(), false),
            (samples::forall_exists_xor(), true),
            (samples::exists_forall_xor(), false),
            (samples::two_independent_games(), true),
            (samples::sat_instance(), true),
            (samples::unsat_instance(), false),
        ];
        for (qbf, expected) in &cases {
            for config in [SolverConfig::partial_order(), SolverConfig::total_order()] {
                let mut log = ProofLog::new();
                let outcome = Solver::with_proof(qbf, config, &mut log).solve();
                assert_eq!(outcome.value(), Some(*expected));
                assert!(log.is_concluded(), "unconcluded proof:\n{}", log.as_text());
                assert!(outcome.stats.proof_bytes > 0);
                let last = log.as_text().lines().last().unwrap();
                assert!(
                    last.starts_with(if *expected { "c 1 " } else { "c 0 " }),
                    "wrong conclusion: {last}"
                );
            }
        }
    }

    #[test]
    fn proof_log_is_deterministic() {
        use crate::solver::{Solver, SolverConfig};
        let qbf = samples::random_qbf(7, 12, 24);
        let run = |qbf: &Qbf| {
            let mut log = ProofLog::new();
            Solver::with_proof(qbf, SolverConfig::partial_order(), &mut log).solve();
            log.buf
        };
        assert_eq!(run(&qbf), run(&qbf));
    }

    #[test]
    fn noproof_reports_disabled() {
        const { assert!(!NoProof::ENABLED) };
        const { assert!(!<&mut NoProof as ProofSink>::ENABLED) };
    }
}
