//! Value-preserving preprocessing of QBFs.
//!
//! Applies, to fixpoint, the simplifications that are sound on arbitrary
//! (non-prenex) QBFs:
//!
//! * **universal reduction** of every clause (Lemma 3): a universal literal
//!   whose scope contains no existential literal of the clause is dropped;
//! * **unit assignment** (Lemma 5): a clause reduced to a single
//!   existential literal forces it;
//! * **contradictory clause detection** (Lemma 4): a clause left without
//!   existential literals makes the formula false;
//! * **monotone (pure) literal fixing** (§III);
//! * **subsumption**: a clause that is a superset of another is dropped
//!   (propositionally sound, hence QBF-sound for CNF matrices).
//!
//! The result is a simplified [`Qbf`] with the same value, plus a
//! [`Report`] of what fired. Useful in front of either solver and as an
//! ingredient of the §VII-D pipeline.

use crate::clause::Clause;
use crate::matrix::Matrix;
use crate::qbf::Qbf;
use crate::var::{Lit, Var};

/// What the preprocessor did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Literals assigned as units.
    pub units: usize,
    /// Literals assigned as monotone.
    pub pures: usize,
    /// Universal literals removed by reduction.
    pub reduced_literals: usize,
    /// Clauses removed by subsumption.
    pub subsumed: usize,
    /// Whether the formula was decided outright.
    pub decided: Option<bool>,
}

/// Preprocesses a QBF; the returned formula has the same value.
///
/// When the formula is decided outright, the returned QBF is the canonical
/// true (empty matrix) or false (single empty clause) formula over the same
/// universe and [`Report::decided`] is set.
///
/// # Examples
///
/// ```
/// use qbf_core::{preprocess, samples};
/// let (simplified, report) = preprocess::preprocess(&samples::unsat_instance());
/// assert_eq!(report.decided, Some(false));
/// assert!(simplified.matrix().has_empty_clause());
/// ```
pub fn preprocess(qbf: &Qbf) -> (Qbf, Report) {
    let mut report = Report::default();
    let mut current = qbf.clone();
    loop {
        // 1. Universal reduction on every clause.
        let reduced = universal_reduce_matrix(&current, &mut report);
        current = Qbf::new(current.prefix().clone(), reduced)
            .expect("reduction only removes literals");

        // 2. Contradictory clause ⇒ false.
        if current
            .matrix()
            .iter()
            .any(|c| c.iter().all(|l| current.prefix().is_universal(l.var())))
        {
            report.decided = Some(false);
            let falsum = Qbf::new(
                crate::prefix::Prefix::empty(qbf.num_vars()),
                Matrix::from_clauses(qbf.num_vars(), [Clause::empty()]),
            )
            .expect("canonical false");
            return (falsum, report);
        }
        // Empty matrix ⇒ true.
        if current.matrix().is_empty() {
            report.decided = Some(true);
            let verum = Qbf::new(
                crate::prefix::Prefix::empty(qbf.num_vars()),
                Matrix::new(qbf.num_vars()),
            )
            .expect("canonical true");
            return (verum, report);
        }

        // 3. One unit, if any (restriction invalidates indices, so apply
        //    singly and loop).
        if let Some(u) = find_unit(&current) {
            report.units += 1;
            current = current.assign(u);
            continue;
        }

        // 4. One monotone literal, if any.
        if let Some(m) = find_pure(&current) {
            report.pures += 1;
            current = current.assign(m);
            continue;
        }

        // 5. Subsumption (once per outer round; restarts the loop when it
        //    fires since shorter matrices can enable new monotone fixes).
        let before = current.matrix().len();
        let sub = subsume(current.matrix());
        if sub.len() != before {
            report.subsumed += before - sub.len();
            current = Qbf::new(current.prefix().clone(), sub)
                .expect("subsumption only removes clauses");
            continue;
        }
        return (current, report);
    }
}

/// Lemma 3 applied to every clause of the matrix.
fn universal_reduce_matrix(qbf: &Qbf, report: &mut Report) -> Matrix {
    let prefix = qbf.prefix();
    let mut out = Matrix::new(qbf.num_vars());
    for c in qbf.matrix().iter() {
        let existentials: Vec<Var> = c
            .iter()
            .map(|l| l.var())
            .filter(|&v| prefix.is_existential(v))
            .collect();
        let kept: Vec<Lit> = c
            .iter()
            .copied()
            .filter(|&l| {
                prefix.is_existential(l.var())
                    || existentials.iter().any(|&e| prefix.precedes(l.var(), e))
            })
            .collect();
        report.reduced_literals += c.len() - kept.len();
        out.push(Clause::new(kept).expect("subset of a valid clause"));
    }
    out
}

/// Lemma 5 unit: the clause logic mirrors `recursive::find_unit`.
fn find_unit(qbf: &Qbf) -> Option<Lit> {
    let prefix = qbf.prefix();
    for c in qbf.matrix().iter() {
        let mut existentials = c.iter().filter(|l| prefix.is_existential(l.var()));
        let (Some(&e), None) = (existentials.next(), existentials.next()) else {
            continue;
        };
        if c.iter()
            .filter(|l| l.var() != e.var())
            .all(|l| !prefix.precedes(l.var(), e.var()))
        {
            return Some(e);
        }
    }
    None
}

/// §III monotone literal.
fn find_pure(qbf: &Qbf) -> Option<Lit> {
    let n = qbf.num_vars();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for c in qbf.matrix().iter() {
        for l in c {
            if l.is_positive() {
                pos[l.var().index()] = true;
            } else {
                neg[l.var().index()] = true;
            }
        }
    }
    for i in 0..n {
        let v = Var::new(i);
        match (qbf.prefix().quant(v), pos[i], neg[i]) {
            (None, _, _) | (_, false, false) => {}
            (Some(crate::var::Quantifier::Forall), true, false) => return Some(v.negative()),
            (Some(crate::var::Quantifier::Forall), false, true) => return Some(v.positive()),
            (Some(crate::var::Quantifier::Exists), true, false) => return Some(v.positive()),
            (Some(crate::var::Quantifier::Exists), false, true) => return Some(v.negative()),
            _ => {}
        }
    }
    None
}

/// Removes clauses subsumed by (⊇ of) another clause.
fn subsume(matrix: &Matrix) -> Matrix {
    let mut clauses: Vec<&Clause> = matrix.clauses().iter().collect();
    // Sort by length: a subsuming clause is never longer.
    clauses.sort_by_key(|c| c.len());
    let mut kept: Vec<Clause> = Vec::new();
    'outer: for c in clauses {
        for k in &kept {
            if k.iter().all(|l| c.contains(*l)) {
                continue 'outer;
            }
        }
        kept.push(c.clone());
    }
    Matrix::from_clauses(matrix.num_vars(), kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::semantics;
    use crate::var::Quantifier::*;
    use crate::{Prefix, PrefixBuilder};


    fn clause(lits: &[i64]) -> Clause {
        Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d))).unwrap()
    }

    #[test]
    fn decides_trivial_instances() {
        let (q, r) = preprocess(&samples::unsat_instance());
        assert_eq!(r.decided, Some(false));
        assert!(!semantics::eval(&q));
        let (q, r) = preprocess(&samples::sat_instance());
        assert_eq!(r.decided, Some(true));
        assert!(semantics::eval(&q));
        assert!(r.units + r.pures > 0);
    }

    #[test]
    fn universal_reduction_respects_partial_order() {
        // Non-prenex: ∃x (∀y ϕ) with clause (x ∨ y') where y' is in a
        // *sibling* subtree: y' is reducible (x not in its scope).
        let mut b = PrefixBuilder::new(3);
        let root = b.add_root(Exists, [Var::new(0)]).unwrap();
        b.add_child(root, Forall, [Var::new(1)]).unwrap();
        b.add_child(root, Forall, [Var::new(2)]).unwrap();
        let p = b.finish().unwrap();
        // clause (¬x ∨ y2): y2 does not precede x → reduced to (¬x);
        // second clause keeps x relevant both ways.
        let m = Matrix::from_clauses(3, [clause(&[-1, 3]), clause(&[1, 2])]);
        let q = Qbf::new(p, m).unwrap();
        let mut r = Report::default();
        let reduced = universal_reduce_matrix(&q, &mut r);
        assert_eq!(r.reduced_literals, 2); // y2 from c1, y1 from c2
        assert_eq!(reduced.clauses()[0], clause(&[-1]));
    }

    #[test]
    fn prenex_blocks_reduction_where_scope_applies() {
        // ∀y ∃x (x ∨ y): y ≺ x so y is NOT reducible.
        let p = Prefix::prenex(2, [(Forall, vec![Var::new(0)]), (Exists, vec![Var::new(1)])])
            .unwrap();
        let m = Matrix::from_clauses(2, [clause(&[1, 2]), clause(&[-1, -2])]);
        let q = Qbf::new(p, m).unwrap();
        let mut r = Report::default();
        let reduced = universal_reduce_matrix(&q, &mut r);
        assert_eq!(r.reduced_literals, 0);
        assert_eq!(reduced.len(), 2);
    }

    #[test]
    fn subsumption_drops_supersets() {
        let m = Matrix::from_clauses(
            3,
            [clause(&[1]), clause(&[1, 2]), clause(&[1, 2, 3]), clause(&[2, 3])],
        );
        let out = subsume(&m);
        assert_eq!(out.len(), 2);
        assert!(out.clauses().contains(&clause(&[1])));
        assert!(out.clauses().contains(&clause(&[2, 3])));
    }

    #[test]
    fn preprocessing_preserves_value_on_samples() {
        for q in [
            samples::paper_example(),
            samples::forall_exists_xor(),
            samples::exists_forall_xor(),
            samples::two_independent_games(),
        ] {
            let (out, _) = preprocess(&q);
            assert_eq!(semantics::eval(&out), semantics::eval(&q), "{q}");
        }
    }

    #[test]
    fn preprocessing_preserves_value_on_random_qbfs() {
        for round in 0..80u64 {
            let q = crate::samples::random_qbf(0x51ed_c0de ^ round, 6, 9);
            let (out, report) = preprocess(&q);
            assert_eq!(
                semantics::eval(&out),
                semantics::eval(&q),
                "round {round}: {q} → {out} ({report:?})"
            );
            // idempotence
            let (again, r2) = preprocess(&out);
            assert_eq!(semantics::eval(&again), semantics::eval(&out));
            if report.decided.is_none() {
                assert_eq!(r2.units + r2.pures + r2.subsumed, 0, "not a fixpoint");
            }
        }
    }

}
