//! The [`Qbf`] type: a quantifier prefix (partial order) plus a CNF matrix.

use std::fmt;

use crate::matrix::Matrix;
use crate::prefix::{Prefix, PrefixBuilder, PrefixError};
use crate::var::{Lit, Quantifier, Var};

/// Errors produced when assembling a [`Qbf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QbfError {
    /// The prefix and matrix disagree on the variable universe size.
    UniverseMismatch {
        /// `num_vars` of the prefix.
        prefix: usize,
        /// `num_vars` of the matrix.
        matrix: usize,
    },
    /// A variable occurs in the matrix but is not bound by the prefix.
    UnboundVar(Var),
    /// A clause (0-based index reported) mentions variables from disjoint
    /// sibling scopes: no actual formula places a clause outside every
    /// scope containing its variables, so such a pair has no well-defined
    /// semantics.
    IncompatibleScopes(usize),
    /// Forwarded prefix construction error.
    Prefix(PrefixError),
}

impl fmt::Display for QbfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QbfError::UniverseMismatch { prefix, matrix } => write!(
                f,
                "prefix universe ({prefix}) and matrix universe ({matrix}) differ"
            ),
            QbfError::UnboundVar(v) => write!(f, "variable {v} occurs in the matrix but is unbound"),
            QbfError::IncompatibleScopes(i) => write!(
                f,
                "clause {i} mentions variables from disjoint sibling scopes"
            ),
            QbfError::Prefix(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QbfError {}

impl From<PrefixError> for QbfError {
    fn from(e: PrefixError) -> Self {
        QbfError::Prefix(e)
    }
}

/// A quantified Boolean formula `〈prefix, matrix〉` (§II): a partially
/// ordered prefix over a CNF matrix. The prefix need not be prenex.
///
/// # Examples
///
/// ```
/// use qbf_core::{Clause, Lit, Matrix, Prefix, Qbf, Quantifier::*, Var};
/// // ∀y ∃x (y ∨ x) ∧ (¬y ∨ ¬x)
/// let prefix = Prefix::prenex(2, [(Forall, vec![Var::new(0)]), (Exists, vec![Var::new(1)])])?;
/// let matrix = Matrix::from_clauses(2, [
///     Clause::new([Lit::from_dimacs(1), Lit::from_dimacs(2)])?,
///     Clause::new([Lit::from_dimacs(-1), Lit::from_dimacs(-2)])?,
/// ]);
/// let qbf = Qbf::new(prefix, matrix)?;
/// assert!(qbf.is_prenex());
/// assert!(qbf_core::semantics::eval(&qbf)); // x := ¬y wins
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Qbf {
    prefix: Prefix,
    matrix: Matrix,
}

impl Qbf {
    /// Assembles a QBF, checking that every matrix variable is bound.
    ///
    /// # Errors
    ///
    /// [`QbfError::UniverseMismatch`] if prefix and matrix sizes differ,
    /// [`QbfError::UnboundVar`] if the matrix mentions an unbound variable
    /// (use [`Qbf::new_closing_free`] to bind free variables existentially
    /// at the top, per §II point 2).
    pub fn new(prefix: Prefix, matrix: Matrix) -> Result<Self, QbfError> {
        if prefix.num_vars() != matrix.num_vars() {
            return Err(QbfError::UniverseMismatch {
                prefix: prefix.num_vars(),
                matrix: matrix.num_vars(),
            });
        }
        for (i, occurs) in matrix.occurring_vars().iter().enumerate() {
            if *occurs && prefix.quant(Var::new(i)).is_none() {
                return Err(QbfError::UnboundVar(Var::new(i)));
            }
        }
        validate_scopes(&prefix, &matrix)?;
        Ok(Qbf { prefix, matrix })
    }

    /// Assembles a QBF, binding matrix variables that the prefix leaves free
    /// with a fresh outermost existential root block (§II point 2).
    ///
    /// # Errors
    ///
    /// [`QbfError::UniverseMismatch`] if prefix and matrix sizes differ.
    pub fn new_closing_free(prefix: Prefix, matrix: Matrix) -> Result<Self, QbfError> {
        if prefix.num_vars() != matrix.num_vars() {
            return Err(QbfError::UniverseMismatch {
                prefix: prefix.num_vars(),
                matrix: matrix.num_vars(),
            });
        }
        let free: Vec<Var> = matrix
            .occurring_vars()
            .iter()
            .enumerate()
            .filter(|&(i, occ)| *occ && prefix.quant(Var::new(i)).is_none())
            .map(|(i, _)| Var::new(i))
            .collect();
        if free.is_empty() {
            return Ok(Qbf { prefix, matrix });
        }
        // Rebuild: a fresh ∃ root holding the free variables, with the old
        // roots as its children.
        let mut b = PrefixBuilder::new(prefix.num_vars());
        let root = b.add_root(Quantifier::Exists, free)?;
        fn copy(
            p: &Prefix,
            b: &mut PrefixBuilder,
            src: crate::prefix::BlockId,
            parent: crate::prefix::BlockId,
        ) -> Result<(), PrefixError> {
            let id = b.add_child(parent, p.block_quant(src), p.block_vars(src).iter().copied())?;
            for &c in p.block_children(src) {
                copy(p, b, c, id)?;
            }
            Ok(())
        }
        for &r in prefix.roots() {
            copy(&prefix, &mut b, r, root)?;
        }
        let prefix = b.finish()?;
        validate_scopes(&prefix, &matrix)?;
        Ok(Qbf { prefix, matrix })
    }

    /// The prefix.
    pub fn prefix(&self) -> &Prefix {
        &self.prefix
    }

    /// The matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Decomposes into prefix and matrix.
    pub fn into_parts(self) -> (Prefix, Matrix) {
        (self.prefix, self.matrix)
    }

    /// The variable universe size.
    pub fn num_vars(&self) -> usize {
        self.matrix.num_vars()
    }

    /// Whether the prefix is in prenex form.
    pub fn is_prenex(&self) -> bool {
        self.prefix.is_prenex()
    }

    /// The restriction `ϕ_l` (§II): the matrix drops satisfied clauses and
    /// the false literal, the prefix unbinds `|l|`.
    pub fn assign(&self, lit: Lit) -> Qbf {
        Qbf {
            prefix: self.prefix.without_var(lit.var()),
            matrix: self.matrix.assign(lit),
        }
    }

    /// Removes bound variables that do not occur in the matrix
    /// (`Qz ϕ ≡ ϕ` when `z` does not occur in `ϕ`). Value-preserving.
    pub fn prune_vacuous(&self) -> Qbf {
        let occurs = self.matrix.occurring_vars();
        let mut prefix = self.prefix.clone();
        let vacuous: Vec<Var> = prefix
            .bound_vars()
            .filter(|v| !occurs[v.index()])
            .collect();
        for v in vacuous {
            prefix = prefix.without_var(v);
        }
        Qbf {
            prefix,
            matrix: self.matrix.clone(),
        }
    }
}

/// Checks that every clause's variables live on a single root path of the
/// quantifier forest: the well-formedness condition implicit in §II (a
/// clause of an actual formula sits inside some scope that contains all of
/// its variables). The DFS intervals of §VI make this a containment-chain
/// check.
fn validate_scopes(prefix: &Prefix, matrix: &Matrix) -> Result<(), QbfError> {
    for (i, clause) in matrix.iter().enumerate() {
        let mut intervals: Vec<(u32, u32)> = clause
            .iter()
            .filter_map(|l| prefix.block_of(l.var()))
            .map(|b| prefix.block_interval(b))
            .collect();
        intervals.sort_by_key(|&(d, f)| (d, std::cmp::Reverse(f)));
        intervals.dedup();
        for w in intervals.windows(2) {
            let ((d1, f1), (d2, f2)) = (w[0], w[1]);
            let nested = d1 <= d2 && f2 <= f1;
            if !nested {
                return Err(QbfError::IncompatibleScopes(i));
            }
        }
    }
    Ok(())
}

impl fmt::Display for Qbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} . {}", self.prefix, self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::samples;
    use crate::var::Quantifier::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn clause(lits: &[i64]) -> Clause {
        Clause::new(lits.iter().map(|&d| lit(d))).unwrap()
    }

    #[test]
    fn rejects_universe_mismatch() {
        let p = Prefix::empty(2);
        let m = Matrix::new(3);
        assert!(matches!(
            Qbf::new(p, m),
            Err(QbfError::UniverseMismatch { prefix: 2, matrix: 3 })
        ));
    }

    #[test]
    fn rejects_unbound_var() {
        let p = Prefix::prenex(2, [(Exists, vec![Var::new(0)])]).unwrap();
        let m = Matrix::from_clauses(2, [clause(&[1, 2])]);
        assert_eq!(Qbf::new(p, m), Err(QbfError::UnboundVar(Var::new(1))));
    }

    #[test]
    fn closing_free_binds_existentially_at_top() {
        let p = Prefix::prenex(3, [(Forall, vec![Var::new(0)]), (Exists, vec![Var::new(1)])])
            .unwrap();
        let m = Matrix::from_clauses(3, [clause(&[1, 2, 3])]);
        let q = Qbf::new_closing_free(p, m).unwrap();
        assert_eq!(q.prefix().quant(Var::new(2)), Some(Exists));
        assert_eq!(q.prefix().level(Var::new(2)), Some(1));
        // the previously outermost ∀ is now below the fresh ∃ root
        assert!(q.prefix().precedes(Var::new(2), Var::new(0)));
    }

    #[test]
    fn paper_example_shape() {
        let q = samples::paper_example();
        assert_eq!(q.num_vars(), 7);
        assert_eq!(q.matrix().len(), 8);
        assert!(!q.is_prenex());
        assert_eq!(q.prefix().prefix_level(), 3);
    }

    #[test]
    fn assign_restricts_prefix_and_matrix() {
        let q = samples::paper_example();
        let x0 = Var::new(0).positive();
        let r = q.assign(x0);
        assert_eq!(r.prefix().quant(Var::new(0)), None);
        // clauses containing x0 disappear, ¬x0 literals are dropped
        assert!(r.matrix().len() < q.matrix().len());
        for c in r.matrix().iter() {
            assert!(!c.contains_var(Var::new(0)));
        }
    }

    #[test]
    fn prune_vacuous_drops_unused_bindings() {
        let p = Prefix::prenex(2, [(Exists, vec![Var::new(0), Var::new(1)])]).unwrap();
        let m = Matrix::from_clauses(2, [clause(&[1])]);
        let q = Qbf::new(p, m).unwrap();
        let pruned = q.prune_vacuous();
        assert_eq!(pruned.prefix().quant(Var::new(1)), None);
        assert_eq!(pruned.prefix().quant(Var::new(0)), Some(Exists));
    }

    #[test]
    fn display_round() {
        let q = samples::forall_exists_xor();
        let s = q.to_string();
        assert!(s.contains("(a 1 (e 2))"), "got {s}");
    }
}
