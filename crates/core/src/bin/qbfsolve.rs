//! `qbfsolve` — command-line front end to the search solvers.
//!
//! ```text
//! qbfsolve [options] [FILE]
//!
//!   FILE               QDIMACS (`p cnf`) or non-prenex qtree (`p qtree`)
//!                      document; stdin when omitted or `-`.
//!   --to               QUBE(TO) configuration (prefix-level heuristic)
//!   --po               QUBE(PO) configuration (tree heuristic; default)
//!   --basic            plain backtracking, no learning
//!   --recursive        the recursive Q-DLL of Fig. 1 instead of the QDPLL
//!   --preprocess       run the value-preserving preprocessor first
//!   --no-pure          disable monotone literal fixing
//!   --no-learning      disable good/nogood learning
//!   --budget N         abort after N assignments
//!   --stats            print search statistics to stderr
//! ```
//!
//! Prints `s cnf 1` / `s cnf 0` (true/false) like QBF evaluation solvers and
//! exits with 10 (true), 20 (false) or 1 (budget exhausted / error).

use std::io::Read;
use std::process::ExitCode;

use qbf_core::recursive::{self, RecursiveConfig};
use qbf_core::solver::{Solver, SolverConfig};
use qbf_core::{io, Qbf};

struct Options {
    file: Option<String>,
    config: SolverConfig,
    use_recursive: bool,
    preprocess: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: qbfsolve [--to|--po|--basic|--recursive] [--preprocess] \
         [--no-pure] [--no-learning] [--budget N] [--stats] [FILE]"
    );
    std::process::exit(1);
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        config: SolverConfig::partial_order(),
        use_recursive: false,
        preprocess: false,
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--to" => opts.config = SolverConfig::total_order(),
            "--po" => opts.config = SolverConfig::partial_order(),
            "--basic" => opts.config = SolverConfig::basic(),
            "--recursive" => opts.use_recursive = true,
            "--no-pure" => opts.config.pure_literals = false,
            "--no-learning" => opts.config.learning = false,
            "--budget" => {
                let n = args.next().and_then(|v| v.parse().ok());
                match n {
                    Some(n) => opts.config.node_limit = Some(n),
                    None => usage(),
                }
            }
            "--preprocess" => opts.preprocess = true,
            "--stats" => opts.stats = true,
            "--help" | "-h" => usage(),
            "-" => opts.file = None,
            f if !f.starts_with('-') => opts.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    opts
}

fn read_input(file: &Option<String>) -> std::io::Result<String> {
    match file {
        Some(path) => std::fs::read_to_string(path),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            Ok(buf)
        }
    }
}

fn parse_qbf(text: &str) -> Result<Qbf, String> {
    let keyword = text
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("p "))
        .unwrap_or("");
    if keyword.starts_with("p qtree") {
        io::qtree::parse(text).map_err(|e| e.to_string())
    } else {
        io::qdimacs::parse(text).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match read_input(&opts.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read input: {e}");
            return ExitCode::from(1);
        }
    };
    let mut qbf = match parse_qbf(&text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: parse failed: {e}");
            return ExitCode::from(1);
        }
    };
    if opts.preprocess {
        let (simplified, report) = qbf_core::preprocess::preprocess(&qbf);
        eprintln!(
            "c preprocess: {} units, {} pures, {} reduced literals, {} subsumed{}",
            report.units,
            report.pures,
            report.reduced_literals,
            report.subsumed,
            match report.decided {
                Some(v) => format!(", decided: {v}"),
                None => String::new(),
            }
        );
        qbf = simplified;
    }
    for line in qbf_core::stats::InstanceStats::of(&qbf).to_string().lines() {
        eprintln!("c {line}");
    }

    let value = if opts.use_recursive {
        let cfg = RecursiveConfig {
            node_limit: opts.config.node_limit,
            ..RecursiveConfig::default()
        };
        let out = recursive::solve(&qbf, &cfg);
        if opts.stats {
            eprintln!("c stats: {:?}", out.stats);
        }
        out.value
    } else {
        let out = Solver::new(&qbf, opts.config.clone()).solve();
        if opts.stats {
            eprintln!("c stats: {:?}", out.stats);
        }
        out.value()
    };

    match value {
        Some(true) => {
            println!("s cnf 1");
            ExitCode::from(10)
        }
        Some(false) => {
            println!("s cnf 0");
            ExitCode::from(20)
        }
        None => {
            println!("s cnf -1");
            eprintln!("c budget exhausted");
            ExitCode::from(1)
        }
    }
}
