//! `qbfsolve` — command-line front end to the search solvers.
//!
//! ```text
//! qbfsolve [options] [FILE]
//!
//!   FILE               QDIMACS (`p cnf`) or non-prenex qtree (`p qtree`)
//!                      document; stdin when omitted or `-`.
//!   --to               QUBE(TO) configuration (prefix-level heuristic)
//!   --po               QUBE(PO) configuration (tree heuristic; default)
//!   --basic            plain backtracking, no learning
//!   --recursive        the recursive Q-DLL of Fig. 1 instead of the QDPLL
//!   --preprocess       run the value-preserving preprocessor first
//!   --no-pure          disable monotone literal fixing
//!   --no-learning      disable good/nogood learning
//!   --budget N         abort after N assignments
//!   --stats            print search statistics to stderr
//!   --proof[=FILE]     log a `qrp` Q-resolution/Q-consensus certificate
//!                      (stderr with a `c ` prefix, or FILE when given);
//!                      forces learning on and pure literals off, and is
//!                      checkable with `qbfcheck INSTANCE FILE`
//!   --trace[=FILE]     Fig. 2-style indented search-tree trace
//!                      (stderr, or FILE when given)
//!   --trace-json[=FILE] JSONL event trace, one JSON object per event
//!                      (stderr, or FILE when given)
//!   --profile          per-level/size/chain-length search profile on stderr
//!   --progress N       one-line status on stderr every N conflicts+solutions
//!   --metrics          engine phase timings (propagate / conflict analysis /
//!                      solution analysis / reduce_db / compaction) and
//!                      resource gauges on stderr, plus a one-line JSON
//!                      snapshot (`c metrics: {...}`)
//! ```
//!
//! Prints `s cnf 1` / `s cnf 0` (true/false) like QBF evaluation solvers and
//! exits with 10 (true), 20 (false) or 1 (budget exhausted / error).

use std::io::Read;
use std::process::ExitCode;

use qbf_core::metrics::{EngineGauge, EngineMetrics, Phase, WallClock};
use qbf_core::observe::{JsonlTrace, MultiObserver, NoopObserver, Profiler, Progress, TreeTrace};
use qbf_core::proof::{NoProof, ProofLog};
use qbf_core::recursive::{self, RecursiveConfig};
use qbf_core::solver::{Solver, SolverConfig};
use qbf_core::{io, Qbf};

/// `None` = disabled, `Some(None)` = stderr, `Some(Some(path))` = file.
type Sink = Option<Option<String>>;

struct Options {
    file: Option<String>,
    config: SolverConfig,
    use_recursive: bool,
    preprocess: bool,
    stats: bool,
    proof: Sink,
    trace: Sink,
    trace_json: Sink,
    profile: bool,
    progress: u64,
    metrics: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: qbfsolve [--to|--po|--basic|--recursive] [--preprocess] \
         [--no-pure] [--no-learning] [--budget N] [--stats] [--proof[=FILE]] \
         [--trace[=FILE]] [--trace-json[=FILE]] [--profile] [--progress N] \
         [--metrics] [FILE]"
    );
    std::process::exit(1);
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        config: SolverConfig::partial_order(),
        use_recursive: false,
        preprocess: false,
        stats: false,
        proof: None,
        trace: None,
        trace_json: None,
        profile: false,
        progress: 0,
        metrics: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--to" => opts.config = SolverConfig::total_order(),
            "--po" => opts.config = SolverConfig::partial_order(),
            "--basic" => opts.config = SolverConfig::basic(),
            "--recursive" => opts.use_recursive = true,
            "--no-pure" => opts.config.pure_literals = false,
            "--no-learning" => opts.config.learning = false,
            "--budget" => {
                let n = args.next().and_then(|v| v.parse().ok());
                match n {
                    Some(n) => opts.config.node_limit = Some(n),
                    None => usage(),
                }
            }
            "--preprocess" => opts.preprocess = true,
            "--stats" => opts.stats = true,
            "--proof" => opts.proof = Some(None),
            "--trace" => opts.trace = Some(None),
            "--trace-json" => opts.trace_json = Some(None),
            "--profile" => opts.profile = true,
            "--metrics" => opts.metrics = true,
            "--progress" => {
                let n = args.next().and_then(|v| v.parse().ok());
                match n {
                    Some(n) => opts.progress = n,
                    None => usage(),
                }
            }
            "--help" | "-h" => usage(),
            "-" => opts.file = None,
            _ if a.starts_with("--proof=") => {
                opts.proof = Some(Some(a["--proof=".len()..].to_string()));
            }
            _ if a.starts_with("--trace=") => {
                opts.trace = Some(Some(a["--trace=".len()..].to_string()));
            }
            _ if a.starts_with("--trace-json=") => {
                opts.trace_json = Some(Some(a["--trace-json=".len()..].to_string()));
            }
            f if !f.starts_with('-') => opts.file = Some(f.to_string()),
            _ => usage(),
        }
    }
    opts
}

/// Writes trace output to the sink's file, or to stderr line by line with a
/// `c ` comment prefix.
fn emit(sink: &Sink, what: &str, text: &str) {
    let Some(target) = sink else { return };
    match target {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write {what} to {path}: {e}");
            }
        }
        None => {
            for line in text.lines() {
                eprintln!("c {line}");
            }
        }
    }
}

fn read_input(file: &Option<String>) -> std::io::Result<String> {
    match file {
        Some(path) => std::fs::read_to_string(path),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            Ok(buf)
        }
    }
}

fn parse_qbf(text: &str) -> Result<Qbf, String> {
    let keyword = text
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("p "))
        .unwrap_or("");
    if keyword.starts_with("p qtree") {
        io::qtree::parse(text).map_err(|e| e.to_string())
    } else {
        io::qdimacs::parse(text).map_err(|e| e.to_string())
    }
}

/// Runs the selected solver, reporting events to `multi` (an empty
/// fan-out takes the `NoopObserver` fast path), logging a certificate
/// into `proof` when requested, and printing `--stats`.
fn run(
    qbf: &Qbf,
    opts: &Options,
    multi: MultiObserver<'_>,
    proof: Option<&mut ProofLog>,
    metrics: Option<&mut EngineMetrics<WallClock>>,
) -> Option<bool> {
    let observed = !multi.is_empty();
    if opts.use_recursive {
        let cfg = RecursiveConfig {
            node_limit: opts.config.node_limit,
            pure_literals: opts.config.pure_literals,
            ..RecursiveConfig::default()
        };
        let out = if observed {
            recursive::solve_with_observer(qbf, &cfg, multi)
        } else {
            recursive::solve(qbf, &cfg)
        };
        if opts.stats {
            eprintln!("c stats: {:?}", out.stats);
        }
        out.value
    } else {
        let config = opts.config.clone();
        let out = match (observed, proof, metrics) {
            (true, Some(log), Some(m)) => {
                Solver::with_instruments(qbf, config, multi, log, m).solve()
            }
            (false, Some(log), Some(m)) => {
                Solver::with_instruments(qbf, config, NoopObserver, log, m).solve()
            }
            (true, None, Some(m)) => {
                Solver::with_instruments(qbf, config, multi, NoProof, m).solve()
            }
            (false, None, Some(m)) => Solver::with_metrics(qbf, config, m).solve(),
            (true, Some(log), None) => Solver::with_parts(qbf, config, multi, log).solve(),
            (false, Some(log), None) => Solver::with_proof(qbf, config, log).solve(),
            (true, None, None) => Solver::with_observer(qbf, config, multi).solve(),
            (false, None, None) => Solver::new(qbf, config).solve(),
        };
        if opts.stats {
            for line in out.stats.to_string().lines() {
                eprintln!("c {line}");
            }
        }
        out.value()
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match read_input(&opts.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read input: {e}");
            return ExitCode::from(1);
        }
    };
    let mut qbf = match parse_qbf(&text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: parse failed: {e}");
            return ExitCode::from(1);
        }
    };
    if opts.preprocess {
        let (simplified, report) = qbf_core::preprocess::preprocess(&qbf);
        eprintln!(
            "c preprocess: {} units, {} pures, {} reduced literals, {} subsumed{}",
            report.units,
            report.pures,
            report.reduced_literals,
            report.subsumed,
            match report.decided {
                Some(v) => format!(", decided: {v}"),
                None => String::new(),
            }
        );
        qbf = simplified;
    }
    for line in qbf_core::stats::InstanceStats::of(&qbf).to_string().lines() {
        eprintln!("c {line}");
    }

    // Observability: build the fan-out requested on the command line. An
    // empty fan-out takes the `NoopObserver` fast path instead.
    let mut tree = TreeTrace::new();
    let mut jsonl = JsonlTrace::new();
    let mut profiler = Profiler::new(&qbf);
    let mut progress = Progress::new(opts.progress);
    let mut multi = MultiObserver::new();
    if opts.trace.is_some() {
        multi.push(&mut tree);
    }
    if opts.trace_json.is_some() {
        multi.push(&mut jsonl);
    }
    if opts.profile {
        multi.push(&mut profiler);
    }
    if opts.progress > 0 {
        multi.push(&mut progress);
    }
    let mut log = ProofLog::new();
    if opts.proof.is_some() {
        if opts.use_recursive {
            eprintln!("error: --proof requires the QDPLL solver (drop --recursive)");
            return ExitCode::from(1);
        }
        if opts.config.pure_literals || !opts.config.learning {
            eprintln!("c proof: forcing learning on and pure literals off");
        }
    }

    if opts.metrics && opts.use_recursive {
        eprintln!("error: --metrics requires the QDPLL solver (drop --recursive)");
        return ExitCode::from(1);
    }
    let mut engine_metrics = EngineMetrics::new(WallClock::new());

    // `run` consumes the fan-out, so the borrows of the individual
    // observers end at this call and the traces can be emitted below.
    let value = run(
        &qbf,
        &opts,
        multi,
        opts.proof.is_some().then_some(&mut log),
        opts.metrics.then_some(&mut engine_metrics),
    );

    if opts.proof.is_some() {
        if log.is_concluded() {
            emit(&opts.proof, "proof", log.as_text());
        } else {
            eprintln!("c proof: search was cut off before a conclusion; no certificate");
        }
    }
    emit(&opts.trace, "trace", tree.as_str());
    emit(&opts.trace_json, "JSON trace", &jsonl.finish());
    if opts.profile {
        for line in profiler.report().lines() {
            eprintln!("c {line}");
        }
    }
    if opts.metrics {
        for p in Phase::ALL {
            let h = engine_metrics.phase_hist(p);
            eprintln!(
                "c phase {:<18} calls {:>8}  total {:>12} ns  p50 {:>10}  p90 {:>10}  p99 {:>10}",
                p.name(),
                h.count(),
                h.sum(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99)
            );
        }
        for g in EngineGauge::ALL {
            eprintln!(
                "c gauge {:<18} last {:>12}  peak {:>12}",
                g.name(),
                engine_metrics.gauge_last(g),
                engine_metrics.gauge_peak(g)
            );
        }
        eprintln!("c metrics: {}", engine_metrics.snapshot_json());
    }

    match value {
        Some(true) => {
            println!("s cnf 1");
            ExitCode::from(10)
        }
        Some(false) => {
            println!("s cnf 0");
            ExitCode::from(20)
        }
        None => {
            println!("s cnf -1");
            eprintln!("c budget exhausted");
            ExitCode::from(1)
        }
    }
}
