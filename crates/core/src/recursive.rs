//! The recursive Q-DLL procedure of Fig. 1, extended to arbitrary
//! (non-prenex) QBFs per §IV of the paper.
//!
//! This is the *reference* solver: small, functional (each call restricts a
//! fresh [`Qbf`]), and implementing exactly the rules whose soundness the
//! paper proves:
//!
//! * **contradictory clause** (Lemma 4): a clause without existential
//!   literals makes the QBF false;
//! * **unit literal** (Lemma 5): an existential literal `l` is unit if some
//!   clause contains `l` plus only universal literals `l_i` with
//!   `|l_i| ⊀ |l|`;
//! * **pure (monotone) literal fixing** (§III), optional;
//! * branching on a *top* literal, combining branches with `or`/`and`.
//!
//! It can record the explored search tree, which reproduces Fig. 2 of the
//! paper on the running example.

use crate::observe::{NoopObserver, PropagationKind, SearchObserver};
use crate::qbf::Qbf;
use crate::var::{Lit, Var};

/// How a literal was assigned along a trace edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignKind {
    /// Chosen at line 4 of Fig. 1.
    Branch,
    /// Propagated at line 3 of Fig. 1 (Lemma 5).
    Unit,
    /// Fixed as a monotone literal (§III).
    Pure,
}

/// Configuration of the recursive Q-DLL solver.
#[derive(Debug, Clone)]
pub struct RecursiveConfig {
    /// Enable unit propagation (line 3 of Fig. 1). Default `true`.
    pub unit_propagation: bool,
    /// Enable pure-literal fixing (§III). Default `true`.
    pub pure_literals: bool,
    /// Abort after this many visited nodes (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Record the explored search tree (expensive; for small formulas).
    pub trace: bool,
}

impl Default for RecursiveConfig {
    fn default() -> Self {
        RecursiveConfig {
            unit_propagation: true,
            pure_literals: true,
            node_limit: None,
            trace: false,
        }
    }
}

/// Counters describing a run of the recursive solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecursiveStats {
    /// Nodes of the search tree visited (recursive calls).
    pub nodes: u64,
    /// Literals assigned as branches.
    pub branches: u64,
    /// Literals assigned as units.
    pub units: u64,
    /// Literals assigned as pure.
    pub pures: u64,
}

/// A node of a recorded search tree.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// Node number in order of exploration (1-based, as in Fig. 2).
    pub id: u64,
    /// Parent node number (`None` for the root).
    pub parent: Option<u64>,
    /// The literal assigned on the edge from the parent, and how.
    pub via: Option<(Lit, AssignKind)>,
    /// Rendering of the node's matrix.
    pub matrix: String,
    /// The value of the subtree, once known.
    pub value: Option<bool>,
}

/// The recorded search tree of a traced run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Nodes in order of exploration.
    pub nodes: Vec<TraceNode>,
}

impl Trace {
    /// Renders the tree as indented text, one node per line, in the style of
    /// Fig. 2 of the paper.
    pub fn render(&self) -> String {
        let mut out = String::new();
        // children lists
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        let mut roots = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            match n.parent {
                None => roots.push(i),
                Some(p) => children[(p - 1) as usize].push(i),
            }
        }
        fn rec(
            trace: &Trace,
            children: &[Vec<usize>],
            i: usize,
            depth: usize,
            out: &mut String,
        ) {
            let n = &trace.nodes[i];
            let indent = "  ".repeat(depth);
            let via = match n.via {
                None => String::new(),
                Some((l, AssignKind::Branch)) => format!("--{l} (branch)--> "),
                Some((l, AssignKind::Unit)) => format!("--{l} (unit)--> "),
                Some((l, AssignKind::Pure)) => format!("--{l} (pure)--> "),
            };
            let value = match n.value {
                Some(true) => " = TRUE",
                Some(false) => " = FALSE",
                None => "",
            };
            out.push_str(&format!("{indent}{via}{}: {}{}\n", n.id, n.matrix, value));
            for &c in &children[i] {
                rec(trace, children, c, depth + 1, out);
            }
        }
        for r in roots {
            rec(self, &children, r, 0, &mut out);
        }
        out
    }
}

/// Result of a recursive Q-DLL run.
#[derive(Debug, Clone)]
pub struct RecursiveOutcome {
    /// `Some(value)` if decided, `None` if the node limit was hit.
    pub value: Option<bool>,
    /// Search counters.
    pub stats: RecursiveStats,
    /// The recorded tree, if tracing was enabled.
    pub trace: Option<Trace>,
}

/// Runs the recursive Q-DLL of Fig. 1 (extended per §IV) on a QBF.
///
/// # Examples
///
/// ```
/// use qbf_core::{recursive, samples};
/// let out = recursive::solve(&samples::paper_example(), &recursive::RecursiveConfig::default());
/// assert_eq!(out.value, Some(false));
/// ```
pub fn solve(qbf: &Qbf, config: &RecursiveConfig) -> RecursiveOutcome {
    solve_with_observer(qbf, config, NoopObserver)
}

/// Like [`solve`], but reports every assignment and leaf to a
/// [`SearchObserver`] (pass `&mut obs` to keep ownership). Decisions are
/// reported with `level` = number of branches on the current path and a
/// heuristic score of 0 (the recursive solver branches positionally);
/// propagations carry the level of the enclosing branch, so an attached
/// [`crate::observe::TreeTrace`] indents exactly like Fig. 2 of the paper.
pub fn solve_with_observer<O: SearchObserver>(
    qbf: &Qbf,
    config: &RecursiveConfig,
    observer: O,
) -> RecursiveOutcome {
    let mut ctx = Ctx {
        config: config.clone(),
        stats: RecursiveStats::default(),
        trace: if config.trace { Some(Trace::default()) } else { None },
        aborted: false,
        observer,
    };
    let value = ctx.qdll(qbf, None, None, 0, 0);
    RecursiveOutcome {
        value: if ctx.aborted { None } else { Some(value) },
        stats: ctx.stats,
        trace: ctx.trace,
    }
}

struct Ctx<O: SearchObserver> {
    config: RecursiveConfig,
    stats: RecursiveStats,
    trace: Option<Trace>,
    aborted: bool,
    observer: O,
}

impl<O: SearchObserver> Ctx<O> {
    fn qdll(
        &mut self,
        qbf: &Qbf,
        parent: Option<u64>,
        via: Option<(Lit, AssignKind)>,
        level: u32,
        depth: usize,
    ) -> bool {
        self.stats.nodes += 1;
        if let Some(limit) = self.config.node_limit {
            if self.stats.nodes > limit {
                self.aborted = true;
                return false;
            }
        }
        let id = self.stats.nodes;
        if let Some(trace) = &mut self.trace {
            trace.nodes.push(TraceNode {
                id,
                parent,
                via,
                matrix: qbf.matrix().to_string(),
                value: None,
            });
        }
        let value = self.qdll_inner(qbf, id, level, depth);
        if let Some(trace) = &mut self.trace {
            if let Some(node) = trace.nodes.iter_mut().find(|n| n.id == id) {
                node.value = Some(value);
            }
        }
        value
    }

    fn qdll_inner(&mut self, qbf: &Qbf, id: u64, level: u32, depth: usize) -> bool {
        // Line 1 of Fig. 1 generalized by Lemma 4: a clause without
        // existential literals is contradictory.
        if has_contradictory_clause(qbf) {
            self.observer.on_conflict(level, depth);
            return false;
        }
        // Line 2.
        if qbf.matrix().is_empty() {
            self.observer.on_solution(level, depth);
            return true;
        }
        // Line 3 (Lemma 5).
        if self.config.unit_propagation {
            if let Some(l) = find_unit(qbf) {
                self.stats.units += 1;
                self.observer
                    .on_propagation(l, level, depth + 1, PropagationKind::UnitClause);
                return self.qdll(
                    &qbf.assign(l),
                    Some(id),
                    Some((l, AssignKind::Unit)),
                    level,
                    depth + 1,
                );
            }
        }
        // Monotone literal fixing (§III).
        if self.config.pure_literals {
            if let Some(l) = find_pure(qbf) {
                self.stats.pures += 1;
                self.observer
                    .on_propagation(l, level, depth + 1, PropagationKind::Pure);
                return self.qdll(
                    &qbf.assign(l),
                    Some(id),
                    Some((l, AssignKind::Pure)),
                    level,
                    depth + 1,
                );
            }
        }
        // Lines 4–6: branch on a top literal.
        let z = pick_top(qbf);
        self.stats.branches += 1;
        let existential = qbf.prefix().is_existential(z);
        // Deterministic phase: negative branch first (as the Fig. 2 trace
        // of the paper happens to do on x0).
        let first = z.negative();
        let second = z.positive();
        self.observer
            .on_decision(first, level + 1, depth + 1, false, 0.0);
        let r1 = self.qdll(
            &qbf.assign(first),
            Some(id),
            Some((first, AssignKind::Branch)),
            level + 1,
            depth + 1,
        );
        if self.aborted {
            return false;
        }
        if (existential && r1) || (!existential && !r1) {
            return r1;
        }
        self.stats.branches += 1;
        self.observer
            .on_decision(second, level + 1, depth + 1, true, 0.0);
        self.qdll(
            &qbf.assign(second),
            Some(id),
            Some((second, AssignKind::Branch)),
            level + 1,
            depth + 1,
        )
    }
}

/// Lemma 4 test: some clause contains no existential literal. Free matrix
/// variables never occur here because `Qbf` construction closes them.
fn has_contradictory_clause(qbf: &Qbf) -> bool {
    qbf.matrix()
        .iter()
        .any(|c| c.iter().all(|l| qbf.prefix().is_universal(l.var())))
}

/// Lemma 5 (generalized unit): existential `l` with a clause
/// `{l, l1, …, lm}` where every `l_i` is universal and `|l_i| ⊀ |l|`.
fn find_unit(qbf: &Qbf) -> Option<Lit> {
    let prefix = qbf.prefix();
    for c in qbf.matrix().iter() {
        let mut existentials = c.iter().filter(|l| prefix.is_existential(l.var()));
        let (Some(&e), None) = (existentials.next(), existentials.next()) else {
            continue;
        };
        if c.iter()
            .filter(|l| l.var() != e.var())
            .all(|l| !prefix.precedes(l.var(), e.var()))
        {
            return Some(e);
        }
    }
    None
}

/// Monotone literal (§III): existential `l` with `¬l` absent from the
/// matrix, or universal `l` with `l` absent from the matrix (assigning `l`
/// removes `¬l` occurrences, the adversary's best move).
fn find_pure(qbf: &Qbf) -> Option<Lit> {
    let n = qbf.num_vars();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for c in qbf.matrix().iter() {
        for l in c {
            if l.is_positive() {
                pos[l.var().index()] = true;
            } else {
                neg[l.var().index()] = true;
            }
        }
    }
    for i in 0..n {
        let v = Var::new(i);
        if qbf.prefix().is_universal(v) {
            if pos[i] && !neg[i] {
                return Some(v.negative());
            }
            if neg[i] && !pos[i] {
                return Some(v.positive());
            }
        } else if qbf.prefix().quant(v).is_some() {
            if pos[i] && !neg[i] {
                return Some(v.positive());
            }
            if neg[i] && !pos[i] {
                return Some(v.negative());
            }
        }
    }
    None
}

/// Picks the smallest-index top variable *occurring in the matrix* (vacuous
/// top variables would make both branches identical).
fn pick_top(qbf: &Qbf) -> Var {
    let occurs = qbf.matrix().occurring_vars();
    let mut tops: Vec<Var> = qbf
        .prefix()
        .top_vars()
        .into_iter()
        .filter(|v| occurs[v.index()])
        .collect();
    if tops.is_empty() {
        // All top variables are vacuous; drop them and retry on the pruned
        // formula's tops. Falling back to any occurring bound var is safe
        // only if it is top, so prune instead.
        let pruned = qbf.prune_vacuous();
        tops = pruned
            .prefix()
            .top_vars()
            .into_iter()
            .filter(|v| occurs[v.index()])
            .collect();
    }
    *tops.iter().min().expect("non-trivial QBF has a top variable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::semantics;

    fn solve_default(qbf: &Qbf) -> Option<bool> {
        solve(qbf, &RecursiveConfig::default()).value
    }

    #[test]
    fn agrees_on_samples() {
        assert_eq!(solve_default(&samples::paper_example()), Some(false));
        assert_eq!(solve_default(&samples::forall_exists_xor()), Some(true));
        assert_eq!(solve_default(&samples::exists_forall_xor()), Some(false));
        assert_eq!(solve_default(&samples::two_independent_games()), Some(true));
        assert_eq!(solve_default(&samples::sat_instance()), Some(true));
        assert_eq!(solve_default(&samples::unsat_instance()), Some(false));
    }

    #[test]
    fn all_rule_combinations_agree_with_semantics() {
        let qbfs = [
            samples::paper_example(),
            samples::forall_exists_xor(),
            samples::exists_forall_xor(),
            samples::two_independent_games(),
            samples::sat_instance(),
            samples::unsat_instance(),
        ];
        for q in &qbfs {
            let expected = semantics::eval(q);
            for unit in [false, true] {
                for pure in [false, true] {
                    let cfg = RecursiveConfig {
                        unit_propagation: unit,
                        pure_literals: pure,
                        ..RecursiveConfig::default()
                    };
                    assert_eq!(
                        solve(q, &cfg).value,
                        Some(expected),
                        "mismatch on {q} with unit={unit} pure={pure}"
                    );
                }
            }
        }
    }

    #[test]
    fn node_limit_aborts() {
        let cfg = RecursiveConfig {
            node_limit: Some(1),
            ..RecursiveConfig::default()
        };
        let out = solve(&samples::paper_example(), &cfg);
        assert_eq!(out.value, None);
    }

    #[test]
    fn trace_records_tree() {
        let cfg = RecursiveConfig {
            trace: true,
            // Pure-literal fixing would shortcut the y-branches; Fig. 2 does
            // not apply it (see the paper's footnote 5).
            pure_literals: false,
            ..RecursiveConfig::default()
        };
        let out = solve(&samples::paper_example(), &cfg);
        assert_eq!(out.value, Some(false));
        let trace = out.trace.expect("tracing enabled");
        assert_eq!(trace.nodes[0].id, 1);
        assert!(trace.nodes.len() >= 5);
        assert_eq!(trace.nodes[0].value, Some(false));
        let rendered = trace.render();
        assert!(rendered.contains("= FALSE"));
    }

    #[test]
    fn unit_rule_respects_partial_order() {
        // ∀y ∃x (x ∨ y): x is NOT unit (y ≺ x), the clause needs branching
        // on y first. Whereas in ∃x ∀y (x ∨ y) the clause makes x unit.
        use crate::{Clause, Lit, Matrix, Prefix, Qbf, Quantifier::*, Var};
        let clause = Clause::new([Lit::from_dimacs(1), Lit::from_dimacs(2)]).unwrap();
        let inner = Qbf::new(
            Prefix::prenex(2, [(Forall, vec![Var::new(1)]), (Exists, vec![Var::new(0)])]).unwrap(),
            Matrix::from_clauses(2, [clause.clone()]),
        )
        .unwrap();
        assert_eq!(find_unit(&inner), None);
        let outer = Qbf::new(
            Prefix::prenex(2, [(Exists, vec![Var::new(0)]), (Forall, vec![Var::new(1)])]).unwrap(),
            Matrix::from_clauses(2, [clause]),
        )
        .unwrap();
        assert_eq!(find_unit(&outer), Some(Lit::from_dimacs(1)));
    }

    #[test]
    fn sibling_scope_clauses_are_rejected() {
        // A clause mixing variables of disjoint sibling scopes corresponds
        // to no actual formula (§II well-formedness) and is rejected at
        // construction — the generalized unit rule therefore only ever has
        // to consider inner/chain universals on *input* clauses; the
        // truly-incomparable case arises for learned constraints only
        // (§V), which the iterative solver handles internally.
        use crate::{Clause, Lit, Matrix, PrefixBuilder, Qbf, QbfError, Quantifier::*, Var};
        let mut b = PrefixBuilder::new(3);
        let root = b.add_root(Forall, [Var::new(1)]).unwrap();
        b.add_child(root, Exists, [Var::new(2)]).unwrap();
        b.add_root(Exists, [Var::new(0)]).unwrap();
        let prefix = b.finish().unwrap();
        let m = Matrix::from_clauses(
            3,
            [Clause::new([Lit::from_dimacs(1), Lit::from_dimacs(2)]).unwrap()],
        );
        assert_eq!(Qbf::new(prefix, m), Err(QbfError::IncompatibleScopes(0)));
    }

    #[test]
    fn pure_literal_polarity() {
        use crate::{Clause, Lit, Matrix, Prefix, Qbf, Quantifier::*, Var};
        // ∀y ∃x (y ∨ x): y occurs only positively; the universal pure rule
        // assigns y FALSE (the adversary keeps the clause alive), i.e. the
        // literal ¬y. x occurs only positively; the existential rule
        // assigns x TRUE.
        let p = Prefix::prenex(2, [(Forall, vec![Var::new(0)]), (Exists, vec![Var::new(1)])])
            .unwrap();
        let m = Matrix::from_clauses(
            2,
            [Clause::new([Lit::from_dimacs(1), Lit::from_dimacs(2)]).unwrap()],
        );
        let q = Qbf::new(p, m).unwrap();
        let pure = find_pure(&q).unwrap();
        assert_eq!(pure, Lit::from_dimacs(-1));
        // After fixing y=false the clause survives as (x); x becomes pure.
        let q2 = q.assign(pure);
        assert_eq!(find_pure(&q2), Some(Lit::from_dimacs(2)));
    }

    #[test]
    fn stats_counters() {
        let out = solve(&samples::unsat_instance(), &RecursiveConfig::default());
        assert!(out.stats.nodes >= 1);
        assert!(out.stats.units >= 1); // (x1) is unit immediately
    }
}
