//! In-instance parallel portfolio with clause/cube sharing.
//!
//! The paper's central finding — prenexing strategy and quantifier
//! structure dramatically change search behaviour — makes the PO solver,
//! the four TO prenexings and seeded heuristic variants a natural
//! portfolio: run the variants concurrently over *one* instance and take
//! the first finisher. This module implements that portfolio over
//! [`std::thread`] workers with first-finisher-wins cancellation (a
//! shared [`AtomicBool`] polled at decision boundaries) and an
//! epoch-batched exchange of short learned clauses/cubes.
//!
//! # Sharing soundness
//!
//! Every learned constraint is a genuine Q-resolution (clause) or
//! Q-consensus (cube) consequence of the matrix — pure-literal and
//! decision pivots simply *stay* in the learned constraint (see the
//! engine's soundness notes), so a derivation never depends on the
//! deriving worker's heuristic state. All roster variants share one
//! matrix and one variable numbering ([`qbf_prenex::prenex`] only
//! reshapes the prefix), so a constraint derived by worker A is a
//! well-formed constraint for worker B; it is a *sound* constraint for B
//! whenever every reduction step legal under A's order is legal under
//! B's, i.e. whenever `≺_B ⊆ ≺_A`. Since each total-order prenexing
//! extends the partial order, that yields the import rule implemented by
//! [`compatible`]: same prefix imports from same prefix, and the partial
//! order imports from everybody; distinct total orders never exchange.
//!
//! # Determinism model
//!
//! `deterministic: true` runs the *fixed* canonical roster in lockstep
//! epochs: every live worker advances to the same shared
//! `Stats.assignments` bound, the drivers barrier, outboxes are
//! exchanged in worker-index order, and the winner is the lowest-index
//! finisher of the earliest finishing epoch. Thread count then only
//! controls how epochs are executed, never what is computed, so verdict,
//! winner and every per-worker [`Stats`] are byte-reproducible for any
//! `--portfolio N` ([`PortfolioOutcome::transcript`]). Free-running mode
//! races one thread per variant wall-clock style and is only
//! verdict-stable.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

use crate::metrics::{EngineMetrics, MetricsSink, NoopMetrics, WallClock};
use crate::observe::NoopObserver;
use crate::proof::{NoProof, ProofLog, ProofSink};
use crate::qbf::Qbf;
use crate::solver::{Solver, SolverConfig, Stats};
use crate::var::Lit;

// ----------------------------------------------------------------------
// Public configuration types
// ----------------------------------------------------------------------

/// The quantifier-order class of a portfolio variant, deciding which
/// peers' constraints it may soundly import (see the module docs).
///
/// The classes assume all variants of one portfolio were derived from a
/// single base instance: `Partial` is the base's (partial) order and
/// every `Total(i)` is a linear extension of it. Rosters built by
/// `qbf_prenex::portfolio::roster` guarantee this by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareClass {
    /// The instance's original partially ordered prefix.
    Partial,
    /// A total-order prenexing; the tag distinguishes the strategies so
    /// that differently-shaped linear extensions never exchange.
    Total(u8),
}

/// Whether a constraint derived under `exporter`'s order is sound for
/// `importer` (`≺_importer ⊆ ≺_exporter`): identical classes always
/// exchange, and the partial order imports from every linear extension
/// of itself.
pub fn compatible(exporter: ShareClass, importer: ShareClass) -> bool {
    exporter == importer || importer == ShareClass::Partial
}

/// One portfolio worker blueprint: an instance view (the base QBF or a
/// prenexing of it), a solver configuration and the sharing class of its
/// prefix.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Stable human-readable tag (`po`, `to-eu-au`, `po-rand`, …) used
    /// in transcripts, reports and metrics.
    pub label: String,
    /// The instance this worker solves. Must share matrix and variable
    /// numbering with every other variant of the portfolio.
    pub qbf: Qbf,
    /// The worker's solver configuration (heuristic, limits, …).
    pub config: SolverConfig,
    /// The prefix-order class used by the sharing filter.
    pub class: ShareClass,
}

/// Portfolio execution options.
#[derive(Debug, Clone)]
pub struct PortfolioOptions {
    /// Worker threads. In deterministic mode this only parallelises the
    /// lockstep epochs (the result is identical for any value); in
    /// free-running mode each variant gets its own thread regardless.
    pub threads: usize,
    /// Share learned clauses/cubes up to this many literals between
    /// workers; `0` disables sharing entirely.
    pub share_len: usize,
    /// Lockstep epochs with byte-reproducible transcripts instead of a
    /// wall-clock race (see the module docs).
    pub deterministic: bool,
    /// Deterministic epoch length in `Stats.assignments` between
    /// exchange barriers.
    pub epoch: u64,
    /// Test hook: make this worker index panic on its first step, to
    /// exercise panic containment.
    #[doc(hidden)]
    pub debug_panic_worker: Option<usize>,
}

impl Default for PortfolioOptions {
    fn default() -> Self {
        PortfolioOptions {
            threads: 4,
            share_len: 4,
            deterministic: false,
            epoch: 2048,
            debug_panic_worker: None,
        }
    }
}

// ----------------------------------------------------------------------
// Results
// ----------------------------------------------------------------------

/// Per-worker result of a portfolio run.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// The variant's label.
    pub label: String,
    /// The worker's own verdict, if it reached one.
    pub value: Option<bool>,
    /// Whether the worker finished its search (as opposed to being
    /// cancelled, running out of budget, or panicking).
    pub finished: bool,
    /// Whether the worker panicked (contained; never propagates into
    /// the portfolio verdict).
    pub panicked: bool,
    /// The worker's engine statistics at the end of the run.
    pub stats: Stats,
    /// Constraints this worker published to the share pool.
    pub exported: u64,
    /// Peer constraints this worker attached to its database.
    pub imported: u64,
    /// Peer constraints dropped by the class-compatibility filter.
    pub discarded: u64,
    /// Per-worker metrics snapshot (only from
    /// [`solve_with_metrics`]).
    pub metrics_json: Option<String>,
    /// For external (non-search) workers: their own deterministic stat
    /// fields, printed in the transcript in place of the search
    /// [`Stats`] line.
    pub engine_fields: Option<Vec<(&'static str, u64)>>,
}

/// The outcome of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The portfolio verdict: the winning worker's value, or `None`
    /// when every worker ran out of budget (or panicked).
    pub value: Option<bool>,
    /// Index of the winning worker into `workers`, if any.
    pub winner: Option<usize>,
    /// Whether the run used the deterministic lockstep driver.
    pub deterministic: bool,
    /// The deterministic epoch length the run used.
    pub epoch: u64,
    /// The effective sharing length (0 when sharing was disabled, e.g.
    /// under proof logging).
    pub share_len: usize,
    /// Per-worker reports, in roster order.
    pub workers: Vec<WorkerReport>,
    /// The winning worker's concluded `qrp 1` certificate (only from
    /// [`solve_with_proof`]).
    pub certificate: Option<String>,
}

fn verdict_code(v: Option<bool>) -> i32 {
    match v {
        Some(true) => 1,
        Some(false) => 0,
        None => -1,
    }
}

impl PortfolioOutcome {
    /// Renders the byte-stable run transcript: verdict, winner, mode and
    /// the full per-worker [`Stats`] plus sharing counters. In
    /// deterministic mode this text is identical for any thread count
    /// and across repeated runs; it deliberately excludes the thread
    /// count and every wall-clock quantity.
    pub fn transcript(&self) -> String {
        let mut out = format!(
            "p portfolio verdict={} winner={} mode={} roster={} share-len={} epoch={}\n",
            verdict_code(self.value),
            match self.winner {
                Some(w) => w.to_string(),
                None => "-".to_string(),
            },
            if self.deterministic { "det" } else { "free" },
            self.workers.len(),
            self.share_len,
            self.epoch,
        );
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "w {i} {} value={} finished={} panicked={}",
                w.label,
                verdict_code(w.value),
                u8::from(w.finished),
                u8::from(w.panicked),
            ));
            match &w.engine_fields {
                Some(fields) => {
                    for &(name, v) in fields {
                        out.push_str(&format!(" {name}={v}"));
                    }
                }
                None => {
                    for (name, v) in w.stats.fields() {
                        out.push_str(&format!(" {name}={v}"));
                    }
                }
            }
            out.push_str(&format!(
                " exported={} imported={} discarded={}\n",
                w.exported, w.imported, w.discarded
            ));
        }
        out
    }
}

// ----------------------------------------------------------------------
// The share pool (free-running mode) and per-worker connections
// ----------------------------------------------------------------------

/// One published constraint.
#[derive(Debug, Clone)]
pub(crate) struct ShareEntry {
    from: usize,
    class: ShareClass,
    cube: bool,
    lits: Vec<Lit>,
}

/// Free-running mode's lock-protected generation buffer: an append-only
/// log of published constraints plus an atomic generation counter so
/// importers can skip the lock when nothing new arrived.
#[derive(Debug, Default)]
pub(crate) struct SharePool {
    generation: AtomicUsize,
    entries: Mutex<Vec<ShareEntry>>,
}

impl SharePool {
    fn publish(&self, entry: ShareEntry) {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries.push(entry);
        // Publish the new length *while holding the lock* so a reader
        // that observes generation `g` always finds `g` entries.
        self.generation.store(entries.len(), Ordering::Release);
    }
}

/// A worker's private endpoint of the sharing layer, owned by its
/// [`Solver`]. Exports flow through `offer` (learn-time), imports are
/// staged into `staged` — by `poll` (free-running, reading the pool) or
/// by the deterministic driver's exchange barrier — and drained by the
/// engine at decision boundaries via `take_staged`.
#[derive(Debug)]
pub(crate) struct ShareConn {
    pool: Arc<SharePool>,
    worker: usize,
    class: ShareClass,
    max_len: usize,
    deterministic: bool,
    /// Index of the next unseen pool entry (free-running mode).
    cursor: usize,
    /// Deterministic mode: exports buffered until the epoch barrier.
    outbox: Vec<(Vec<Lit>, bool)>,
    /// Imports staged for the next decision-boundary drain.
    staged: VecDeque<(Vec<Lit>, bool)>,
    pub(crate) exported: u64,
    pub(crate) imported: u64,
    pub(crate) discarded: u64,
}

impl ShareConn {
    fn new(
        pool: Arc<SharePool>,
        worker: usize,
        class: ShareClass,
        max_len: usize,
        deterministic: bool,
    ) -> Self {
        ShareConn {
            pool,
            worker,
            class,
            max_len,
            deterministic,
            cursor: 0,
            outbox: Vec::new(),
            staged: VecDeque::new(),
            exported: 0,
            imported: 0,
            discarded: 0,
        }
    }

    /// Learn-time export hook: publishes a constraint of length ≤
    /// `max_len` (deterministic mode buffers it for the next barrier).
    pub(crate) fn offer(&mut self, lits: &[Lit], cube: bool) {
        if lits.is_empty() || lits.len() > self.max_len {
            return;
        }
        self.exported += 1;
        if self.deterministic {
            self.outbox.push((lits.to_vec(), cube));
        } else {
            self.pool.publish(ShareEntry {
                from: self.worker,
                class: self.class,
                cube,
                lits: lits.to_vec(),
            });
        }
    }

    /// Free-running import: pulls every unseen pool entry through the
    /// compatibility filter into the staging queue. No-op in
    /// deterministic mode (the barrier stages batches instead).
    pub(crate) fn poll(&mut self) {
        if self.deterministic {
            return;
        }
        if self.pool.generation.load(Ordering::Acquire) == self.cursor {
            return;
        }
        let entries = self.pool.entries.lock().unwrap_or_else(PoisonError::into_inner);
        while self.cursor < entries.len() {
            let e = &entries[self.cursor];
            self.cursor += 1;
            if e.from == self.worker {
                continue;
            }
            if compatible(e.class, self.class) {
                self.staged.push_back((e.lits.clone(), e.cube));
            } else {
                self.discarded += 1;
            }
        }
    }

    /// Pops the next staged import (engine decision-boundary drain).
    pub(crate) fn take_staged(&mut self) -> Option<(Vec<Lit>, bool)> {
        let next = self.staged.pop_front();
        if next.is_some() {
            self.imported += 1;
        }
        next
    }

    /// Deterministic barrier: drains this worker's epoch outbox.
    fn take_outbox(&mut self) -> Vec<(Vec<Lit>, bool)> {
        std::mem::take(&mut self.outbox)
    }

    /// Deterministic barrier: stages a full epoch batch (in publication
    /// order) through the compatibility filter.
    fn stage_batch(&mut self, batch: &[ShareEntry]) {
        for e in batch {
            if e.from == self.worker {
                continue;
            }
            if compatible(e.class, self.class) {
                self.staged.push_back((e.lits.clone(), e.cube));
            } else {
                self.discarded += 1;
            }
        }
    }
}

// ----------------------------------------------------------------------
// External (cross-paradigm) workers
// ----------------------------------------------------------------------

/// A non-search decision procedure raced inside the portfolio — e.g.
/// the expansion engine of `qbf-expand`. Externals participate in both
/// drivers (deterministic lockstep and the free-running race) but never
/// in constraint sharing: the sharing soundness argument is a statement
/// about Q-resolution/Q-consensus derivations and does not cross
/// paradigms, so external workers neither export nor import.
///
/// The lockstep contract mirrors the search workers': [`step_to`]
/// advances the engine to an *absolute* bound in the engine's own
/// deterministic cost metric (for the expansion engine, SAT decisions
/// plus propagations; for search, `Stats.assignments`), so repeated
/// runs with the same epoch length replay byte-identically even though
/// the metrics differ across paradigms.
///
/// [`step_to`]: ExternalWorker::step_to
pub trait ExternalWorker: Send {
    /// Stable label for transcripts and reports.
    fn label(&self) -> &str;

    /// Deterministic mode: advance until the engine's cost metric
    /// reaches `bound`, the engine decides, or its own configured
    /// budget runs out.
    fn step_to(&mut self, bound: u64);

    /// Free-running mode: run until decided, budget-exhausted, or
    /// `stop` is raised (checked at the engine's decision boundaries).
    fn run(&mut self, stop: &AtomicBool);

    /// The verdict, if the engine reached one.
    fn value(&self) -> Option<bool>;

    /// Whether the engine decided the instance.
    fn finished(&self) -> bool {
        self.value().is_some()
    }

    /// Whether the engine exhausted its *own* configured budget (as
    /// opposed to pausing at a driver epoch bound).
    fn timed_out(&self) -> bool;

    /// Deterministic `(name, value)` counters for the transcript line
    /// (the external analogue of `Stats::fields`).
    fn stat_fields(&self) -> Vec<(&'static str, u64)>;
}

/// Driver-side state wrapped around one boxed external worker.
struct ExternalSlot<'e> {
    index: usize,
    worker: Box<dyn ExternalWorker + 'e>,
    panicked: bool,
    steps: u64,
}

impl ExternalSlot<'_> {
    fn live(&self) -> bool {
        !self.panicked && !self.worker.finished() && !self.worker.timed_out()
    }
}

// ----------------------------------------------------------------------
// The drivers
// ----------------------------------------------------------------------

struct Worker<'v, P: ProofSink, M: MetricsSink> {
    index: usize,
    class: ShareClass,
    node_limit: Option<u64>,
    conflict_limit: Option<u64>,
    solver: Solver<'v, NoopObserver, P, M>,
    value: Option<bool>,
    finished: bool,
    timed_out: bool,
    panicked: bool,
    steps: u64,
}

impl<P: ProofSink, M: MetricsSink> Worker<'_, P, M> {
    fn live(&self) -> bool {
        !self.finished && !self.timed_out && !self.panicked
    }

    /// Whether the worker's *hard* budget (its config limits, as opposed
    /// to the driver's epoch pause point) is spent — mirrors the
    /// engine's `budget_exhausted` comparisons.
    fn hard_budget_exhausted(&self) -> bool {
        let stats = self.solver.current_stats();
        if let Some(limit) = self.node_limit {
            if stats.assignments() > limit {
                return true;
            }
        }
        if let Some(limit) = self.conflict_limit {
            if stats.conflicts + stats.solutions > limit {
                return true;
            }
        }
        false
    }

    /// Advances the search to the shared epoch bound, recording a
    /// verdict or budget exhaustion.
    fn step_to(&mut self, epoch_end: u64) {
        self.solver.set_epoch_limit(Some(epoch_end));
        let out = self.solver.solve_mut();
        if let Some(v) = out.value() {
            self.value = Some(v);
            self.finished = true;
        } else if self.hard_budget_exhausted() {
            self.timed_out = true;
        }
    }
}

/// Distributes `jobs` over up to `threads` scoped worker threads via an
/// atomic work index (the `repro --jobs` idiom). `f` must not panic —
/// the callers wrap each step in `catch_unwind`.
fn run_parallel<J: Send, F: Fn(J) + Sync>(jobs: Vec<J>, threads: usize, f: F) {
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads <= 1 {
        for w in jobs {
            f(w);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<J>>> =
        jobs.into_iter().map(|w| Mutex::new(Some(w))).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let taken = slots[i].lock().unwrap_or_else(PoisonError::into_inner).take();
                if let Some(w) = taken {
                    f(w);
                }
            });
        }
    });
}

/// One schedulable unit of the deterministic driver: a search worker or
/// an external engine.
enum Job<'w, 'v, 'e, P: ProofSink, M: MetricsSink> {
    Search(&'w mut Worker<'v, P, M>),
    External(&'w mut ExternalSlot<'e>),
}

/// Deterministic lockstep driver; returns the winner index (global:
/// search workers first, externals after). Each worker interprets the
/// shared epoch bound in its own cost metric, so the lockstep stays
/// byte-reproducible across thread counts and repeated runs.
fn run_deterministic<P, M>(
    workers: &mut [Worker<'_, P, M>],
    externals: &mut [ExternalSlot<'_>],
    opts: &PortfolioOptions,
) -> Option<usize>
where
    P: ProofSink + Send,
    M: MetricsSink + Send,
{
    let epoch = opts.epoch.max(1);
    let inject = opts.debug_panic_worker;
    let mut epoch_end = epoch;
    loop {
        let live: Vec<Job<'_, '_, '_, P, M>> = workers
            .iter_mut()
            .filter(|w| w.live())
            .map(Job::Search)
            .chain(externals.iter_mut().filter(|e| e.live()).map(Job::External))
            .collect();
        if live.is_empty() {
            return None;
        }
        run_parallel(live, opts.threads, |job| match job {
            Job::Search(w) => {
                let first_step = w.steps == 0;
                w.steps += 1;
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    if first_step && inject == Some(w.index) {
                        panic!("injected portfolio panic (worker {})", w.index);
                    }
                    w.step_to(epoch_end);
                }));
                if stepped.is_err() {
                    w.panicked = true;
                }
            }
            Job::External(e) => {
                let first_step = e.steps == 0;
                e.steps += 1;
                let index = e.index;
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    if first_step && inject == Some(index) {
                        panic!("injected portfolio panic (worker {index})");
                    }
                    e.worker.step_to(epoch_end);
                }));
                if stepped.is_err() {
                    e.panicked = true;
                }
            }
        });
        if workers.iter().any(|w| w.finished)
            || externals.iter().any(|e| !e.panicked && e.worker.finished())
        {
            // Fixed tie-break: the lowest-index finisher of the earliest
            // finishing epoch wins (all finishers of one epoch are known
            // here, thanks to the barrier). Externals sit after the
            // search roster in the global index order.
            return workers
                .iter()
                .position(|w| w.finished)
                .or_else(|| {
                    externals
                        .iter()
                        .position(|e| !e.panicked && e.worker.finished())
                        .map(|i| workers.len() + i)
                });
        }
        exchange(workers);
        epoch_end += epoch;
    }
}

/// Deterministic epoch barrier: collects every worker's outbox in
/// worker-index order into one batch and stages it into each live
/// worker's connection.
fn exchange<P: ProofSink, M: MetricsSink>(workers: &mut [Worker<'_, P, M>]) {
    let mut batch: Vec<ShareEntry> = Vec::new();
    for w in workers.iter_mut() {
        let (from, class) = (w.index, w.class);
        if let Some(conn) = w.solver.share_conn_mut() {
            for (lits, cube) in conn.take_outbox() {
                batch.push(ShareEntry { from, class, cube, lits });
            }
        }
    }
    if batch.is_empty() {
        return;
    }
    for w in workers.iter_mut() {
        if !w.live() {
            continue;
        }
        if let Some(conn) = w.solver.share_conn_mut() {
            conn.stage_batch(&batch);
        }
    }
}

/// Free-running driver: one thread per worker (search and external),
/// first finisher raises the stop flag; returns the winner index.
fn run_free<P, M>(
    workers: &mut [Worker<'_, P, M>],
    externals: &mut [ExternalSlot<'_>],
    opts: &PortfolioOptions,
) -> Option<usize>
where
    P: ProofSink + Send,
    M: MetricsSink + Send,
{
    let stop = Arc::new(AtomicBool::new(false));
    for w in workers.iter_mut() {
        w.solver.set_stop_flag(Arc::clone(&stop));
    }
    let first = Mutex::new(None::<usize>);
    let inject = opts.debug_panic_worker;
    thread::scope(|scope| {
        for w in workers.iter_mut() {
            let (stop, first) = (&stop, &first);
            scope.spawn(move || {
                let index = w.index;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if inject == Some(index) {
                        panic!("injected portfolio panic (worker {index})");
                    }
                    w.solver.solve_mut()
                }));
                match result {
                    Ok(out) => {
                        if let Some(v) = out.value() {
                            w.value = Some(v);
                            w.finished = true;
                            let mut g =
                                first.lock().unwrap_or_else(PoisonError::into_inner);
                            if g.is_none() {
                                *g = Some(index);
                            }
                            drop(g);
                            stop.store(true, Ordering::SeqCst);
                        } else if w.hard_budget_exhausted() {
                            w.timed_out = true;
                        }
                        // Otherwise: cancelled by the winner's stop flag.
                    }
                    Err(_) => w.panicked = true,
                }
            });
        }
        for e in externals.iter_mut() {
            let (stop, first) = (&stop, &first);
            scope.spawn(move || {
                let index = e.index;
                let worker = &mut e.worker;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if inject == Some(index) {
                        panic!("injected portfolio panic (worker {index})");
                    }
                    worker.run(stop);
                }));
                match result {
                    Ok(()) => {
                        if e.worker.finished() {
                            let mut g =
                                first.lock().unwrap_or_else(PoisonError::into_inner);
                            if g.is_none() {
                                *g = Some(index);
                            }
                            drop(g);
                            stop.store(true, Ordering::SeqCst);
                        }
                        // Else: own budget exhausted, or cancelled.
                    }
                    Err(_) => e.panicked = true,
                }
            });
        }
    });
    first.into_inner().unwrap_or_else(PoisonError::into_inner)
}

// ----------------------------------------------------------------------
// Entry points
// ----------------------------------------------------------------------

fn run_portfolio<'e, P, M>(
    variants: &[Variant],
    instruments: Vec<(P, M)>,
    external_workers: Vec<Box<dyn ExternalWorker + 'e>>,
    opts: &PortfolioOptions,
) -> PortfolioOutcome
where
    P: ProofSink + Send,
    M: MetricsSink + Send,
{
    assert!(
        !variants.is_empty() || !external_workers.is_empty(),
        "portfolio needs at least one worker"
    );
    assert_eq!(variants.len(), instruments.len());
    let mut externals: Vec<ExternalSlot<'e>> = external_workers
        .into_iter()
        .enumerate()
        .map(|(i, worker)| ExternalSlot {
            index: variants.len() + i,
            worker,
            panicked: false,
            steps: 0,
        })
        .collect();
    let mut workers: Vec<Worker<'_, P, M>> = variants
        .iter()
        .zip(instruments)
        .enumerate()
        .map(|(index, (v, (proof, metrics)))| Worker {
            index,
            class: v.class,
            node_limit: v.config.node_limit,
            conflict_limit: v.config.conflict_limit,
            solver: Solver::with_instruments(&v.qbf, v.config.clone(), NoopObserver, proof, metrics),
            value: None,
            finished: false,
            timed_out: false,
            panicked: false,
            steps: 0,
        })
        .collect();

    // Sharing is disabled under proof logging (an imported constraint
    // has no local derivation to certify) and pointless solo.
    let sharing = opts.share_len > 0 && !P::ENABLED && workers.len() > 1;
    if sharing {
        let pool = Arc::new(SharePool::default());
        for w in workers.iter_mut() {
            w.solver.attach_share(Box::new(ShareConn::new(
                Arc::clone(&pool),
                w.index,
                w.class,
                opts.share_len,
                opts.deterministic,
            )));
        }
    }

    let winner = if opts.deterministic {
        run_deterministic(&mut workers, &mut externals, opts)
    } else {
        run_free(&mut workers, &mut externals, opts)
    };

    let mut reports: Vec<WorkerReport> = workers
        .iter_mut()
        .map(|w| {
            let (exported, imported, discarded) = w
                .solver
                .share_conn_mut()
                .map_or((0, 0, 0), |c| (c.exported, c.imported, c.discarded));
            WorkerReport {
                label: variants[w.index].label.clone(),
                value: w.value,
                finished: w.finished,
                panicked: w.panicked,
                stats: w.solver.current_stats(),
                exported,
                imported,
                discarded,
                metrics_json: None,
                engine_fields: None,
            }
        })
        .collect();
    reports.extend(externals.iter().map(|e| WorkerReport {
        label: e.worker.label().to_string(),
        value: e.worker.value(),
        finished: !e.panicked && e.worker.finished(),
        panicked: e.panicked,
        stats: Stats::default(),
        exported: 0,
        imported: 0,
        discarded: 0,
        metrics_json: None,
        engine_fields: Some(e.worker.stat_fields()),
    }));

    PortfolioOutcome {
        value: winner.and_then(|i| reports[i].value),
        winner,
        deterministic: opts.deterministic,
        epoch: opts.epoch,
        share_len: if sharing { opts.share_len } else { 0 },
        workers: reports,
        certificate: None,
    }
}

/// Runs the portfolio without instrumentation. `variants` is the roster
/// (see `qbf_prenex::portfolio::roster`); every variant must share
/// matrix and variable numbering with the others.
pub fn solve(variants: &[Variant], opts: &PortfolioOptions) -> PortfolioOutcome {
    let instruments = variants.iter().map(|_| (NoProof, NoopMetrics)).collect();
    run_portfolio(variants, instruments, Vec::new(), opts)
}

/// Runs a **mixed** (cross-paradigm) portfolio: the search `variants`
/// race the boxed `externals` (e.g. expansion engines) in-process with
/// first-finisher cancellation. Constraint sharing stays search-only —
/// externals neither export nor import — and the deterministic lockstep
/// extends across paradigms, each worker interpreting the epoch bound
/// in its own cost metric. External workers sit after the search roster
/// in the report/winner index order.
pub fn solve_mixed<'e>(
    variants: &[Variant],
    externals: Vec<Box<dyn ExternalWorker + 'e>>,
    opts: &PortfolioOptions,
) -> PortfolioOutcome {
    let instruments = variants.iter().map(|_| (NoProof, NoopMetrics)).collect();
    run_portfolio(variants, instruments, externals, opts)
}

/// Runs the portfolio with every worker logging its own Q-resolution /
/// Q-consensus certificate; sharing is disabled (see the module docs).
/// The winning worker's concluded proof lands in
/// [`PortfolioOutcome::certificate`] — it verifies against the *base*
/// instance, because each variant's reductions are legal under every
/// order the variant's prefix extends.
pub fn solve_with_proof(variants: &[Variant], opts: &PortfolioOptions) -> PortfolioOutcome {
    let mut logs: Vec<ProofLog> = variants.iter().map(|_| ProofLog::new()).collect();
    let instruments: Vec<(&mut ProofLog, NoopMetrics)> =
        logs.iter_mut().map(|l| (l, NoopMetrics)).collect();
    let mut outcome = run_portfolio(variants, instruments, Vec::new(), opts);
    if let Some(w) = outcome.winner {
        if logs[w].is_concluded() {
            outcome.certificate = Some(logs[w].as_text().to_string());
        }
    }
    outcome
}

/// Runs the portfolio with a per-worker [`EngineMetrics`] wall-clock
/// instrument; each report's [`WorkerReport::metrics_json`] carries the
/// worker's phase-span/gauge snapshot.
pub fn solve_with_metrics(variants: &[Variant], opts: &PortfolioOptions) -> PortfolioOutcome {
    let mut sinks: Vec<EngineMetrics<WallClock>> = variants
        .iter()
        .map(|_| EngineMetrics::new(WallClock::new()))
        .collect();
    let instruments: Vec<(NoProof, &mut EngineMetrics<WallClock>)> =
        sinks.iter_mut().map(|m| (NoProof, m)).collect();
    let mut outcome = run_portfolio(variants, instruments, Vec::new(), opts);
    for (report, sink) in outcome.workers.iter_mut().zip(sinks.iter()) {
        report.metrics_json = Some(sink.snapshot_json());
    }
    outcome
}
