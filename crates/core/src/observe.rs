//! Search-trace observability: a zero-overhead-when-disabled event stream
//! threaded through both solving procedures.
//!
//! The engines ([`crate::solver::Solver`] and [`crate::recursive`]) are
//! generic over a [`SearchObserver`]; every interesting transition of the
//! search — decisions with their heuristic rank, propagations with their
//! reason kind, conflicts, solutions, learned constraints with size and
//! asserting level, backjumps, chronological fallbacks, forgetting and
//! score decay — is reported through the trait. The default
//! [`NoopObserver`] has empty inlineable methods, so the release hot path
//! compiles to exactly the un-instrumented code (this is pinned by a
//! determinism test — identical [`crate::solver::Stats`] with and without
//! an observer — and a timing bench in `crates/bench/benches/paper.rs`).
//!
//! Four observers ship with the crate:
//!
//! * [`TreeTrace`] — a Fig. 2-style indented search-tree renderer;
//! * [`JsonlTrace`] — one hand-rolled JSON object per event (hermetic: no
//!   serde, byte-deterministic across runs);
//! * [`Profiler`] — per-prefix-level decision histograms, learned-size
//!   histograms, propagation chain lengths, watcher-visit distributions
//!   and peak trail depth;
//! * [`Progress`] — periodic one-line status reports on stderr.
//!
//! Observers compose with [`MultiObserver`], and `&mut O` is itself an
//! observer, so a caller keeps ownership across a solve:
//!
//! ```
//! use qbf_core::observe::{Profiler, SearchObserver};
//! use qbf_core::{samples, solver::{Solver, SolverConfig}};
//!
//! let qbf = samples::paper_example();
//! let mut profiler = Profiler::new(&qbf);
//! let out = Solver::with_observer(&qbf, SolverConfig::partial_order(), &mut profiler)
//!     .solve();
//! assert_eq!(profiler.decisions(), out.stats.decisions);
//! ```

use std::fmt;

use crate::prefix::Prefix;
use crate::qbf::Qbf;
use crate::var::Lit;

/// Why a literal was assigned by propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationKind {
    /// Lemma 5 unit from a clause (original or learned nogood).
    UnitClause,
    /// Dual unit from a learned cube (the ∀-player falsifies it).
    UnitCube,
    /// Monotone (pure) literal fixing.
    Pure,
}

impl PropagationKind {
    /// Short lowercase tag used by the textual renderers.
    pub fn tag(self) -> &'static str {
        match self {
            PropagationKind::UnitClause => "unit",
            PropagationKind::UnitCube => "cube-unit",
            PropagationKind::Pure => "pure",
        }
    }
}

/// What kind of constraint was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnedKind {
    /// A nogood (clause) learned from a conflict.
    Clause,
    /// A good (cube) learned from a solution.
    Cube,
}

impl LearnedKind {
    /// Short lowercase tag used by the textual renderers.
    pub fn tag(self) -> &'static str {
        match self {
            LearnedKind::Clause => "clause",
            LearnedKind::Cube => "cube",
        }
    }
}

/// Receiver for search events.
///
/// Every method has an empty default body; implementors override the
/// events they care about. All arguments are cheap scalars so that the
/// no-op case (the [`NoopObserver`] default of the solvers) inlines away
/// entirely.
///
/// Event vocabulary (emitted by both engines unless noted):
///
/// * [`on_decision`](SearchObserver::on_decision) — a branching literal was
///   assigned; `score` is the branching heuristic's rank of the literal
///   (0 for the recursive solver, which branches positionally);
/// * [`on_propagation`](SearchObserver::on_propagation) — a literal was
///   assigned by the given [`PropagationKind`];
/// * [`on_conflict`](SearchObserver::on_conflict) /
///   [`on_solution`](SearchObserver::on_solution) — a leaf of the search
///   tree was reached;
/// * [`on_learned`](SearchObserver::on_learned) — iterative solver only:
///   a constraint was learned; `asserting_level` is the second-highest
///   decision level among its assigned literals (the level the constraint
///   would assert at after backjumping, 0 when it has fewer than two
///   levels);
/// * [`on_backjump`](SearchObserver::on_backjump) /
///   [`on_chrono_backtrack`](SearchObserver::on_chrono_backtrack) —
///   iterative solver only: the decision stack was unwound non-chronologically
///   (guided by a learned constraint) or by the chronological Q-DLL
///   fallback;
/// * [`on_forget`](SearchObserver::on_forget) /
///   [`on_decay`](SearchObserver::on_decay) — iterative solver only:
///   database reduction dropped `dropped` learned constraints / heuristic
///   scores were halved;
/// * [`on_watcher_visit`](SearchObserver::on_watcher_visit) — iterative
///   solver only: one watcher-list entry was examined (the propagation
///   cost measure; extremely hot, keep implementations trivial);
/// * [`on_blocker_hit`](SearchObserver::on_blocker_hit) — iterative solver
///   only: a watcher visit was resolved by its cached blocker literal
///   without touching the constraint arena (fired in addition to
///   `on_watcher_visit`; as hot as it);
/// * [`on_compaction`](SearchObserver::on_compaction) — iterative solver
///   only: database reduction physically compacted the constraint arenas,
///   reclaiming `reclaimed_bytes`.
pub trait SearchObserver: fmt::Debug {
    /// A branching decision `lit` was made, opening decision level `level`.
    #[inline]
    fn on_decision(&mut self, lit: Lit, level: u32, trail_depth: usize, flipped: bool, score: f64) {
        let _ = (lit, level, trail_depth, flipped, score);
    }

    /// `lit` was assigned by propagation at decision level `level`.
    #[inline]
    fn on_propagation(&mut self, lit: Lit, level: u32, trail_depth: usize, kind: PropagationKind) {
        let _ = (lit, level, trail_depth, kind);
    }

    /// A conflict (falsified clause / contradictory leaf) was reached.
    #[inline]
    fn on_conflict(&mut self, level: u32, trail_depth: usize) {
        let _ = (level, trail_depth);
    }

    /// A solution (satisfied matrix / validated cube) was reached.
    #[inline]
    fn on_solution(&mut self, level: u32, trail_depth: usize) {
        let _ = (level, trail_depth);
    }

    /// A constraint of `size` literals was learned.
    #[inline]
    fn on_learned(&mut self, kind: LearnedKind, size: usize, asserting_level: u32) {
        let _ = (kind, size, asserting_level);
    }

    /// One level (`from → to`, `to = from - 1`) was popped
    /// non-chronologically during constraint-guided unwinding. Fired once
    /// per skipped level, so counting these events reproduces
    /// `Stats::backjumps` exactly.
    #[inline]
    fn on_backjump(&mut self, from: u32, to: u32) {
        let _ = (from, to);
    }

    /// The chronological fallback unwound `from → to` (flipping a
    /// decision, or `to = 0` when it exhausted the stack and decided the
    /// formula). Fired exactly once per fallback, matching
    /// `Stats::chrono_backtracks`.
    #[inline]
    fn on_chrono_backtrack(&mut self, from: u32, to: u32) {
        let _ = (from, to);
    }

    /// Database reduction dropped `dropped` learned constraints.
    #[inline]
    fn on_forget(&mut self, dropped: usize) {
        let _ = dropped;
    }

    /// Heuristic scores were decayed (halved).
    #[inline]
    fn on_decay(&mut self) {}

    /// One watcher-list entry was visited during propagation.
    #[inline]
    fn on_watcher_visit(&mut self) {}

    /// A watcher visit was satisfied by its cached blocker literal.
    #[inline]
    fn on_blocker_hit(&mut self) {}

    /// The constraint arenas were compacted, reclaiming `reclaimed_bytes`.
    #[inline]
    fn on_compaction(&mut self, reclaimed_bytes: usize) {
        let _ = reclaimed_bytes;
    }
}

/// The do-nothing observer: the solvers' default type parameter. All its
/// methods are the trait's empty inlineable defaults, so an un-observed
/// solve compiles to the exact pre-observability hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl SearchObserver for NoopObserver {}

/// A mutable reference forwards, so callers can keep ownership of an
/// observer across `Solver::with_observer(..).solve()`.
impl<T: SearchObserver + ?Sized> SearchObserver for &mut T {
    #[inline]
    fn on_decision(&mut self, lit: Lit, level: u32, trail_depth: usize, flipped: bool, score: f64) {
        (**self).on_decision(lit, level, trail_depth, flipped, score);
    }
    #[inline]
    fn on_propagation(&mut self, lit: Lit, level: u32, trail_depth: usize, kind: PropagationKind) {
        (**self).on_propagation(lit, level, trail_depth, kind);
    }
    #[inline]
    fn on_conflict(&mut self, level: u32, trail_depth: usize) {
        (**self).on_conflict(level, trail_depth);
    }
    #[inline]
    fn on_solution(&mut self, level: u32, trail_depth: usize) {
        (**self).on_solution(level, trail_depth);
    }
    #[inline]
    fn on_learned(&mut self, kind: LearnedKind, size: usize, asserting_level: u32) {
        (**self).on_learned(kind, size, asserting_level);
    }
    #[inline]
    fn on_backjump(&mut self, from: u32, to: u32) {
        (**self).on_backjump(from, to);
    }
    #[inline]
    fn on_chrono_backtrack(&mut self, from: u32, to: u32) {
        (**self).on_chrono_backtrack(from, to);
    }
    #[inline]
    fn on_forget(&mut self, dropped: usize) {
        (**self).on_forget(dropped);
    }
    #[inline]
    fn on_decay(&mut self) {
        (**self).on_decay();
    }
    #[inline]
    fn on_watcher_visit(&mut self) {
        (**self).on_watcher_visit();
    }
    #[inline]
    fn on_blocker_hit(&mut self) {
        (**self).on_blocker_hit();
    }
    #[inline]
    fn on_compaction(&mut self, reclaimed_bytes: usize) {
        (**self).on_compaction(reclaimed_bytes);
    }
}

/// Fan-out to several observers (used by the `qbfsolve` CLI to combine
/// `--trace`, `--trace-json`, `--profile` and `--progress`).
#[derive(Debug, Default)]
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn SearchObserver>,
}

impl<'a> MultiObserver<'a> {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        MultiObserver::default()
    }

    /// Adds an observer to the fan-out.
    pub fn push(&mut self, obs: &'a mut dyn SearchObserver) {
        self.observers.push(obs);
    }

    /// Whether no observer is attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

macro_rules! fan_out {
    ($self:ident, $method:ident $(, $arg:ident)*) => {
        for obs in $self.observers.iter_mut() {
            obs.$method($($arg),*);
        }
    };
}

impl SearchObserver for MultiObserver<'_> {
    fn on_decision(&mut self, lit: Lit, level: u32, trail_depth: usize, flipped: bool, score: f64) {
        fan_out!(self, on_decision, lit, level, trail_depth, flipped, score);
    }
    fn on_propagation(&mut self, lit: Lit, level: u32, trail_depth: usize, kind: PropagationKind) {
        fan_out!(self, on_propagation, lit, level, trail_depth, kind);
    }
    fn on_conflict(&mut self, level: u32, trail_depth: usize) {
        fan_out!(self, on_conflict, level, trail_depth);
    }
    fn on_solution(&mut self, level: u32, trail_depth: usize) {
        fan_out!(self, on_solution, level, trail_depth);
    }
    fn on_learned(&mut self, kind: LearnedKind, size: usize, asserting_level: u32) {
        fan_out!(self, on_learned, kind, size, asserting_level);
    }
    fn on_backjump(&mut self, from: u32, to: u32) {
        fan_out!(self, on_backjump, from, to);
    }
    fn on_chrono_backtrack(&mut self, from: u32, to: u32) {
        fan_out!(self, on_chrono_backtrack, from, to);
    }
    fn on_forget(&mut self, dropped: usize) {
        fan_out!(self, on_forget, dropped);
    }
    fn on_decay(&mut self) {
        fan_out!(self, on_decay);
    }
    fn on_watcher_visit(&mut self) {
        fan_out!(self, on_watcher_visit);
    }
    fn on_blocker_hit(&mut self) {
        fan_out!(self, on_blocker_hit);
    }
    fn on_compaction(&mut self, reclaimed_bytes: usize) {
        fan_out!(self, on_compaction, reclaimed_bytes);
    }
}

// ----------------------------------------------------------------------
// TreeTrace
// ----------------------------------------------------------------------

/// Renders the explored search tree as indented text in the style of the
/// paper's Fig. 2: one line per assignment, indented by decision level,
/// with `CONFLICT` / `SOLUTION` leaf markers and backjump annotations.
///
/// Attached to the recursive Q-DLL on the running example it reproduces
/// the Fig. 2 trace shape (see the golden test in this module); attached
/// to the iterative solver it shows the trail structure of the QDPLL
/// search, flips and backjumps included.
#[derive(Debug, Default)]
pub struct TreeTrace {
    out: String,
}

impl TreeTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        TreeTrace::default()
    }

    fn line(&mut self, indent: u32, text: &str) {
        for _ in 0..indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// The rendered trace so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the observer, returning the rendered trace.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl SearchObserver for TreeTrace {
    fn on_decision(&mut self, lit: Lit, level: u32, _trail_depth: usize, flipped: bool, _score: f64) {
        let tag = if flipped { "flip" } else { "branch" };
        self.line(level.saturating_sub(1), &format!("{lit} ({tag})"));
    }
    fn on_propagation(&mut self, lit: Lit, level: u32, _trail_depth: usize, kind: PropagationKind) {
        self.line(level, &format!("{lit} ({})", kind.tag()));
    }
    fn on_conflict(&mut self, level: u32, _trail_depth: usize) {
        self.line(level, "CONFLICT");
    }
    fn on_solution(&mut self, level: u32, _trail_depth: usize) {
        self.line(level, "SOLUTION");
    }
    fn on_learned(&mut self, kind: LearnedKind, size: usize, asserting_level: u32) {
        self.line(0, &format!("* learn {}[{size}] @{asserting_level}", kind.tag()));
    }
    fn on_backjump(&mut self, from: u32, to: u32) {
        self.line(to, &format!("<- backjump {from}->{to}"));
    }
    fn on_chrono_backtrack(&mut self, from: u32, to: u32) {
        self.line(to.saturating_sub(1), &format!("<- chrono {from}->{to}"));
    }
}

// ----------------------------------------------------------------------
// JsonlTrace
// ----------------------------------------------------------------------

/// Serializes every event as one JSON object per line (JSONL).
///
/// The JSON is hand-rolled (the workspace is hermetic; no serde) and
/// **byte-deterministic**: field order is fixed, numbers are rendered with
/// Rust's shortest-roundtrip formatting, and no timestamps are recorded,
/// so two runs of the same deterministic solve produce identical bytes.
///
/// Schema, one of (by `"e"`):
///
/// ```json
/// {"e":"decision","lit":-3,"level":2,"trail":5,"flipped":false,"score":4.5}
/// {"e":"propagation","lit":7,"level":2,"trail":6,"kind":"unit"}
/// {"e":"conflict","level":2,"trail":6}
/// {"e":"solution","level":3,"trail":7}
/// {"e":"learned","kind":"clause","size":2,"asserting_level":1}
/// {"e":"backjump","from":4,"to":1}
/// {"e":"chrono","from":4,"to":4}
/// {"e":"forget","dropped":12}
/// {"e":"decay"}
/// ```
///
/// Watcher visits are far too hot for one-line-per-event serialization;
/// they are counted and emitted as a single trailing
/// `{"e":"watcher_visits","count":N}` record by [`JsonlTrace::finish`].
#[derive(Debug, Default)]
pub struct JsonlTrace {
    buf: String,
    watcher_visits: u64,
}

impl JsonlTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        JsonlTrace::default()
    }

    /// The serialized events so far (without the trailing watcher-visit
    /// summary; see [`JsonlTrace::finish`]).
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Appends the watcher-visit summary record and returns the full
    /// JSONL document.
    pub fn finish(mut self) -> String {
        self.buf.push_str(&format!(
            "{{\"e\":\"watcher_visits\",\"count\":{}}}\n",
            self.watcher_visits
        ));
        self.buf
    }
}

impl SearchObserver for JsonlTrace {
    fn on_decision(&mut self, lit: Lit, level: u32, trail_depth: usize, flipped: bool, score: f64) {
        self.buf.push_str(&format!(
            "{{\"e\":\"decision\",\"lit\":{},\"level\":{level},\"trail\":{trail_depth},\"flipped\":{flipped},\"score\":{score}}}\n",
            lit.to_dimacs()
        ));
    }
    fn on_propagation(&mut self, lit: Lit, level: u32, trail_depth: usize, kind: PropagationKind) {
        self.buf.push_str(&format!(
            "{{\"e\":\"propagation\",\"lit\":{},\"level\":{level},\"trail\":{trail_depth},\"kind\":\"{}\"}}\n",
            lit.to_dimacs(),
            kind.tag()
        ));
    }
    fn on_conflict(&mut self, level: u32, trail_depth: usize) {
        self.buf.push_str(&format!(
            "{{\"e\":\"conflict\",\"level\":{level},\"trail\":{trail_depth}}}\n"
        ));
    }
    fn on_solution(&mut self, level: u32, trail_depth: usize) {
        self.buf.push_str(&format!(
            "{{\"e\":\"solution\",\"level\":{level},\"trail\":{trail_depth}}}\n"
        ));
    }
    fn on_learned(&mut self, kind: LearnedKind, size: usize, asserting_level: u32) {
        self.buf.push_str(&format!(
            "{{\"e\":\"learned\",\"kind\":\"{}\",\"size\":{size},\"asserting_level\":{asserting_level}}}\n",
            kind.tag()
        ));
    }
    fn on_backjump(&mut self, from: u32, to: u32) {
        self.buf
            .push_str(&format!("{{\"e\":\"backjump\",\"from\":{from},\"to\":{to}}}\n"));
    }
    fn on_chrono_backtrack(&mut self, from: u32, to: u32) {
        self.buf
            .push_str(&format!("{{\"e\":\"chrono\",\"from\":{from},\"to\":{to}}}\n"));
    }
    fn on_forget(&mut self, dropped: usize) {
        self.buf
            .push_str(&format!("{{\"e\":\"forget\",\"dropped\":{dropped}}}\n"));
    }
    fn on_decay(&mut self) {
        self.buf.push_str("{\"e\":\"decay\"}\n");
    }
    fn on_watcher_visit(&mut self) {
        self.watcher_visits += 1;
    }
}

// ----------------------------------------------------------------------
// Profiler
// ----------------------------------------------------------------------

/// A small fixed-shape histogram: exact buckets `0..cap`, one overflow
/// bucket, plus count / sum / max.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with exact buckets for values `< cap`.
    pub fn new(cap: usize) -> Self {
        Histogram {
            buckets: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn add(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Renders `value:count` pairs for the non-empty buckets, plus the
    /// overflow bucket as `>=cap:count`.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| format!("{v}:{c}"))
            .collect();
        if self.overflow > 0 {
            parts.push(format!(">={}:{}", self.buckets.len(), self.overflow));
        }
        if parts.is_empty() {
            "(empty)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Aggregates where the search spends its work: decision counts per
/// prefix level, learned-constraint size histograms, propagation chain
/// lengths, watcher visits per propagation, and peak trail depth.
///
/// The histogram totals are cross-checked against the corresponding
/// [`crate::solver::Stats`] counters by the test suite, so the profiler
/// and the engine cannot silently drift apart.
#[derive(Debug)]
pub struct Profiler {
    /// Prefix level per variable (0 for unbound), captured at creation.
    var_level: Vec<u32>,
    /// Decisions per prefix level of the decided variable.
    decisions_per_level: Vec<u64>,
    flipped_decisions: u64,
    unit_propagations: u64,
    cube_propagations: u64,
    pure_propagations: u64,
    conflicts: u64,
    solutions: u64,
    backjumps: u64,
    chrono_backtracks: u64,
    forgotten: u64,
    decays: u64,
    watcher_visits: u64,
    blocker_hits: u64,
    compactions: u64,
    bytes_reclaimed: u64,
    learned_clause_sizes: Histogram,
    learned_cube_sizes: Histogram,
    chain_lengths: Histogram,
    visits_per_propagation: Histogram,
    current_chain: u64,
    visits_since_propagation: u64,
    peak_trail_depth: usize,
}

impl Profiler {
    /// Prepares a profiler for instances of `qbf`'s shape.
    pub fn new(qbf: &Qbf) -> Self {
        Profiler::for_prefix(qbf.prefix())
    }

    /// Prepares a profiler from a prefix alone.
    pub fn for_prefix(prefix: &Prefix) -> Self {
        let var_level: Vec<u32> = (0..prefix.num_vars())
            .map(|i| prefix.level(crate::var::Var::new(i)).unwrap_or(0))
            .collect();
        let levels = prefix.prefix_level() as usize + 1;
        Profiler {
            var_level,
            decisions_per_level: vec![0; levels.max(1)],
            flipped_decisions: 0,
            unit_propagations: 0,
            cube_propagations: 0,
            pure_propagations: 0,
            conflicts: 0,
            solutions: 0,
            backjumps: 0,
            chrono_backtracks: 0,
            forgotten: 0,
            decays: 0,
            watcher_visits: 0,
            blocker_hits: 0,
            compactions: 0,
            bytes_reclaimed: 0,
            learned_clause_sizes: Histogram::new(32),
            learned_cube_sizes: Histogram::new(32),
            chain_lengths: Histogram::new(32),
            visits_per_propagation: Histogram::new(32),
            current_chain: 0,
            visits_since_propagation: 0,
            peak_trail_depth: 0,
        }
    }

    fn close_chain(&mut self) {
        if self.current_chain > 0 {
            let c = self.current_chain;
            self.chain_lengths.add(c);
            self.current_chain = 0;
        }
    }

    /// Total decisions observed.
    pub fn decisions(&self) -> u64 {
        self.decisions_per_level.iter().sum()
    }

    /// Unit propagations observed (clause + cube units; excludes pures).
    pub fn propagations(&self) -> u64 {
        self.unit_propagations + self.cube_propagations
    }

    /// Pure-literal fixings observed.
    pub fn pures(&self) -> u64 {
        self.pure_propagations
    }

    /// Conflicts observed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Solutions observed.
    pub fn solutions(&self) -> u64 {
        self.solutions
    }

    /// Learned nogoods observed.
    pub fn learned_clauses(&self) -> u64 {
        self.learned_clause_sizes.count()
    }

    /// Learned goods observed.
    pub fn learned_cubes(&self) -> u64 {
        self.learned_cube_sizes.count()
    }

    /// Non-chronological unwind events observed. One engine-level
    /// `Stats::backjumps` increment corresponds to one popped level, while
    /// this counts unwind *events* `from → to`; compare sums of `from-to`.
    pub fn backjumps(&self) -> u64 {
        self.backjumps
    }

    /// Chronological fallback flips observed.
    pub fn chrono_backtracks(&self) -> u64 {
        self.chrono_backtracks
    }

    /// Learned constraints dropped by database reduction.
    pub fn forgotten(&self) -> u64 {
        self.forgotten
    }

    /// Watcher-list entries visited.
    pub fn watcher_visits(&self) -> u64 {
        self.watcher_visits
    }

    /// Watcher visits resolved by the cached blocker literal.
    pub fn blocker_hits(&self) -> u64 {
        self.blocker_hits
    }

    /// Arena compaction passes observed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Arena bytes reclaimed by compaction.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.bytes_reclaimed
    }

    /// Deepest trail observed.
    pub fn peak_trail_depth(&self) -> usize {
        self.peak_trail_depth
    }

    /// Decision counts indexed by prefix level of the decided variable.
    pub fn decisions_per_level(&self) -> &[u64] {
        &self.decisions_per_level
    }

    /// Histogram of learned nogood sizes.
    pub fn learned_clause_sizes(&self) -> &Histogram {
        &self.learned_clause_sizes
    }

    /// Histogram of learned good sizes.
    pub fn learned_cube_sizes(&self) -> &Histogram {
        &self.learned_cube_sizes
    }

    /// Histogram of propagation chain lengths (consecutive propagations
    /// between decisions/leaves).
    pub fn chain_lengths(&self) -> &Histogram {
        &self.chain_lengths
    }

    /// Histogram of watcher visits attributable to each propagation.
    pub fn visits_per_propagation(&self) -> &Histogram {
        &self.visits_per_propagation
    }

    /// Renders the full profile as indented plain text.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str("search profile\n");
        s.push_str(&format!(
            "  decisions            {} ({} flips)\n",
            self.decisions(),
            self.flipped_decisions
        ));
        s.push_str("  decisions/prefix-level ");
        let parts: Vec<String> = self
            .decisions_per_level
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, &c)| format!("{l}:{c}"))
            .collect();
        s.push_str(if parts.is_empty() { "(none)" } else { "" });
        s.push_str(&parts.join(" "));
        s.push('\n');
        s.push_str(&format!(
            "  propagations         {} clause-unit, {} cube-unit, {} pure\n",
            self.unit_propagations, self.cube_propagations, self.pure_propagations
        ));
        s.push_str(&format!(
            "  chain lengths        mean {:.2}, max {} | {}\n",
            self.chain_lengths.mean(),
            self.chain_lengths.max(),
            self.chain_lengths.render()
        ));
        s.push_str(&format!(
            "  watcher visits       {} total, {:.2}/propagation (max {})\n",
            self.watcher_visits,
            self.visits_per_propagation.mean(),
            self.visits_per_propagation.max()
        ));
        s.push_str(&format!(
            "  blocker hits         {} ({:.1}% of visits)\n",
            self.blocker_hits,
            if self.watcher_visits == 0 {
                0.0
            } else {
                100.0 * self.blocker_hits as f64 / self.watcher_visits as f64
            }
        ));
        s.push_str(&format!(
            "  compactions          {} ({} bytes reclaimed)\n",
            self.compactions, self.bytes_reclaimed
        ));
        s.push_str(&format!(
            "  conflicts/solutions  {} / {}\n",
            self.conflicts, self.solutions
        ));
        s.push_str(&format!(
            "  learned clauses      {} | sizes mean {:.2} max {} | {}\n",
            self.learned_clauses(),
            self.learned_clause_sizes.mean(),
            self.learned_clause_sizes.max(),
            self.learned_clause_sizes.render()
        ));
        s.push_str(&format!(
            "  learned cubes        {} | sizes mean {:.2} max {} | {}\n",
            self.learned_cubes(),
            self.learned_cube_sizes.mean(),
            self.learned_cube_sizes.max(),
            self.learned_cube_sizes.render()
        ));
        s.push_str(&format!(
            "  backjumps/chrono     {} / {}\n",
            self.backjumps, self.chrono_backtracks
        ));
        s.push_str(&format!(
            "  forgotten/decays     {} / {}\n",
            self.forgotten, self.decays
        ));
        s.push_str(&format!(
            "  peak trail depth     {}\n",
            self.peak_trail_depth
        ));
        s
    }
}

impl SearchObserver for Profiler {
    fn on_decision(&mut self, lit: Lit, _level: u32, trail_depth: usize, flipped: bool, _score: f64) {
        self.close_chain();
        let l = self
            .var_level
            .get(lit.var().index())
            .copied()
            .unwrap_or(0) as usize;
        if l >= self.decisions_per_level.len() {
            self.decisions_per_level.resize(l + 1, 0);
        }
        self.decisions_per_level[l] += 1;
        if flipped {
            self.flipped_decisions += 1;
        }
        self.peak_trail_depth = self.peak_trail_depth.max(trail_depth);
    }
    fn on_propagation(&mut self, _lit: Lit, _level: u32, trail_depth: usize, kind: PropagationKind) {
        match kind {
            PropagationKind::UnitClause => self.unit_propagations += 1,
            PropagationKind::UnitCube => self.cube_propagations += 1,
            PropagationKind::Pure => self.pure_propagations += 1,
        }
        self.current_chain += 1;
        let v = self.visits_since_propagation;
        self.visits_per_propagation.add(v);
        self.visits_since_propagation = 0;
        self.peak_trail_depth = self.peak_trail_depth.max(trail_depth);
    }
    fn on_conflict(&mut self, _level: u32, trail_depth: usize) {
        self.close_chain();
        self.conflicts += 1;
        self.peak_trail_depth = self.peak_trail_depth.max(trail_depth);
    }
    fn on_solution(&mut self, _level: u32, trail_depth: usize) {
        self.close_chain();
        self.solutions += 1;
        self.peak_trail_depth = self.peak_trail_depth.max(trail_depth);
    }
    fn on_learned(&mut self, kind: LearnedKind, size: usize, _asserting_level: u32) {
        match kind {
            LearnedKind::Clause => self.learned_clause_sizes.add(size as u64),
            LearnedKind::Cube => self.learned_cube_sizes.add(size as u64),
        }
    }
    fn on_backjump(&mut self, _from: u32, _to: u32) {
        self.backjumps += 1;
    }
    fn on_chrono_backtrack(&mut self, _from: u32, _to: u32) {
        self.chrono_backtracks += 1;
    }
    fn on_forget(&mut self, dropped: usize) {
        self.forgotten += dropped as u64;
    }
    fn on_decay(&mut self) {
        self.decays += 1;
    }
    fn on_watcher_visit(&mut self) {
        self.watcher_visits += 1;
        self.visits_since_propagation += 1;
    }
    fn on_blocker_hit(&mut self) {
        self.blocker_hits += 1;
    }
    fn on_compaction(&mut self, reclaimed_bytes: usize) {
        self.compactions += 1;
        self.bytes_reclaimed += reclaimed_bytes as u64;
    }
}

// ----------------------------------------------------------------------
// Progress
// ----------------------------------------------------------------------

/// Where [`Progress`] sends its status lines.
#[derive(Debug)]
pub enum ProgressSink {
    /// Print each line to stderr as it happens (the CLI default).
    Stderr,
    /// Collect the lines in memory for the caller to drain — how
    /// `qbfserve` routes progress into its metrics/snapshot stream
    /// instead of polluting the service's stderr.
    Buffer(Vec<String>),
}

/// Emits a one-line status report every `interval` leaves (conflicts +
/// solutions), QUBE/MiniSat style, to a configurable [`ProgressSink`].
#[derive(Debug)]
pub struct Progress {
    interval: u64,
    sink: ProgressSink,
    leaves: u64,
    decisions: u64,
    propagations: u64,
    learned: u64,
    level: u32,
    trail: usize,
}

impl Progress {
    /// Reports every `interval` conflicts+solutions to stderr
    /// (`interval == 0` reports nothing).
    pub fn new(interval: u64) -> Self {
        Progress::with_sink(interval, ProgressSink::Stderr)
    }

    /// Buffering variant of [`Progress::new`]: lines accumulate in
    /// memory until [`Progress::take_lines`] drains them.
    pub fn buffered(interval: u64) -> Self {
        Progress::with_sink(interval, ProgressSink::Buffer(Vec::new()))
    }

    /// Reports every `interval` conflicts+solutions into `sink`.
    pub fn with_sink(interval: u64, sink: ProgressSink) -> Self {
        Progress {
            interval,
            sink,
            leaves: 0,
            decisions: 0,
            propagations: 0,
            learned: 0,
            level: 0,
            trail: 0,
        }
    }

    /// Drains the buffered status lines (empty for a stderr sink, whose
    /// lines were already printed).
    pub fn take_lines(&mut self) -> Vec<String> {
        match &mut self.sink {
            ProgressSink::Stderr => Vec::new(),
            ProgressSink::Buffer(lines) => std::mem::take(lines),
        }
    }

    fn leaf(&mut self, level: u32, trail: usize) {
        self.leaves += 1;
        self.level = level;
        self.trail = trail;
        if self.interval > 0 && self.leaves.is_multiple_of(self.interval) {
            let line = format!(
                "c progress: {} leaves | {} decisions | {} propagations | {} learned | level {} | trail {}",
                self.leaves, self.decisions, self.propagations, self.learned, self.level, self.trail
            );
            match &mut self.sink {
                ProgressSink::Stderr => eprintln!("{line}"),
                ProgressSink::Buffer(lines) => lines.push(line),
            }
        }
    }
}

impl SearchObserver for Progress {
    fn on_decision(&mut self, _lit: Lit, level: u32, trail_depth: usize, _flipped: bool, _score: f64) {
        self.decisions += 1;
        self.level = level;
        self.trail = trail_depth;
    }
    fn on_propagation(&mut self, _lit: Lit, _level: u32, _trail_depth: usize, _kind: PropagationKind) {
        self.propagations += 1;
    }
    fn on_conflict(&mut self, level: u32, trail_depth: usize) {
        self.leaf(level, trail_depth);
    }
    fn on_solution(&mut self, level: u32, trail_depth: usize) {
        self.leaf(level, trail_depth);
    }
    fn on_learned(&mut self, _kind: LearnedKind, _size: usize, _asserting_level: u32) {
        self.learned += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursive::{self, RecursiveConfig};
    use crate::samples;
    use crate::solver::{Solver, SolverConfig};

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 3, 9] {
            h.add(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 14);
        assert_eq!(h.max(), 9);
        assert_eq!(h.render(), "0:1 1:2 3:1 >=4:1");
        assert!(Histogram::new(2).render().contains("empty"));
    }

    #[test]
    fn multi_observer_fans_out() {
        let mut a = Profiler::new(&samples::paper_example());
        let mut b = Profiler::new(&samples::paper_example());
        {
            let mut multi = MultiObserver::new();
            multi.push(&mut a);
            multi.push(&mut b);
            assert!(!multi.is_empty());
            let qbf = samples::paper_example();
            Solver::with_observer(&qbf, SolverConfig::partial_order(), multi).solve();
        }
        assert!(a.decisions() > 0);
        assert_eq!(a.decisions(), b.decisions());
        assert_eq!(a.watcher_visits(), b.watcher_visits());
    }

    #[test]
    fn jsonl_trace_is_line_shaped() {
        let qbf = samples::paper_example();
        let mut trace = JsonlTrace::new();
        Solver::with_observer(&qbf, SolverConfig::partial_order(), &mut trace).solve();
        let text = trace.finish();
        assert!(text.lines().count() > 5);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line}");
            assert!(line.contains("\"e\":\""));
        }
        assert!(text.contains("\"e\":\"decision\""));
        assert!(text.contains("\"e\":\"learned\""));
        assert!(text.contains("\"e\":\"watcher_visits\""));
    }

    #[test]
    fn jsonl_trace_is_deterministic() {
        // Byte-identical across two runs of the same deterministic solve.
        let qbf = samples::paper_example();
        let run = || {
            let mut trace = JsonlTrace::new();
            Solver::with_observer(&qbf, SolverConfig::partial_order(), &mut trace).solve();
            trace.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tree_trace_renders_recursive_run() {
        let cfg = RecursiveConfig {
            pure_literals: false,
            ..RecursiveConfig::default()
        };
        let mut trace = TreeTrace::new();
        let out = recursive::solve_with_observer(&samples::paper_example(), &cfg, &mut trace);
        assert_eq!(out.value, Some(false));
        let text = trace.into_string();
        assert!(text.contains("(branch)"));
        assert!(text.contains("(unit)"));
        assert!(text.contains("CONFLICT"));
    }

    #[test]
    fn progress_counts_leaves() {
        let qbf = samples::unsat_instance();
        let mut progress = Progress::new(0); // interval 0: never prints
        let out = Solver::with_observer(&qbf, SolverConfig::partial_order(), &mut progress).solve();
        assert_eq!(progress.leaves, out.stats.conflicts + out.stats.solutions);
        assert_eq!(progress.decisions, out.stats.decisions);
    }

    #[test]
    fn progress_buffer_sink_collects_lines() {
        let qbf = samples::paper_example();
        let mut progress = Progress::buffered(1); // one line per leaf
        let out = Solver::with_observer(&qbf, SolverConfig::partial_order(), &mut progress).solve();
        let lines = progress.take_lines();
        assert_eq!(
            lines.len() as u64,
            out.stats.conflicts + out.stats.solutions,
            "one buffered line per leaf at interval 1"
        );
        assert!(lines[0].starts_with("c progress: 1 leaves"));
        assert!(progress.take_lines().is_empty(), "take_lines drains");
    }
}
