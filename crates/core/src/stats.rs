//! Instance statistics: the structural metrics the paper's experimental
//! sections report about their benchmark families.

use std::fmt;

use crate::qbf::Qbf;

/// Structural metrics of a QBF instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Total variable universe.
    pub num_vars: usize,
    /// Bound existential variables.
    pub existentials: usize,
    /// Bound universal variables.
    pub universals: usize,
    /// Number of clauses.
    pub clauses: usize,
    /// Total literal occurrences.
    pub literals: usize,
    /// Minimum / mean / maximum clause width.
    pub clause_width: (usize, f64, usize),
    /// Prefix level (number of alternations along the deepest chain).
    pub prefix_level: u32,
    /// Number of blocks in the quantifier forest.
    pub blocks: usize,
    /// Number of roots (independent subtrees).
    pub roots: usize,
    /// Whether the prefix is prenex.
    pub prenex: bool,
    /// Fraction (%) of (existential, universal) pairs left `≺`-unordered —
    /// 100 means fully independent, 0 means totally ordered. This is the
    /// structure a prenexing step would destroy (cf. footnote 9's PO/TO).
    pub free_pair_percent: f64,
}

impl InstanceStats {
    /// Computes the metrics of a QBF.
    ///
    /// # Examples
    ///
    /// ```
    /// use qbf_core::{samples, stats::InstanceStats};
    /// let s = InstanceStats::of(&samples::paper_example());
    /// assert_eq!(s.num_vars, 7);
    /// assert_eq!(s.universals, 2);
    /// assert_eq!(s.prefix_level, 3);
    /// assert!(!s.prenex);
    /// assert!(s.free_pair_percent > 0.0); // y1 vs x3/x4 etc. are free
    /// ```
    pub fn of(qbf: &Qbf) -> Self {
        let prefix = qbf.prefix();
        let mut existentials = 0;
        let mut universals = 0;
        for v in prefix.bound_vars() {
            if prefix.is_universal(v) {
                universals += 1;
            } else {
                existentials += 1;
            }
        }
        let widths: Vec<usize> = qbf.matrix().iter().map(|c| c.len()).collect();
        let literals: usize = widths.iter().sum();
        let clause_width = if widths.is_empty() {
            (0, 0.0, 0)
        } else {
            (
                *widths.iter().min().expect("non-empty"),
                literals as f64 / widths.len() as f64,
                *widths.iter().max().expect("non-empty"),
            )
        };
        // free (existential, universal) pairs
        let e_vars: Vec<_> = prefix
            .bound_vars()
            .filter(|&v| prefix.is_existential(v))
            .collect();
        let a_vars: Vec<_> = prefix
            .bound_vars()
            .filter(|&v| prefix.is_universal(v))
            .collect();
        let total_pairs = e_vars.len() * a_vars.len();
        let mut free = 0usize;
        for &x in &e_vars {
            for &y in &a_vars {
                if !prefix.precedes(x, y) && !prefix.precedes(y, x) {
                    free += 1;
                }
            }
        }
        InstanceStats {
            num_vars: qbf.num_vars(),
            existentials,
            universals,
            clauses: qbf.matrix().len(),
            literals,
            clause_width,
            prefix_level: prefix.prefix_level(),
            blocks: prefix.num_blocks(),
            roots: prefix.roots().len(),
            prenex: qbf.is_prenex(),
            free_pair_percent: if total_pairs == 0 {
                0.0
            } else {
                100.0 * free as f64 / total_pairs as f64
            },
        }
    }
}

impl fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} vars ({}∃ / {}∀), {} clauses, {} literals",
            self.num_vars, self.existentials, self.universals, self.clauses, self.literals
        )?;
        writeln!(
            f,
            "clause width min/mean/max: {}/{:.1}/{}",
            self.clause_width.0, self.clause_width.1, self.clause_width.2
        )?;
        write!(
            f,
            "prefix: level {}, {} blocks, {} roots, {}; free ∃/∀ pairs: {:.1}%",
            self.prefix_level,
            self.blocks,
            self.roots,
            if self.prenex { "prenex" } else { "non-prenex" },
            self.free_pair_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn paper_example_metrics() {
        let s = InstanceStats::of(&samples::paper_example());
        assert_eq!(s.existentials, 5);
        assert_eq!(s.universals, 2);
        assert_eq!(s.clauses, 8);
        assert_eq!(s.clause_width.0, 2);
        assert_eq!(s.clause_width.2, 3);
        assert_eq!(s.blocks, 5);
        assert_eq!(s.roots, 1);
        // y1 is ordered against x0,x1,x2 but free against x3,x4 (and
        // symmetrically y2): 4 free of 10 pairs.
        assert!((s.free_pair_percent - 40.0).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("non-prenex"));
        assert!(text.contains("40.0%"));
    }

    #[test]
    fn prenex_has_no_free_pairs() {
        let s = InstanceStats::of(&samples::exists_forall_xor());
        assert!(s.prenex);
        assert_eq!(s.free_pair_percent, 0.0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        use crate::{Matrix, Prefix, Qbf};
        let q = Qbf::new(Prefix::empty(0), Matrix::new(0)).unwrap();
        let s = InstanceStats::of(&q);
        assert_eq!(s.clauses, 0);
        assert_eq!(s.clause_width, (0, 0.0, 0));
    }
}
