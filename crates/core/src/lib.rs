//! # qbf-core
//!
//! Quantified Boolean Formulas with **partially ordered (non-prenex)
//! prefixes**, and search-based decision procedures that exploit the
//! quantifier structure — a from-scratch reproduction of
//! *Giunchiglia, Narizzano, Tacchella, “Quantifier structure in search based
//! procedures for QBFs”* (DATE 2006 / IEEE TCAD).
//!
//! ## Overview
//!
//! A [`Qbf`] pairs a [`Prefix`] — a forest of quantifier blocks inducing the
//! partial order `≺` of §II of the paper — with a CNF [`Matrix`]. The
//! [`semantics`] module gives the ground-truth recursive evaluation; the
//! [`recursive`] module implements the Q-DLL procedure of Fig. 1 extended to
//! arbitrary (non-prenex) QBFs per §IV; the [`solver`] module implements the
//! full iterative search solver with unit propagation, good/nogood learning
//! and the QUBE(TO)/QUBE(PO) branching heuristics of §VI.
//!
//! ## Quick example
//!
//! ```
//! use qbf_core::{samples, solver::{Solver, SolverConfig}};
//!
//! // The paper's running example (1) is false.
//! let qbf = samples::paper_example();
//! let outcome = Solver::new(&qbf, SolverConfig::partial_order()).solve();
//! assert_eq!(outcome.value(), Some(false));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clause;
mod matrix;
mod prefix;
mod qbf;
mod var;

pub mod io;
/// Re-export of [`qbf_metrics`]: the `MetricsSink` engine hook plus the
/// registry/histogram/clock toolkit it feeds (see that crate's docs).
/// Core code and downstream crates name these types through
/// `qbf_core::metrics` so the engine and its instruments always agree on
/// one version of the hook trait.
pub mod metrics {
    pub use qbf_metrics::*;
}
pub mod observe;
pub mod portfolio;
pub mod preprocess;
pub mod proof;
pub mod recursive;
pub mod samples;
pub mod semantics;
pub mod solver;
pub mod stats;
pub mod witness;

pub use clause::{Clause, ClauseError};
pub use matrix::Matrix;
pub use prefix::{BlockId, Prefix, PrefixBuilder, PrefixError};
pub use qbf::{Qbf, QbfError};
pub use var::{Lit, Quantifier, Var};
