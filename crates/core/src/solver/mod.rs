//! The iterative search-based QBF solver (QUBE-style QDPLL).
//!
//! This is the paper's solver architecture (§III and §VI): an iterative
//! Q-DLL with
//!
//! * unit propagation under the generalized unit rule (Lemma 5) and
//!   contradictory-clause detection (Lemma 4), both phrased in terms of the
//!   partial order `≺` tested with the DFS timestamps of §VI;
//! * **nogood (clause) learning** from conflicts by Q-resolution with
//!   universal reduction (Lemma 3), and **good (cube) learning** from
//!   solutions by term resolution with existential reduction;
//! * conflict- and solution-directed backjumping;
//! * monotone (pure) literal fixing;
//! * pluggable branching heuristics: the QUBE(TO) priority scheme
//!   (prefix level, VSIDS-like counter, id) and the QUBE(PO) tree-structured
//!   score of §VI.
//!
//! The same engine solves prenex and non-prenex QBFs: branching is always
//! restricted to *available* variables (every `≺`-predecessor assigned),
//! which for a prenex prefix degenerates to left-to-right block order.
//!
//! # Examples
//!
//! ```
//! use qbf_core::{samples, solver::{Solver, SolverConfig}};
//!
//! let qbf = samples::two_independent_games();
//! let outcome = Solver::new(&qbf, SolverConfig::partial_order()).solve();
//! assert_eq!(outcome.value(), Some(true));
//! assert!(outcome.stats.decisions <= 8);
//! ```

mod db;
mod engine;
mod heuristic;
mod incremental;

pub use engine::Solver;
pub use heuristic::HeuristicKind;
pub use incremental::{IncrementalError, IncrementalSolver};

/// Configuration of the [`Solver`].
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Branching heuristic.
    pub heuristic: HeuristicKind,
    /// Enable good/nogood learning with backjumping. Default `true`.
    pub learning: bool,
    /// Enable monotone (pure) literal fixing. Default `true`.
    pub pure_literals: bool,
    /// Abort after this many assignments (decisions + propagations);
    /// the deterministic analogue of the paper's CPU-time timeout.
    pub node_limit: Option<u64>,
    /// Abort after this many conflicts + solutions.
    pub conflict_limit: Option<u64>,
    /// Start forgetting inactive learned constraints beyond this many.
    pub max_learned: usize,
    /// Halve heuristic scores every this many conflicts (the paper's
    /// periodic rearrangement of the priority queue).
    pub decay_interval: u64,
    /// Physically reclaim tombstoned learned constraints from the arena
    /// when garbage accumulates (default `true`). Compaction is purely a
    /// memory-layout operation — search behaviour and every search
    /// counter are identical with it off (see `tests/compaction.rs`);
    /// the switch exists for exactly that differential check.
    pub compact_db: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            heuristic: HeuristicKind::VsidsTree,
            learning: true,
            pure_literals: true,
            node_limit: None,
            conflict_limit: None,
            max_learned: 20_000,
            decay_interval: 256,
            compact_db: true,
        }
    }
}

impl SolverConfig {
    /// QUBE(PO): the quantifier-structure-aware configuration (tree score
    /// heuristic of §VI). Works on prenex and non-prenex inputs.
    pub fn partial_order() -> Self {
        SolverConfig::default()
    }

    /// QUBE(TO): the prenex-solver configuration (priority by prefix level,
    /// then counter, then id). Feed it prenex inputs — on a non-prenex
    /// prefix it still branches soundly (availability is enforced by the
    /// engine) but ranks only by level.
    pub fn total_order() -> Self {
        SolverConfig {
            heuristic: HeuristicKind::VsidsLevel,
            ..SolverConfig::default()
        }
    }

    /// A plain backtracking configuration: no learning, deterministic
    /// naive branching. Useful as a baseline and for differential tests.
    pub fn basic() -> Self {
        SolverConfig {
            heuristic: HeuristicKind::Naive,
            learning: false,
            pure_literals: false,
            ..SolverConfig::default()
        }
    }

    /// Sets the assignment budget, returning `self` (builder style).
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Sets the heuristic, returning `self` (builder style).
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self
    }
}

/// Search statistics of a [`Solver`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Branching decisions taken.
    pub decisions: u64,
    /// Literals assigned by unit propagation (clauses and cubes).
    pub propagations: u64,
    /// Literals assigned by monotone literal fixing.
    pub pures: u64,
    /// Conflicts (falsified clauses) encountered.
    pub conflicts: u64,
    /// Solutions (satisfied matrix / validated cube) encountered.
    pub solutions: u64,
    /// Learned clauses (nogoods).
    pub learned_clauses: u64,
    /// Learned cubes (goods).
    pub learned_cubes: u64,
    /// Non-chronological backtracks.
    pub backjumps: u64,
    /// Chronological fallback backtracks.
    pub chrono_backtracks: u64,
    /// Learned constraints dropped by database reduction.
    pub forgotten: u64,
    /// Sum of trail lengths at solution triggers (diagnostic: how deep the
    /// search is when the matrix empties).
    pub solution_depth_sum: u64,
    /// Sum of learned cube sizes (diagnostic: how general the goods are).
    pub cube_size_sum: u64,
    /// Watcher-list entries visited during propagation (the lazy
    /// propagator's cost measure; compare against `assignments()` to see
    /// how much work the watched indices avoid).
    pub watcher_visits: u64,
    /// Watcher visits resolved by the cached blocker literal alone, i.e.
    /// without touching the constraint arena (a subset of
    /// `watcher_visits`).
    pub blocker_hits: u64,
    /// High-water mark of constraint-arena bytes (clauses + cubes,
    /// headers included).
    pub arena_bytes_peak: u64,
    /// Bytes physically reclaimed from the arenas by compaction.
    pub arena_bytes_reclaimed: u64,
    /// Arena compaction passes run by database reduction.
    pub compactions: u64,
    /// Proof records emitted by the attached proof sink (`r`/`u`/`i`/`l`
    /// derivation steps; 0 when proof logging is disabled).
    pub proof_steps: u64,
    /// Bytes of certificate text emitted by the attached proof sink.
    pub proof_bytes: u64,
    /// `d` (constraint forgotten) records emitted by the proof sink.
    pub proof_dels: u64,
}

impl Stats {
    /// Decisions + propagations + pures: the deterministic cost measure
    /// used by the benchmark harness as a time proxy.
    pub fn assignments(&self) -> u64 {
        self.decisions + self.propagations + self.pures
    }

    /// Every counter as a `(name, value)` pair, in display order. The
    /// single source of truth for [`Stats`]'s `Display` impl, the
    /// `qbfsolve --stats` output and the bench telemetry records — adding
    /// a field here updates all three.
    pub fn fields(&self) -> [(&'static str, u64); 21] {
        [
            ("decisions", self.decisions),
            ("propagations", self.propagations),
            ("pures", self.pures),
            ("assignments", self.assignments()),
            ("conflicts", self.conflicts),
            ("solutions", self.solutions),
            ("learned_clauses", self.learned_clauses),
            ("learned_cubes", self.learned_cubes),
            ("backjumps", self.backjumps),
            ("chrono_backtracks", self.chrono_backtracks),
            ("forgotten", self.forgotten),
            ("solution_depth_sum", self.solution_depth_sum),
            ("cube_size_sum", self.cube_size_sum),
            ("watcher_visits", self.watcher_visits),
            ("blocker_hits", self.blocker_hits),
            ("arena_bytes_peak", self.arena_bytes_peak),
            ("arena_bytes_reclaimed", self.arena_bytes_reclaimed),
            ("compactions", self.compactions),
            ("proof_steps", self.proof_steps),
            ("proof_bytes", self.proof_bytes),
            ("proof_dels", self.proof_dels),
        ]
    }

    /// Accumulates another run's counters into `self` (how `qbfserve`
    /// maintains cumulative session totals across queries). Every counter
    /// adds except `arena_bytes_peak`, which is a high-water mark and
    /// takes the max.
    pub fn merge(&mut self, other: &Stats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.pures += other.pures;
        self.conflicts += other.conflicts;
        self.solutions += other.solutions;
        self.learned_clauses += other.learned_clauses;
        self.learned_cubes += other.learned_cubes;
        self.backjumps += other.backjumps;
        self.chrono_backtracks += other.chrono_backtracks;
        self.forgotten += other.forgotten;
        self.solution_depth_sum += other.solution_depth_sum;
        self.cube_size_sum += other.cube_size_sum;
        self.watcher_visits += other.watcher_visits;
        self.blocker_hits += other.blocker_hits;
        self.arena_bytes_peak = self.arena_bytes_peak.max(other.arena_bytes_peak);
        self.arena_bytes_reclaimed += other.arena_bytes_reclaimed;
        self.compactions += other.compactions;
        self.proof_steps += other.proof_steps;
        self.proof_bytes += other.proof_bytes;
        self.proof_dels += other.proof_dels;
    }
}

impl std::fmt::Display for Stats {
    /// One `name = value` line per counter (including the derived
    /// `assignments` total), in the order of [`Stats::fields`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fields = self.fields();
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name:<18} = {value}")?;
        }
        Ok(())
    }
}

/// Result of a [`Solver`] run.
#[derive(Debug, Clone)]
pub struct Outcome {
    value: Option<bool>,
    /// Search statistics.
    pub stats: Stats,
}

impl Outcome {
    pub(crate) fn new(value: Option<bool>, stats: Stats) -> Self {
        Outcome { value, stats }
    }

    /// `Some(true)`/`Some(false)` if decided, `None` if a budget was hit.
    pub fn value(&self) -> Option<bool> {
        self.value
    }

    /// Whether the run exhausted its budget without deciding.
    pub fn is_timeout(&self) -> bool {
        self.value.is_none()
    }
}
