//! The constraint database: original clauses, learned clauses (nogoods) and
//! learned cubes (goods), with **lazy watched-literal** indices for
//! propagation and a small occurrence index over *original* clauses for
//! satisfaction tracking (solution trigger + monotone-literal detection).
//!
//! # Watched literals
//!
//! Every constraint keeps its (up to two) movable watched literals at the
//! front of `lits` (positions are maintained by swapping in place).
//! Movable watches rest **only on literals of the relevant quantifier**:
//! existential literals for clauses, universal literals for cubes — the
//! QBF unit rule makes a clause's unit/conflict status a function of its
//! existential literals (plus `≺`-blocking), so the classic two-watch
//! argument applies to the existential subsequence alone.
//!
//! * **Clauses** progress towards unit/conflict only when literals become
//!   *false*, so `watch_clause[m]` holds the clauses watching `m` and is
//!   visited when `m` is falsified.
//! * **Cubes** progress towards unit/solution only when literals become
//!   *true*, so `watch_cube[m]` is visited when `m` is satisfied.
//!
//! The same lists additionally carry **pinned unblock sentinels** (see
//! [`Watcher`]): one per universal literal of a clause that `≺`-precedes
//! some existential literal of that clause (dually for cubes). These are
//! never moved; their visit catches the Lemma 5 units that appear when a
//! blocking outer universal is falsified.
//!
//! Watcher lists are **never undone on backtrack**: a movable watch may
//! go stale (rest on a false literal for a clause, a true literal for a
//! cube), but the engine's replacement discipline guarantees that the
//! literal whose assignment completes a conflict, a unit or a fully-true
//! cube is always watched at that moment — see the invariant note in
//! `engine.rs`.
//!
//! # Shadow counters (`debug-counters`)
//!
//! With the `debug-counters` cargo feature the database also carries the
//! seed engine's per-constraint `true_count`/`false_count` counters,
//! maintained eagerly for *every* constraint. They take no part in search
//! decisions; `engine.rs` cross-checks them against the watched state at
//! every propagation fixpoint, so the two propagators are verified
//! event-for-event without perturbing the search.

use crate::var::Lit;

/// Reference to a constraint in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CRef(pub(crate) u32);

impl CRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a constraint is a clause (disjunction, conjoined with the
/// matrix) or a cube (conjunction, disjoined with the matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Clause,
    Cube,
}

/// A watcher-list entry: the watching constraint plus a *blocker* literal
/// (some other literal of the constraint). If the blocker already
/// satisfies a clause (falsifies a cube), the visit is resolved without
/// touching the constraint's memory.
///
/// `pinned` entries are **unblock sentinels**: they sit on a universal
/// literal that `≺`-blocks some existential of a clause (dually, an
/// existential that blocks a universal of a cube) and are never moved —
/// their falsification (satisfaction for cubes) is exactly the Lemma 5
/// unblocking event, which must always trigger an examination.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: CRef,
    pub(crate) blocker: Lit,
    pub(crate) pinned: bool,
}

#[derive(Debug)]
pub(crate) struct Constraint {
    /// Literals; the movable watches (up to two, only on literals of the
    /// relevant quantifier) live at the leading positions.
    pub(crate) lits: Vec<Lit>,
    pub(crate) kind: Kind,
    pub(crate) learned: bool,
    pub(crate) deleted: bool,
    /// Number of literals currently assigned *true*. Maintained **only**
    /// for original clauses (satisfaction tracking feeds the solution
    /// trigger and monotone-literal detection); always zero for learned
    /// constraints unless `debug-counters` shadows them.
    pub(crate) true_count: u32,
    /// Shadow counter of literals currently assigned *false*; carried by
    /// every build so constructor sites stay feature-free, but maintained
    /// (and read) only under `debug-counters` (see the module docs).
    #[cfg_attr(not(feature = "debug-counters"), allow(dead_code))]
    pub(crate) false_count: u32,
    /// Bump-and-decay activity for database reduction.
    pub(crate) activity: f64,
}

impl Constraint {
    pub(crate) fn len(&self) -> usize {
        self.lits.len()
    }
}

/// Constraint arena plus watcher lists and the original-clause occurrence
/// index.
#[derive(Debug, Default)]
pub(crate) struct Db {
    pub(crate) constraints: Vec<Constraint>,
    /// For each literal code: *original* clauses containing that literal
    /// (satisfaction tracking only; learned constraints never appear).
    pub(crate) occ_original: Vec<Vec<CRef>>,
    /// For each literal code: clauses watching that literal (visited when
    /// the literal becomes false).
    pub(crate) watch_clause: Vec<Vec<Watcher>>,
    /// For each literal code: cubes watching that literal (visited when
    /// the literal becomes true).
    pub(crate) watch_cube: Vec<Vec<Watcher>>,
    /// Full occurrence lists over **all** constraints (both kinds,
    /// original and learned) for the shadow counter discipline. Entries
    /// are never removed; deleted constraints keep receiving harmless
    /// counter updates and are skipped by the verifier.
    #[cfg(feature = "debug-counters")]
    pub(crate) occ_shadow: Vec<Vec<CRef>>,
    /// Number of *original* clauses currently without a true literal; when
    /// it reaches zero the matrix is satisfied (empty under restriction).
    pub(crate) unsat_originals: usize,
    pub(crate) num_original: usize,
    pub(crate) num_learned_clauses: usize,
    pub(crate) num_learned_cubes: usize,
}

impl Db {
    pub(crate) fn new(num_vars: usize) -> Self {
        Db {
            constraints: Vec::new(),
            occ_original: vec![Vec::new(); 2 * num_vars],
            watch_clause: vec![Vec::new(); 2 * num_vars],
            watch_cube: vec![Vec::new(); 2 * num_vars],
            #[cfg(feature = "debug-counters")]
            occ_shadow: vec![Vec::new(); 2 * num_vars],
            unsat_originals: 0,
            num_original: 0,
            num_learned_clauses: 0,
            num_learned_cubes: 0,
        }
    }

    pub(crate) fn constraint(&self, c: CRef) -> &Constraint {
        &self.constraints[c.index()]
    }

    /// Adds a constraint and attaches `movable` watchers (0, 1 or 2) on
    /// the leading positions of `lits`.
    ///
    /// The caller must order `lits` so that the watched prefix is legal:
    /// **existential** literals first for clauses (universal first for
    /// cubes) — movable watches only ever rest on literals of the
    /// *relevant* quantifier, which is what keeps the classic
    /// two-watched-literal argument sound under the QBF unit rule — and,
    /// for learned constraints, within the relevant literals those that
    /// will be unassigned *last* on backtracking first (unassigned
    /// literals, then by descending trail position). `movable` is
    /// `min(2, #relevant literals)`.
    ///
    /// Unblock sentinels (pinned watchers) are attached separately by the
    /// engine, which knows the prefix order.
    ///
    /// `true_count`/`false_count` initialize the shadow counters; the
    /// non-shadow build keeps `true_count` live for original clauses only.
    pub(crate) fn add(
        &mut self,
        lits: Vec<Lit>,
        kind: Kind,
        learned: bool,
        movable: usize,
        true_count: u32,
        false_count: u32,
    ) -> CRef {
        let cref = CRef(self.constraints.len() as u32);
        #[cfg(feature = "debug-counters")]
        for &l in &lits {
            self.occ_shadow[l.code()].push(cref);
        }
        if !learned {
            debug_assert!(kind == Kind::Clause, "original constraints are clauses");
            for &l in &lits {
                self.occ_original[l.code()].push(cref);
            }
            if true_count == 0 {
                self.unsat_originals += 1;
            }
            self.num_original += 1;
        } else {
            match kind {
                Kind::Clause => self.num_learned_clauses += 1,
                Kind::Cube => self.num_learned_cubes += 1,
            }
        }
        // Attach movable watchers: both ends of the watched pair, a single
        // watcher for constraints with one relevant literal, or none for
        // constraints with no relevant literal (those are decided by the
        // engine at/before add time).
        debug_assert!(movable <= 2 && movable <= lits.len());
        if movable == 2 {
            self.watch_list(kind)[lits[0].code()].push(Watcher {
                cref,
                blocker: lits[1],
                pinned: false,
            });
            self.watch_list(kind)[lits[1].code()].push(Watcher {
                cref,
                blocker: lits[0],
                pinned: false,
            });
        } else if movable == 1 {
            self.watch_list(kind)[lits[0].code()].push(Watcher {
                cref,
                blocker: if lits.len() >= 2 { lits[1] } else { lits[0] },
                pinned: false,
            });
        }
        let tc = if !learned || cfg!(feature = "debug-counters") {
            true_count
        } else {
            0
        };
        let fc = if cfg!(feature = "debug-counters") {
            false_count
        } else {
            0
        };
        self.constraints.push(Constraint {
            lits,
            kind,
            learned,
            deleted: false,
            true_count: tc,
            false_count: fc,
            activity: 1.0,
        });
        cref
    }

    #[inline]
    fn watch_list(&mut self, kind: Kind) -> &mut Vec<Vec<Watcher>> {
        match kind {
            Kind::Clause => &mut self.watch_clause,
            Kind::Cube => &mut self.watch_cube,
        }
    }

    /// Marks a learned constraint deleted. Its watcher entries are skipped
    /// (and dropped) lazily on visit and purged wholesale in
    /// [`Db::purge_watchers`]; original-clause occurrence lists never
    /// contain learned constraints, so they need no purge.
    pub(crate) fn delete(&mut self, c: CRef) {
        let k = {
            let con = &mut self.constraints[c.index()];
            debug_assert!(con.learned, "only learned constraints are deleted");
            con.deleted = true;
            con.kind
        };
        match k {
            Kind::Clause => self.num_learned_clauses -= 1,
            Kind::Cube => self.num_learned_cubes -= 1,
        }
    }

    /// Drops watcher entries of deleted constraints (called after a
    /// database-reduction sweep; lazy dropping on visit handles the rest).
    pub(crate) fn purge_watchers(&mut self) {
        let constraints = &self.constraints;
        for list in self.watch_clause.iter_mut().chain(self.watch_cube.iter_mut()) {
            list.retain(|w| !constraints[w.cref.index()].deleted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn watched(db: &Db, kind: Kind, l: Lit) -> Vec<CRef> {
        let list = match kind {
            Kind::Clause => &db.watch_clause[l.code()],
            Kind::Cube => &db.watch_cube[l.code()],
        };
        list.iter().map(|w| w.cref).collect()
    }

    #[test]
    fn add_and_query() {
        let mut db = Db::new(3);
        let c = db.add(vec![lit(1), lit(-2)], Kind::Clause, false, 2, 0, 0);
        assert_eq!(db.unsat_originals, 1);
        assert_eq!(db.num_original, 1);
        assert_eq!(db.occ_original[lit(1).code()], vec![c]);
        assert_eq!(db.occ_original[lit(-2).code()], vec![c]);
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![c]);
        assert_eq!(watched(&db, Kind::Clause, lit(-2)), vec![c]);
        assert!(watched(&db, Kind::Cube, lit(1)).is_empty());
        assert_eq!(db.constraint(c).len(), 2);
    }

    #[test]
    fn learned_clause_does_not_count_unsat_or_occ() {
        let mut db = Db::new(2);
        let c = db.add(vec![lit(1)], Kind::Clause, true, 1, 0, 0);
        assert_eq!(db.unsat_originals, 0);
        assert_eq!(db.num_learned_clauses, 1);
        assert!(db.occ_original[lit(1).code()].is_empty());
        // unit constraints get a single watcher on their only literal
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![c]);
    }

    #[test]
    fn cubes_use_cube_watchers() {
        let mut db = Db::new(2);
        let k = db.add(vec![lit(1), lit(2)], Kind::Cube, true, 2, 0, 0);
        assert_eq!(watched(&db, Kind::Cube, lit(1)), vec![k]);
        assert_eq!(watched(&db, Kind::Cube, lit(2)), vec![k]);
        assert!(watched(&db, Kind::Clause, lit(1)).is_empty());
        assert_eq!(db.num_learned_cubes, 1);
    }

    #[test]
    fn only_first_two_literals_are_watched() {
        let mut db = Db::new(3);
        let c = db.add(vec![lit(1), lit(2), lit(3)], Kind::Clause, true, 2, 0, 0);
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![c]);
        assert_eq!(watched(&db, Kind::Clause, lit(2)), vec![c]);
        assert!(watched(&db, Kind::Clause, lit(3)).is_empty());
        // blockers point at the partner watch
        assert_eq!(db.watch_clause[lit(1).code()][0].blocker, lit(2));
        assert_eq!(db.watch_clause[lit(2).code()][0].blocker, lit(1));
    }

    #[test]
    fn delete_and_purge() {
        let mut db = Db::new(2);
        let a = db.add(vec![lit(1), lit(2)], Kind::Clause, true, 2, 0, 0);
        let b = db.add(vec![lit(1), lit(2)], Kind::Clause, true, 2, 0, 0);
        db.delete(a);
        assert_eq!(db.num_learned_clauses, 1);
        assert_eq!(db.watch_clause[lit(1).code()].len(), 2);
        db.purge_watchers();
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![b]);
        assert_eq!(watched(&db, Kind::Clause, lit(2)), vec![b]);
    }
}
