//! The constraint database: original clauses, learned clauses (nogoods) and
//! learned cubes (goods), with **lazy watched-literal** indices for
//! propagation and a small occurrence index over *original* clauses for
//! satisfaction tracking (solution trigger + monotone-literal detection).
//!
//! # Memory layout: the constraint arena
//!
//! Constraints are not individual heap allocations. Each kind lives in a
//! contiguous `u32` arena ([`ConstraintArena`], MiniSat-style): a fixed
//! header (size, learned/deleted flags, activity, shadow counters)
//! followed by the packed literal codes. A [`ConstraintRef`] is the word
//! offset of the header, with the top bit selecting the clause or the
//! cube arena — so the kind of a constraint is recoverable from the ref
//! alone, without touching memory.
//!
//! Refs are **stable between compactions**: adding constraints never
//! moves existing ones (offsets are not invalidated by `Vec` growth).
//! [`Db::compact`] physically reclaims tombstoned constraints by sliding
//! the live ones down; it returns a [`RefMap`] so the engine can relocate
//! the refs it holds outside the database (antecedent/reason refs and
//! frame pseudo-reasons). Refs held *inside* the database — watcher
//! lists, original-occurrence lists, shadow occurrence lists, and the
//! learned creation-order index — are remapped here.
//!
//! # Watched literals
//!
//! Every constraint keeps its (up to two) movable watched literals at the
//! front of its literal block (positions are maintained by swapping in
//! place). Movable watches rest **only on literals of the relevant
//! quantifier**: existential literals for clauses, universal literals for
//! cubes — the QBF unit rule makes a clause's unit/conflict status a
//! function of its existential literals (plus `≺`-blocking), so the
//! classic two-watch argument applies to the existential subsequence
//! alone.
//!
//! * **Clauses** progress towards unit/conflict only when literals become
//!   *false*, so `watch_clause[m]` holds the clauses watching `m` and is
//!   visited when `m` is falsified.
//! * **Cubes** progress towards unit/solution only when literals become
//!   *true*, so `watch_cube[m]` is visited when `m` is satisfied.
//!
//! Each watcher entry carries a cached **blocker** literal (some other
//! literal of the constraint). When the blocker already satisfies a
//! clause (falsifies a cube) the visit is resolved from the watcher entry
//! alone — no arena memory is touched. The engine counts these as
//! `blocker_hits` next to `watcher_visits`.
//!
//! The same lists additionally carry **pinned unblock sentinels** (see
//! [`Watcher`]): one per universal literal of a clause that `≺`-precedes
//! some existential literal of that clause (dually for cubes). These are
//! never moved — but they are *relocatable*: compaction remaps their refs
//! like any other watcher. Their visit catches the Lemma 5 units that
//! appear when a blocking outer universal is falsified.
//!
//! Watcher lists are **never undone on backtrack**: a movable watch may
//! go stale (rest on a false literal for a clause, a true literal for a
//! cube), but the engine's replacement discipline guarantees that the
//! literal whose assignment completes a conflict, a unit or a fully-true
//! cube is always watched at that moment — see the invariant note in
//! `engine.rs`.
//!
//! # Shadow counters (`debug-counters`)
//!
//! With the `debug-counters` cargo feature the database also carries the
//! seed engine's per-constraint `true_count`/`false_count` counters,
//! maintained eagerly for *every* constraint. They take no part in search
//! decisions; `engine.rs` cross-checks them against the watched state at
//! every propagation fixpoint, so the two propagators are verified
//! event-for-event without perturbing the search.

use std::collections::HashMap;

use crate::var::Lit;

/// Whether a constraint is a clause (disjunction, conjoined with the
/// matrix) or a cube (conjunction, disjoined with the matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Clause,
    Cube,
}

/// Reference to a constraint: the header word offset into the arena of
/// its kind, with the top bit set for cubes. Stable between compactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ConstraintRef(u32);

/// Top bit of a [`ConstraintRef`]: set iff the ref points into the cube
/// arena.
const CUBE_TAG: u32 = 1 << 31;

impl ConstraintRef {
    #[inline]
    fn new(kind: Kind, offset: usize) -> Self {
        debug_assert!((offset as u32) < CUBE_TAG, "arena offset overflow");
        match kind {
            Kind::Clause => ConstraintRef(offset as u32),
            Kind::Cube => ConstraintRef(offset as u32 | CUBE_TAG),
        }
    }

    /// The kind of the referenced constraint, recovered from the tag bit.
    #[inline]
    pub(crate) fn kind(self) -> Kind {
        if self.0 & CUBE_TAG == 0 {
            Kind::Clause
        } else {
            Kind::Cube
        }
    }

    /// Header word offset within the arena of [`ConstraintRef::kind`].
    #[inline]
    fn offset(self) -> usize {
        (self.0 & !CUBE_TAG) as usize
    }

    /// Opaque identity handed to proof sinks (arena offset plus kind
    /// tag). Stable until the constraint is deleted or the arena is
    /// compacted — both events are reported to the sink, which keeps its
    /// token → proof-line map in sync.
    #[inline]
    pub(crate) fn token(self) -> u64 {
        self.0 as u64
    }
}

/// A watcher-list entry: the watching constraint plus a *blocker* literal
/// (some other literal of the constraint). If the blocker already
/// satisfies a clause (falsifies a cube), the visit is resolved without
/// touching the constraint's memory — counted by the `blocker_hits` stat.
///
/// `pinned` entries are **unblock sentinels**: they sit on a universal
/// literal that `≺`-blocks some existential of a clause (dually, an
/// existential that blocks a universal of a cube) and are never moved —
/// their falsification (satisfaction for cubes) is exactly the Lemma 5
/// unblocking event, which must always trigger an examination.
/// Packed to 8 bytes (two words) so watcher lists stay cache-dense: the
/// pinned flag lives in bit 31 of the blocker word (literal codes use at
/// most 31 bits, like [`ConstraintRef`] offsets).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: ConstraintRef,
    blocker_pin: u32,
}

const PINNED_BIT: u32 = 1 << 31;

impl Watcher {
    #[inline]
    pub(crate) fn new(cref: ConstraintRef, blocker: Lit, pinned: bool) -> Self {
        debug_assert!((blocker.code() as u32) < PINNED_BIT, "literal code overflow");
        Watcher {
            cref,
            blocker_pin: blocker.code() as u32 | if pinned { PINNED_BIT } else { 0 },
        }
    }

    #[inline]
    pub(crate) fn blocker(self) -> Lit {
        Lit::from_code((self.blocker_pin & !PINNED_BIT) as usize)
    }

    #[inline]
    pub(crate) fn pinned(self) -> bool {
        self.blocker_pin & PINNED_BIT != 0
    }
}

/// Arena header layout (all `u32` words, immediately before the packed
/// literal codes):
///
/// | word | contents                                             |
/// |------|------------------------------------------------------|
/// | 0    | size (bits 0..30) \| learned (bit 30) \| deleted (31) |
/// | 1    | activity `f64` bits, low half                         |
/// | 2    | activity `f64` bits, high half                        |
/// | 3    | `true_count` shadow counter                           |
/// | 4    | `false_count` shadow counter                          |
const HEADER_WORDS: usize = 5;
const SIZE_MASK: u32 = (1 << 30) - 1;
const LEARNED_BIT: u32 = 1 << 30;
const DELETED_BIT: u32 = 1 << 31;

/// One contiguous `u32` arena holding every constraint of one [`Kind`]:
/// header words followed by packed literal codes, back to back.
#[derive(Debug, Default)]
pub(crate) struct ConstraintArena {
    words: Vec<u32>,
}

impl ConstraintArena {
    /// Appends a constraint, returning its header word offset.
    fn push(&mut self, lits: &[Lit], learned: bool, tc: u32, fc: u32, activity: f64) -> usize {
        let offset = self.words.len();
        debug_assert!(lits.len() as u32 <= SIZE_MASK, "constraint too large");
        let mut header = lits.len() as u32;
        if learned {
            header |= LEARNED_BIT;
        }
        let act = activity.to_bits();
        self.words.push(header);
        self.words.push(act as u32);
        self.words.push((act >> 32) as u32);
        self.words.push(tc);
        self.words.push(fc);
        self.words.extend(lits.iter().map(|l| l.code() as u32));
        offset
    }

    #[inline]
    fn size(&self, o: usize) -> usize {
        (self.words[o] & SIZE_MASK) as usize
    }

    #[inline]
    fn lits(&self, o: usize) -> &[Lit] {
        let size = self.size(o);
        let words = &self.words[o + HEADER_WORDS..o + HEADER_WORDS + size];
        // SAFETY: `Lit` is `#[repr(transparent)]` over `u32`, and every
        // word in the literal block was produced by `Lit::code` in `push`
        // (or swapped in place by `swap_lits`), so the reinterpretation
        // is exact.
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<Lit>(), size) }
    }

    /// Total words currently allocated (live + tombstoned).
    #[inline]
    fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Slides live constraints down over tombstoned ones. Returns the
    /// old-offset → new-offset map (`u32::MAX` for deleted constraints)
    /// and the number of words reclaimed.
    fn compact(&mut self) -> (Vec<u32>, usize) {
        let mut map = vec![u32::MAX; self.words.len()];
        let mut read = 0usize;
        let mut write = 0usize;
        while read < self.words.len() {
            let header = self.words[read];
            let total = HEADER_WORDS + (header & SIZE_MASK) as usize;
            if header & DELETED_BIT == 0 {
                map[read] = write as u32;
                if write != read {
                    self.words.copy_within(read..read + total, write);
                }
                write += total;
            }
            read += total;
        }
        let reclaimed = self.words.len() - write;
        self.words.truncate(write);
        (map, reclaimed)
    }

    /// Walks the arena front to back, yielding header offsets of **all**
    /// constraints (including tombstoned ones) in creation order.
    fn offsets(&self) -> ArenaOffsets<'_> {
        ArenaOffsets {
            arena: self,
            offset: 0,
        }
    }
}

/// Iterator over the header offsets of a [`ConstraintArena`].
struct ArenaOffsets<'a> {
    arena: &'a ConstraintArena,
    offset: usize,
}

impl Iterator for ArenaOffsets<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.offset >= self.arena.words.len() {
            return None;
        }
        let o = self.offset;
        self.offset += HEADER_WORDS + self.arena.size(o);
        Some(o)
    }
}

/// Old-ref → new-ref translation produced by [`Db::compact`]; the engine
/// uses it to relocate antecedent/reason refs and frame pseudo-reasons.
pub(crate) struct RefMap {
    clause: Vec<u32>,
    cube: Vec<u32>,
    /// Bytes physically reclaimed across both arenas.
    pub(crate) reclaimed_bytes: usize,
}

impl RefMap {
    /// New location of `r`, or `None` if the constraint was tombstoned
    /// and has been physically reclaimed.
    pub(crate) fn remap(&self, r: ConstraintRef) -> Option<ConstraintRef> {
        let table = match r.kind() {
            Kind::Clause => &self.clause,
            Kind::Cube => &self.cube,
        };
        match table[r.offset()] {
            u32::MAX => None,
            new => Some(ConstraintRef::new(r.kind(), new as usize)),
        }
    }
}

/// Constraint arenas plus watcher lists and the original-clause
/// occurrence index.
#[derive(Debug, Default)]
pub(crate) struct Db {
    /// Arena of all clauses. In one-shot solving the `num_original`
    /// original clauses form a stable, never-deleted prefix in creation
    /// order; incremental solving may interleave additions with learned
    /// clauses and remove popped originals, so the authoritative original
    /// order lives in `original_order`.
    clauses: ConstraintArena,
    /// Arena of all cubes (always learned).
    cubes: ConstraintArena,
    /// Live original clauses in creation order (the iteration order of
    /// `original_refs`, which the initial Lemma-4 scan and the implicant
    /// builder rely on for determinism).
    original_order: Vec<ConstraintRef>,
    /// Learned constraints (both kinds) in creation order — the tie-break
    /// order of the database-reduction sweep. Deleted entries linger
    /// (filtered by the sweep) until compaction drops them.
    learned_order: Vec<ConstraintRef>,
    /// Push-frame dependency marks for incremental solving: the highest
    /// push level a constraint's derivation depends on (its own frame for
    /// originals, the max over used antecedents for learned clauses).
    /// Only nonzero marks are stored, so the map stays empty — and costs
    /// nothing — in one-shot solving. Never iterated (determinism).
    frame_mark: HashMap<ConstraintRef, u32>,
    /// Words tombstoned but not yet reclaimed, across both arenas.
    dead_words: usize,
    /// High-water mark of total arena bytes, updated on every add.
    pub(crate) bytes_peak: usize,
    /// For each literal code: *original* clauses containing that literal
    /// (satisfaction tracking only; learned constraints never appear).
    pub(crate) occ_original: Vec<Vec<ConstraintRef>>,
    /// For each literal code: clauses watching that literal (visited when
    /// the literal becomes false).
    pub(crate) watch_clause: Vec<Vec<Watcher>>,
    /// For each literal code: cubes watching that literal (visited when
    /// the literal becomes true).
    pub(crate) watch_cube: Vec<Vec<Watcher>>,
    /// Full occurrence lists over **all** constraints (both kinds,
    /// original and learned) for the shadow counter discipline. Deleted
    /// constraints keep receiving harmless counter updates and are
    /// skipped by the verifier; compaction drops their entries.
    #[cfg(feature = "debug-counters")]
    pub(crate) occ_shadow: Vec<Vec<ConstraintRef>>,
    /// Number of *original* clauses currently without a true literal; when
    /// it reaches zero the matrix is satisfied (empty under restriction).
    pub(crate) unsat_originals: usize,
    pub(crate) num_original: usize,
    pub(crate) num_learned_clauses: usize,
    pub(crate) num_learned_cubes: usize,
}

impl Db {
    pub(crate) fn new(num_vars: usize) -> Self {
        Db {
            clauses: ConstraintArena::default(),
            cubes: ConstraintArena::default(),
            original_order: Vec::new(),
            learned_order: Vec::new(),
            frame_mark: HashMap::new(),
            dead_words: 0,
            bytes_peak: 0,
            occ_original: vec![Vec::new(); 2 * num_vars],
            watch_clause: vec![Vec::new(); 2 * num_vars],
            watch_cube: vec![Vec::new(); 2 * num_vars],
            #[cfg(feature = "debug-counters")]
            occ_shadow: vec![Vec::new(); 2 * num_vars],
            unsat_originals: 0,
            num_original: 0,
            num_learned_clauses: 0,
            num_learned_cubes: 0,
        }
    }

    #[inline]
    fn arena(&self, c: ConstraintRef) -> &ConstraintArena {
        match c.kind() {
            Kind::Clause => &self.clauses,
            Kind::Cube => &self.cubes,
        }
    }

    #[inline]
    fn arena_mut(&mut self, c: ConstraintRef) -> &mut ConstraintArena {
        match c.kind() {
            Kind::Clause => &mut self.clauses,
            Kind::Cube => &mut self.cubes,
        }
    }

    /// The literals of `c`; the movable watches (up to two) live at the
    /// leading positions.
    #[inline]
    pub(crate) fn lits(&self, c: ConstraintRef) -> &[Lit] {
        self.arena(c).lits(c.offset())
    }

    #[inline]
    pub(crate) fn len(&self, c: ConstraintRef) -> usize {
        self.arena(c).size(c.offset())
    }

    #[inline]
    pub(crate) fn lit(&self, c: ConstraintRef, i: usize) -> Lit {
        self.lits(c)[i]
    }

    /// Swaps two literal positions in place (watch normalization).
    #[inline]
    pub(crate) fn swap_lits(&mut self, c: ConstraintRef, i: usize, j: usize) {
        let o = c.offset() + HEADER_WORDS;
        self.arena_mut(c).words.swap(o + i, o + j);
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: ConstraintRef) -> bool {
        self.arena(c).words[c.offset()] & DELETED_BIT != 0
    }

    #[inline]
    pub(crate) fn is_learned(&self, c: ConstraintRef) -> bool {
        self.arena(c).words[c.offset()] & LEARNED_BIT != 0
    }

    #[inline]
    pub(crate) fn activity(&self, c: ConstraintRef) -> f64 {
        let o = c.offset();
        let words = &self.arena(c).words;
        f64::from_bits(words[o + 1] as u64 | (words[o + 2] as u64) << 32)
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, c: ConstraintRef, activity: f64) {
        let o = c.offset();
        let act = activity.to_bits();
        let words = &mut self.arena_mut(c).words;
        words[o + 1] = act as u32;
        words[o + 2] = (act >> 32) as u32;
    }

    #[cfg(any(test, feature = "debug-counters"))]
    #[inline]
    pub(crate) fn true_count(&self, c: ConstraintRef) -> u32 {
        self.arena(c).words[c.offset() + 3]
    }

    #[inline]
    pub(crate) fn true_count_mut(&mut self, c: ConstraintRef) -> &mut u32 {
        let o = c.offset() + 3;
        &mut self.arena_mut(c).words[o]
    }

    #[cfg(feature = "debug-counters")]
    #[inline]
    pub(crate) fn false_count(&self, c: ConstraintRef) -> u32 {
        self.arena(c).words[c.offset() + 4]
    }

    #[cfg(feature = "debug-counters")]
    #[inline]
    pub(crate) fn false_count_mut(&mut self, c: ConstraintRef) -> &mut u32 {
        let o = c.offset() + 4;
        &mut self.arena_mut(c).words[o]
    }

    /// Total bytes currently held by both arenas (live + tombstoned).
    #[inline]
    pub(crate) fn arena_bytes(&self) -> usize {
        (self.clauses.len_words() + self.cubes.len_words()) * 4
    }

    /// Header refs of the live original clauses, in creation order.
    pub(crate) fn original_refs(&self) -> impl Iterator<Item = ConstraintRef> + '_ {
        self.original_order.iter().copied()
    }

    /// The push-frame dependency mark of a constraint (0 when it depends
    /// only on the bottom frame — the common case, stored implicitly).
    #[inline]
    pub(crate) fn frame_mark(&self, c: ConstraintRef) -> u32 {
        if self.frame_mark.is_empty() {
            return 0; // one-shot fast path: no hashing
        }
        self.frame_mark.get(&c).copied().unwrap_or(0)
    }

    /// Records a constraint's push-frame dependency mark (only nonzero
    /// marks are stored).
    #[inline]
    pub(crate) fn set_frame_mark(&mut self, c: ConstraintRef, mark: u32) {
        if mark > 0 {
            self.frame_mark.insert(c, mark);
        }
    }

    /// Learned constraints (both kinds) in creation order, including
    /// tombstoned ones — the reduction sweep filters those.
    pub(crate) fn learned_refs(&self) -> &[ConstraintRef] {
        &self.learned_order
    }

    /// Every constraint of both arenas (clauses first), including
    /// tombstoned ones. Shadow-verification walk; also the proof sink's
    /// pre-compaction token snapshot.
    pub(crate) fn all_refs(&self) -> impl Iterator<Item = ConstraintRef> + '_ {
        self.clauses
            .offsets()
            .map(|o| ConstraintRef::new(Kind::Clause, o))
            .chain(self.cubes.offsets().map(|o| ConstraintRef::new(Kind::Cube, o)))
    }

    /// Adds a constraint and attaches `movable` watchers (0, 1 or 2) on
    /// the leading positions of `lits`.
    ///
    /// The caller must order `lits` so that the watched prefix is legal:
    /// **existential** literals first for clauses (universal first for
    /// cubes) — movable watches only ever rest on literals of the
    /// *relevant* quantifier, which is what keeps the classic
    /// two-watched-literal argument sound under the QBF unit rule — and,
    /// for learned constraints, within the relevant literals those that
    /// will be unassigned *last* on backtracking first (unassigned
    /// literals, then by descending trail position). `movable` is
    /// `min(2, #relevant literals)`.
    ///
    /// Unblock sentinels (pinned watchers) are attached separately by the
    /// engine, which knows the prefix order.
    ///
    /// `true_count`/`false_count` initialize the shadow counters; the
    /// non-shadow build keeps `true_count` live for original clauses only.
    pub(crate) fn add(
        &mut self,
        lits: Vec<Lit>,
        kind: Kind,
        learned: bool,
        movable: usize,
        true_count: u32,
        false_count: u32,
    ) -> ConstraintRef {
        let tc = if !learned || cfg!(feature = "debug-counters") {
            true_count
        } else {
            0
        };
        let fc = if cfg!(feature = "debug-counters") {
            false_count
        } else {
            0
        };
        let arena = match kind {
            Kind::Clause => &mut self.clauses,
            Kind::Cube => &mut self.cubes,
        };
        let offset = arena.push(&lits, learned, tc, fc, 1.0);
        let cref = ConstraintRef::new(kind, offset);
        self.bytes_peak = self.bytes_peak.max(self.arena_bytes());
        #[cfg(feature = "debug-counters")]
        for &l in &lits {
            self.occ_shadow[l.code()].push(cref);
        }
        if !learned {
            debug_assert!(kind == Kind::Clause, "original constraints are clauses");
            for &l in &lits {
                self.occ_original[l.code()].push(cref);
            }
            if true_count == 0 {
                self.unsat_originals += 1;
            }
            self.num_original += 1;
            self.original_order.push(cref);
        } else {
            match kind {
                Kind::Clause => self.num_learned_clauses += 1,
                Kind::Cube => self.num_learned_cubes += 1,
            }
            self.learned_order.push(cref);
        }
        // Attach movable watchers: both ends of the watched pair, a single
        // watcher for constraints with one relevant literal, or none for
        // constraints with no relevant literal (those are decided by the
        // engine at/before add time).
        debug_assert!(movable <= 2 && movable <= lits.len());
        if movable == 2 {
            self.watch_list(kind)[lits[0].code()].push(Watcher::new(cref, lits[1], false));
            self.watch_list(kind)[lits[1].code()].push(Watcher::new(cref, lits[0], false));
        } else if movable == 1 {
            let blocker = if lits.len() >= 2 { lits[1] } else { lits[0] };
            self.watch_list(kind)[lits[0].code()].push(Watcher::new(cref, blocker, false));
        }
        cref
    }

    #[inline]
    fn watch_list(&mut self, kind: Kind) -> &mut Vec<Vec<Watcher>> {
        match kind {
            Kind::Clause => &mut self.watch_clause,
            Kind::Cube => &mut self.watch_cube,
        }
    }

    /// Marks a learned constraint deleted. Its watcher entries are skipped
    /// (and dropped) lazily on visit and purged wholesale in
    /// [`Db::purge_watchers`] or reclaimed by [`Db::compact`];
    /// original-clause occurrence lists never contain learned constraints,
    /// so they need no purge.
    pub(crate) fn delete(&mut self, c: ConstraintRef) {
        debug_assert!(self.is_learned(c), "only learned constraints are deleted");
        self.tombstone(c);
        if !self.frame_mark.is_empty() {
            self.frame_mark.remove(&c);
        }
        match c.kind() {
            Kind::Clause => self.num_learned_clauses -= 1,
            Kind::Cube => self.num_learned_cubes -= 1,
        }
    }

    /// Sets the deleted bit and accounts the dead words (shared by learned
    /// deletion and original-clause removal).
    fn tombstone(&mut self, c: ConstraintRef) {
        let o = c.offset();
        let size = {
            let arena = self.arena_mut(c);
            arena.words[o] |= DELETED_BIT;
            (arena.words[o] & SIZE_MASK) as usize
        };
        self.dead_words += HEADER_WORDS + size;
    }

    /// Removes every original clause whose push frame is above `level`
    /// (incremental `pop`). The caller guarantees an empty trail, so every
    /// original clause has `true_count == 0` and is counted in
    /// `unsat_originals`. Returns the removed refs (the engine reverses
    /// its own per-literal accounting from them).
    pub(crate) fn remove_originals_above(&mut self, level: u32) -> Vec<ConstraintRef> {
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(self.original_order.len());
        for &c in &self.original_order {
            if self.frame_mark.get(&c).copied().unwrap_or(0) > level {
                removed.push(c);
            } else {
                kept.push(c);
            }
        }
        self.original_order = kept;
        for &c in &removed {
            debug_assert_eq!(
                self.arena(c).words[c.offset() + 3],
                0,
                "original removed while satisfied (trail not empty)"
            );
            self.tombstone(c);
            self.frame_mark.remove(&c);
            let lits = self.lits(c).to_vec();
            for l in lits {
                self.occ_original[l.code()].retain(|&r| r != c);
            }
            self.unsat_originals -= 1;
            self.num_original -= 1;
        }
        removed
    }

    /// Drops watcher entries of deleted constraints (called after a
    /// database-reduction sweep; lazy dropping on visit handles the rest).
    pub(crate) fn purge_watchers(&mut self) {
        // Split borrows: the retain closures only read the arenas.
        let clauses = &self.clauses;
        let cubes = &self.cubes;
        let deleted = |c: ConstraintRef| {
            let arena = match c.kind() {
                Kind::Clause => clauses,
                Kind::Cube => cubes,
            };
            arena.words[c.offset()] & DELETED_BIT != 0
        };
        for list in self.watch_clause.iter_mut().chain(self.watch_cube.iter_mut()) {
            list.retain(|w| !deleted(w.cref));
        }
    }

    /// Whether tombstoned garbage justifies a compaction pass (a quarter
    /// or more of the arena words are dead).
    pub(crate) fn wants_compaction(&self) -> bool {
        self.dead_words > 0 && self.dead_words * 4 >= self.arena_bytes() / 4
    }

    /// Physically reclaims tombstoned constraints in both arenas and
    /// remaps every ref held inside the database: watcher lists (entries
    /// of reclaimed constraints are dropped, preserving order — exactly
    /// the effect of [`Db::purge_watchers`]), original and shadow
    /// occurrence lists, and the learned creation-order index. Returns
    /// the [`RefMap`] for the refs the engine holds.
    pub(crate) fn compact(&mut self) -> RefMap {
        let (clause_map, clause_rec) = self.clauses.compact();
        let (cube_map, cube_rec) = self.cubes.compact();
        let map = RefMap {
            clause: clause_map,
            cube: cube_map,
            reclaimed_bytes: (clause_rec + cube_rec) * 4,
        };
        self.dead_words = 0;
        for list in &mut self.occ_original {
            for r in list.iter_mut() {
                *r = map.remap(*r).expect("original clauses are never deleted");
            }
        }
        for list in self.watch_clause.iter_mut().chain(self.watch_cube.iter_mut()) {
            list.retain_mut(|w| match map.remap(w.cref) {
                Some(nr) => {
                    w.cref = nr;
                    true
                }
                None => false,
            });
        }
        #[cfg(feature = "debug-counters")]
        for list in &mut self.occ_shadow {
            list.retain_mut(|r| match map.remap(*r) {
                Some(nr) => {
                    *r = nr;
                    true
                }
                None => false,
            });
        }
        self.learned_order.retain_mut(|r| match map.remap(*r) {
            Some(nr) => {
                *r = nr;
                true
            }
            None => false,
        });
        for r in self.original_order.iter_mut() {
            *r = map.remap(*r).expect("live original clauses survive compaction");
        }
        if !self.frame_mark.is_empty() {
            self.frame_mark = self
                .frame_mark
                .iter()
                .filter_map(|(&r, &m)| map.remap(r).map(|nr| (nr, m)))
                .collect();
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn watched(db: &Db, kind: Kind, l: Lit) -> Vec<ConstraintRef> {
        let list = match kind {
            Kind::Clause => &db.watch_clause[l.code()],
            Kind::Cube => &db.watch_cube[l.code()],
        };
        list.iter().map(|w| w.cref).collect()
    }

    #[test]
    fn add_and_query() {
        let mut db = Db::new(3);
        let c = db.add(vec![lit(1), lit(-2)], Kind::Clause, false, 2, 0, 0);
        assert_eq!(db.unsat_originals, 1);
        assert_eq!(db.num_original, 1);
        assert_eq!(db.occ_original[lit(1).code()], vec![c]);
        assert_eq!(db.occ_original[lit(-2).code()], vec![c]);
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![c]);
        assert_eq!(watched(&db, Kind::Clause, lit(-2)), vec![c]);
        assert!(watched(&db, Kind::Cube, lit(1)).is_empty());
        assert_eq!(db.len(c), 2);
        assert_eq!(db.lits(c), &[lit(1), lit(-2)]);
        assert_eq!(c.kind(), Kind::Clause);
        assert!(!db.is_learned(c));
        assert!(!db.is_deleted(c));
    }

    #[test]
    fn learned_clause_does_not_count_unsat_or_occ() {
        let mut db = Db::new(2);
        let c = db.add(vec![lit(1)], Kind::Clause, true, 1, 0, 0);
        assert_eq!(db.unsat_originals, 0);
        assert_eq!(db.num_learned_clauses, 1);
        assert!(db.occ_original[lit(1).code()].is_empty());
        // unit constraints get a single watcher on their only literal
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![c]);
    }

    #[test]
    fn cubes_use_cube_watchers() {
        let mut db = Db::new(2);
        let k = db.add(vec![lit(1), lit(2)], Kind::Cube, true, 2, 0, 0);
        assert_eq!(watched(&db, Kind::Cube, lit(1)), vec![k]);
        assert_eq!(watched(&db, Kind::Cube, lit(2)), vec![k]);
        assert!(watched(&db, Kind::Clause, lit(1)).is_empty());
        assert_eq!(db.num_learned_cubes, 1);
        assert_eq!(k.kind(), Kind::Cube);
    }

    #[test]
    fn only_first_two_literals_are_watched() {
        let mut db = Db::new(3);
        let c = db.add(vec![lit(1), lit(2), lit(3)], Kind::Clause, true, 2, 0, 0);
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![c]);
        assert_eq!(watched(&db, Kind::Clause, lit(2)), vec![c]);
        assert!(watched(&db, Kind::Clause, lit(3)).is_empty());
        // blockers point at the partner watch
        assert_eq!(db.watch_clause[lit(1).code()][0].blocker(), lit(2));
        assert_eq!(db.watch_clause[lit(2).code()][0].blocker(), lit(1));
    }

    #[test]
    fn delete_and_purge() {
        let mut db = Db::new(2);
        let a = db.add(vec![lit(1), lit(2)], Kind::Clause, true, 2, 0, 0);
        let b = db.add(vec![lit(1), lit(2)], Kind::Clause, true, 2, 0, 0);
        db.delete(a);
        assert_eq!(db.num_learned_clauses, 1);
        assert_eq!(db.watch_clause[lit(1).code()].len(), 2);
        db.purge_watchers();
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![b]);
        assert_eq!(watched(&db, Kind::Clause, lit(2)), vec![b]);
    }

    #[test]
    fn header_roundtrip() {
        let mut db = Db::new(4);
        let c = db.add(vec![lit(1), lit(-2), lit(3)], Kind::Clause, true, 1, 2, 0);
        assert!(db.is_learned(c));
        assert_eq!(db.activity(c), 1.0);
        db.set_activity(c, 1234.5);
        assert_eq!(db.activity(c), 1234.5);
        db.swap_lits(c, 0, 2);
        assert_eq!(db.lits(c), &[lit(3), lit(-2), lit(1)]);
        if cfg!(feature = "debug-counters") {
            assert_eq!(db.true_count(c), 2);
            *db.true_count_mut(c) += 1;
            assert_eq!(db.true_count(c), 3);
        }
    }

    #[test]
    fn learned_order_tracks_creation_across_kinds() {
        let mut db = Db::new(3);
        db.add(vec![lit(1), lit(2)], Kind::Clause, false, 2, 0, 0);
        let a = db.add(vec![lit(1)], Kind::Clause, true, 1, 0, 0);
        let k = db.add(vec![lit(2)], Kind::Cube, true, 1, 0, 0);
        let b = db.add(vec![lit(3)], Kind::Clause, true, 1, 0, 0);
        assert_eq!(db.learned_refs(), &[a, k, b]);
        let originals: Vec<_> = db.original_refs().collect();
        assert_eq!(originals.len(), 1);
        assert_eq!(db.lits(originals[0]), &[lit(1), lit(2)]);
    }

    #[test]
    fn compaction_relocates_watchers_and_preserves_order() {
        let mut db = Db::new(3);
        let orig = db.add(vec![lit(1), lit(2)], Kind::Clause, false, 2, 0, 0);
        let a = db.add(vec![lit(1), lit(2), lit(3)], Kind::Clause, true, 2, 0, 0);
        let b = db.add(vec![lit(1), lit(3)], Kind::Clause, true, 2, 0, 0);
        let k = db.add(vec![lit(2), lit(3)], Kind::Cube, true, 2, 0, 0);
        // Pinned sentinel on `a`, engine-style.
        db.watch_clause[lit(-3).code()].push(Watcher::new(a, lit(3), true));
        db.delete(a);
        assert!(db.wants_compaction());
        let map = db.compact();
        assert!(map.remap(a).is_none());
        let nb = map.remap(b).expect("b survives");
        let nk = map.remap(k).expect("k survives");
        let norig = map.remap(orig).expect("originals survive");
        assert_eq!(map.reclaimed_bytes, (HEADER_WORDS + 3) * 4);
        // `b` slid down into `a`'s slot; contents intact.
        assert_eq!(db.lits(nb), &[lit(1), lit(3)]);
        assert_eq!(db.lits(nk), &[lit(2), lit(3)]);
        assert_eq!(db.lits(norig), &[lit(1), lit(2)]);
        assert!(db.is_learned(nb) && !db.is_deleted(nb));
        // Watchers of the deleted constraint are gone (including the
        // pinned sentinel); survivors are remapped in place, in order.
        assert_eq!(watched(&db, Kind::Clause, lit(1)), vec![norig, nb]);
        assert_eq!(watched(&db, Kind::Clause, lit(3)), vec![nb]);
        assert!(db.watch_clause[lit(-3).code()].is_empty());
        assert_eq!(watched(&db, Kind::Cube, lit(2)), vec![nk]);
        // Pinned sentinels of survivors are relocated, not dropped.
        db.watch_clause[lit(-1).code()].push(Watcher::new(nb, lit(1), true));
        let c = db.add(vec![lit(2)], Kind::Clause, true, 1, 0, 0);
        db.delete(c);
        let map2 = db.compact();
        let w = db.watch_clause[lit(-1).code()][0];
        assert_eq!(w.cref, map2.remap(nb).unwrap());
        assert!(w.pinned());
        // Occurrence and creation-order indices follow the moves.
        assert_eq!(db.occ_original[lit(1).code()], vec![norig]);
        assert_eq!(db.learned_refs(), &[map2.remap(nb).unwrap(), map2.remap(nk).unwrap()]);
    }

    #[test]
    fn compaction_reclaims_bytes_and_resets_garbage() {
        let mut db = Db::new(2);
        let a = db.add(vec![lit(1), lit(2)], Kind::Clause, true, 2, 0, 0);
        let before = db.arena_bytes();
        assert_eq!(db.bytes_peak, before);
        db.delete(a);
        let map = db.compact();
        assert_eq!(map.reclaimed_bytes, before);
        assert_eq!(db.arena_bytes(), 0);
        assert!(!db.wants_compaction());
        // Peak is a high-water mark; compaction does not lower it.
        assert_eq!(db.bytes_peak, before);
    }
}
