//! The constraint database: original clauses, learned clauses (nogoods) and
//! learned cubes (goods), with per-literal occurrence lists and
//! satisfied/falsified literal counters maintained incrementally.

use crate::var::Lit;

/// Reference to a constraint in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CRef(pub(crate) u32);

impl CRef {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a constraint is a clause (disjunction, conjoined with the
/// matrix) or a cube (conjunction, disjoined with the matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Clause,
    Cube,
}

#[derive(Debug)]
pub(crate) struct Constraint {
    pub(crate) lits: Vec<Lit>,
    pub(crate) kind: Kind,
    pub(crate) learned: bool,
    pub(crate) deleted: bool,
    /// Number of literals currently assigned *true*.
    pub(crate) true_count: u32,
    /// Number of literals currently assigned *false*.
    pub(crate) false_count: u32,
    /// Bump-and-decay activity for database reduction.
    pub(crate) activity: f64,
}

impl Constraint {
    pub(crate) fn len(&self) -> usize {
        self.lits.len()
    }
}

/// Constraint arena plus occurrence lists.
#[derive(Debug, Default)]
pub(crate) struct Db {
    pub(crate) constraints: Vec<Constraint>,
    /// For each literal code: clauses containing that literal.
    pub(crate) occ_clause: Vec<Vec<CRef>>,
    /// For each literal code: cubes containing that literal.
    pub(crate) occ_cube: Vec<Vec<CRef>>,
    /// Number of *original* clauses currently without a true literal; when
    /// it reaches zero the matrix is satisfied (empty under restriction).
    pub(crate) unsat_originals: usize,
    pub(crate) num_original: usize,
    pub(crate) num_learned_clauses: usize,
    pub(crate) num_learned_cubes: usize,
}

impl Db {
    pub(crate) fn new(num_vars: usize) -> Self {
        Db {
            constraints: Vec::new(),
            occ_clause: vec![Vec::new(); 2 * num_vars],
            occ_cube: vec![Vec::new(); 2 * num_vars],
            unsat_originals: 0,
            num_original: 0,
            num_learned_clauses: 0,
            num_learned_cubes: 0,
        }
    }

    pub(crate) fn constraint(&self, c: CRef) -> &Constraint {
        &self.constraints[c.index()]
    }

    /// Adds a constraint; counts must be initialized by the caller
    /// according to the current assignment (0 for the initial, empty one).
    pub(crate) fn add(
        &mut self,
        lits: Vec<Lit>,
        kind: Kind,
        learned: bool,
        true_count: u32,
        false_count: u32,
    ) -> CRef {
        let cref = CRef(self.constraints.len() as u32);
        for &l in &lits {
            match kind {
                Kind::Clause => self.occ_clause[l.code()].push(cref),
                Kind::Cube => self.occ_cube[l.code()].push(cref),
            }
        }
        if kind == Kind::Clause && !learned && true_count == 0 {
            self.unsat_originals += 1;
        }
        if !learned {
            self.num_original += 1;
        } else {
            match kind {
                Kind::Clause => self.num_learned_clauses += 1,
                Kind::Cube => self.num_learned_cubes += 1,
            }
        }
        self.constraints.push(Constraint {
            lits,
            kind,
            learned,
            deleted: false,
            true_count,
            false_count,
            activity: 1.0,
        });
        cref
    }

    /// Marks a learned constraint deleted (its occurrence entries are
    /// skipped lazily and purged in [`Db::purge_occurrences`]).
    pub(crate) fn delete(&mut self, c: CRef) {
        let k = {
            let con = &mut self.constraints[c.index()];
            debug_assert!(con.learned, "only learned constraints are deleted");
            con.deleted = true;
            con.kind
        };
        match k {
            Kind::Clause => self.num_learned_clauses -= 1,
            Kind::Cube => self.num_learned_cubes -= 1,
        }
    }

    /// Drops occurrence entries of deleted constraints.
    pub(crate) fn purge_occurrences(&mut self) {
        let constraints = &self.constraints;
        for list in self.occ_clause.iter_mut().chain(self.occ_cube.iter_mut()) {
            list.retain(|c| !constraints[c.index()].deleted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn add_and_query() {
        let mut db = Db::new(3);
        let c = db.add(vec![lit(1), lit(-2)], Kind::Clause, false, 0, 0);
        assert_eq!(db.unsat_originals, 1);
        assert_eq!(db.num_original, 1);
        assert_eq!(db.occ_clause[lit(1).code()], vec![c]);
        assert_eq!(db.occ_clause[lit(-2).code()], vec![c]);
        assert!(db.occ_cube[lit(1).code()].is_empty());
        assert_eq!(db.constraint(c).len(), 2);
    }

    #[test]
    fn learned_clause_does_not_count_unsat() {
        let mut db = Db::new(2);
        db.add(vec![lit(1)], Kind::Clause, true, 0, 0);
        assert_eq!(db.unsat_originals, 0);
        assert_eq!(db.num_learned_clauses, 1);
    }

    #[test]
    fn cubes_use_cube_occurrences() {
        let mut db = Db::new(2);
        let k = db.add(vec![lit(1), lit(2)], Kind::Cube, true, 0, 0);
        assert_eq!(db.occ_cube[lit(1).code()], vec![k]);
        assert!(db.occ_clause[lit(1).code()].is_empty());
        assert_eq!(db.num_learned_cubes, 1);
    }

    #[test]
    fn delete_and_purge() {
        let mut db = Db::new(2);
        let a = db.add(vec![lit(1)], Kind::Clause, true, 0, 0);
        let b = db.add(vec![lit(1)], Kind::Clause, true, 0, 0);
        db.delete(a);
        assert_eq!(db.num_learned_clauses, 1);
        assert_eq!(db.occ_clause[lit(1).code()].len(), 2);
        db.purge_occurrences();
        assert_eq!(db.occ_clause[lit(1).code()], vec![b]);
    }
}
