//! Incremental solving: push/pop frames and assumption literals on top
//! of the one-shot QDPLL engine.
//!
//! An [`IncrementalSolver`] owns a [`Qbf`] (the *prefix is immutable* for
//! the lifetime of the session — incrementality is over the matrix) and a
//! detached engine [`Session`]: the constraint arena, learned
//! constraints, heuristic scores and quantifier-tree caches all survive
//! between queries. Clauses added after construction are tagged with the
//! *push frame* they belong to; `pop` removes the top frame and
//! invalidates exactly the state whose soundness depended on it.
//!
//! # Invalidation rules (soundness argument, see DESIGN.md §2.7)
//!
//! * **Learned clauses** are Q-resolution consequences of the original
//!   clauses their derivation *used* (skipped resolutions leave the pivot
//!   literal in place, so the resolvent stays derivable without the
//!   skipped antecedent). The engine stamps each learned clause with the
//!   maximum push frame over its used antecedents
//!   (`Solver::analysis_mark`); a consequence of frames `≤ k` stays a
//!   consequence of any matrix that still contains those frames, so on
//!   `pop` to level `k` exactly the learned clauses with mark `> k` are
//!   tombstoned. Adding clauses never invalidates a nogood (a consequence
//!   of a subset is a consequence of a superset).
//! * **Learned cubes** are the dual: every cube chain bottoms out in
//!   implicants of the matrix, and an implicant of a *larger* clause set
//!   satisfies any subset — so cubes survive `pop` unconditionally, but
//!   *every* cube dies whenever a clause is added (the new clause need
//!   not be satisfied by an old implicant). Cube marks are therefore
//!   always 0.
//! * **Assumptions** are existential literals injected as unit clauses in
//!   an internal frame one above the user's top frame, auto-popped after
//!   the query. A unit over an existential variable propagates by the
//!   generalized unit rule (Lemma 5) no matter where the variable sits in
//!   the prefix — no universal can `≺`-block a one-literal clause — so
//!   `Q.(ψ ∧ x)` decides exactly `Q'.ψ[x:=⊤]` and the assumption
//!   respects `≺` by construction. Universal assumptions are rejected:
//!   `∀x` under an assumption would change the quantifier's meaning, not
//!   restrict the matrix.
//!
//! Activity scores, watcher lists and the block caches are
//! frame-independent and always survive.
//!
//! # Determinism
//!
//! Every operation is deterministic: the verdict and statistics of a
//! query are a pure function of the construction arguments and the
//! operation sequence, and [`IncrementalSolver::equivalent_qbf`] exposes
//! the one-shot formula each query is equivalent to (the differential
//! suite in `tests/incremental.rs` cross-checks the verdicts on all pool
//! instances).
//!
//! # Examples
//!
//! ```
//! use qbf_core::solver::{IncrementalSolver, SolverConfig};
//! use qbf_core::{samples, Lit};
//!
//! // ∃x1 x2 x3. (x1 ∨ x2)(¬x1 ∨ x2)(¬x2 ∨ x3) — true.
//! let mut inc = IncrementalSolver::new(samples::sat_instance(), SolverConfig::partial_order());
//! assert_eq!(inc.solve().value(), Some(true));
//! inc.push();
//! inc.add_clause(&[Lit::from_dimacs(-2)]).unwrap(); // forces the x2 conflict
//! assert_eq!(inc.solve().value(), Some(false));
//! inc.pop().unwrap();
//! assert_eq!(inc.solve().value(), Some(true)); // the pop restored φ
//!
//! inc.assume(Lit::from_dimacs(-3)).unwrap(); // ¬x3 for the next query only
//! assert_eq!(inc.solve().value(), Some(false));
//! assert_eq!(inc.solve().value(), Some(true));
//! ```

use std::fmt;

use crate::clause::{Clause, ClauseError};
use crate::matrix::Matrix;
use crate::observe::SearchObserver;
use crate::proof::ProofLog;
use crate::qbf::Qbf;
use crate::var::{Lit, Quantifier, Var};

use super::engine::{Session, Solver};
use super::{Outcome, SolverConfig};

/// Errors of the incremental API. Each maps to a structured protocol
/// error in `qbfserve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementalError {
    /// `pop` with no frame on the stack.
    PopBottom,
    /// An added clause contains both polarities of the variable.
    Tautology(Var),
    /// The literal's variable is not bound by the prefix.
    UnboundVar(Var),
    /// An added clause mentions variables from disjoint sibling scopes
    /// (same well-formedness condition as [`Qbf::new`]).
    IncompatibleScopes,
    /// The assumption literal is universally quantified.
    UniversalAssumption(Lit),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::PopBottom => write!(f, "pop: no frame to pop"),
            IncrementalError::Tautology(v) => {
                write!(f, "clause contains both polarities of variable {v}")
            }
            IncrementalError::UnboundVar(v) => {
                write!(f, "variable {v} is not bound by the prefix")
            }
            IncrementalError::IncompatibleScopes => {
                write!(f, "clause mentions variables from disjoint sibling scopes")
            }
            IncrementalError::UniversalAssumption(l) => {
                write!(f, "assumption {l} is not existential")
            }
        }
    }
}

impl std::error::Error for IncrementalError {}

/// A long-lived solving session over one prefix: push/pop clause frames,
/// assumption literals, and repeated queries with hot learned state.
#[derive(Debug)]
pub struct IncrementalSolver {
    qbf: Qbf,
    config: SolverConfig,
    /// Detached engine state; `None` only transiently inside
    /// [`IncrementalSolver::with_view`].
    session: Option<Session>,
    /// Number of user frames on the stack (frame 0 is the permanent
    /// bottom frame; assumptions use the internal frame `level + 1`).
    level: u32,
    /// Clauses added since construction with their push frame, in add
    /// order — the mirror from which [`IncrementalSolver::equivalent_qbf`]
    /// rebuilds the one-shot formula.
    added: Vec<(u32, Clause)>,
    /// Assumptions for the next query, cleared by `solve`.
    assumptions: Vec<Lit>,
}

impl IncrementalSolver {
    /// Builds a session over `qbf` (its matrix becomes the permanent
    /// bottom frame).
    pub fn new(qbf: Qbf, config: SolverConfig) -> Self {
        let session = Solver::new(&qbf, config.clone()).into_session();
        IncrementalSolver {
            qbf,
            config,
            session: Some(session),
            level: 0,
            added: Vec::new(),
            assumptions: Vec::new(),
        }
    }

    /// The base formula the session was constructed from.
    pub fn qbf(&self) -> &Qbf {
        &self.qbf
    }

    /// The solver configuration used by every query.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The current number of user frames on the stack.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The assumptions queued for the next query.
    pub fn assumptions(&self) -> &[Lit] {
        &self.assumptions
    }

    /// Number of clauses in the current frame-restricted matrix
    /// (excluding queued assumptions).
    pub fn num_clauses(&self) -> usize {
        self.qbf.matrix().len() + self.added.len()
    }

    /// Re-attaches the detached session to the owned QBF for the duration
    /// of `f`.
    fn with_view<R>(&mut self, f: impl FnOnce(&mut Solver<'_>) -> R) -> R {
        let session = self
            .session
            .take()
            .expect("the session is always present between calls");
        let mut solver = Solver::from_session(&self.qbf, session);
        let result = f(&mut solver);
        self.session = Some(solver.into_session());
        result
    }

    /// Opens a new frame; clauses added from now on are removed by the
    /// matching [`IncrementalSolver::pop`]. Returns the new level.
    pub fn push(&mut self) -> u32 {
        self.level += 1;
        self.level
    }

    /// Closes the top frame: removes its clauses and tombstones every
    /// learned clause whose derivation used them. Returns the new level.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::PopBottom`] if no frame is open.
    pub fn pop(&mut self) -> Result<u32, IncrementalError> {
        if self.level == 0 {
            return Err(IncrementalError::PopBottom);
        }
        self.level -= 1;
        let level = self.level;
        self.with_view(|s| {
            s.reset_search();
            s.invalidate_frames_above(level);
            s.maybe_compact_between_queries();
        });
        self.added.retain(|&(frame, _)| frame <= level);
        Ok(self.level)
    }

    /// Adds a clause to the current top frame (the permanent bottom frame
    /// when no `push` is active). Invalidate every learned cube — the
    /// grown matrix voids the implicant property.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::Tautology`], [`IncrementalError::UnboundVar`]
    /// or [`IncrementalError::IncompatibleScopes`]: the same
    /// well-formedness conditions [`Qbf::new`] enforces, checked against
    /// the session prefix. A rejected clause leaves the session
    /// untouched.
    pub fn add_clause(&mut self, lits: &[Lit]) -> Result<(), IncrementalError> {
        let clause = Clause::new(lits.iter().copied())
            .map_err(|ClauseError::Tautology(v)| IncrementalError::Tautology(v))?;
        let prefix = self.qbf.prefix();
        for &l in clause.lits() {
            if l.var().index() >= prefix.num_vars() || prefix.quant(l.var()).is_none() {
                return Err(IncrementalError::UnboundVar(l.var()));
            }
        }
        // The containment-chain check of `qbf::validate_scopes`, for this
        // one clause: all scopes on a single root path of the forest.
        let mut intervals: Vec<(u32, u32)> = clause
            .iter()
            .filter_map(|l| prefix.block_of(l.var()))
            .map(|b| prefix.block_interval(b))
            .collect();
        intervals.sort_by_key(|&(d, f)| (d, std::cmp::Reverse(f)));
        intervals.dedup();
        for w in intervals.windows(2) {
            let ((d1, f1), (d2, f2)) = (w[0], w[1]);
            if !(d1 <= d2 && f2 <= f1) {
                return Err(IncrementalError::IncompatibleScopes);
            }
        }
        let frame = self.level;
        let clause_lits = clause.lits().to_vec();
        self.with_view(|s| {
            s.reset_search();
            s.add_original_clause(clause_lits, frame);
        });
        self.added.push((frame, clause));
        Ok(())
    }

    /// Queues an assumption for the next query: the formula is solved
    /// under the extra unit clause `(lit)`, which is retracted afterwards
    /// (together with everything learned from it). Assumptions
    /// accumulate until [`IncrementalSolver::solve`] consumes them.
    ///
    /// # Errors
    ///
    /// [`IncrementalError::UnboundVar`] for a variable outside the
    /// prefix, [`IncrementalError::UniversalAssumption`] for a universal
    /// literal (restricting a universal changes the quantifier's meaning;
    /// only existential assumptions preserve equivalence under `≺`).
    pub fn assume(&mut self, lit: Lit) -> Result<(), IncrementalError> {
        let prefix = self.qbf.prefix();
        if lit.var().index() >= prefix.num_vars() {
            return Err(IncrementalError::UnboundVar(lit.var()));
        }
        match prefix.quant(lit.var()) {
            None => Err(IncrementalError::UnboundVar(lit.var())),
            Some(Quantifier::Forall) => Err(IncrementalError::UniversalAssumption(lit)),
            Some(Quantifier::Exists) => {
                self.assumptions.push(lit);
                Ok(())
            }
        }
    }

    /// The one-shot formula the next `solve` is equivalent to: the base
    /// matrix, every live added clause in add order, and the queued
    /// assumptions as unit clauses.
    pub fn equivalent_qbf(&self) -> Qbf {
        let mut clauses: Vec<Clause> = self.qbf.matrix().clauses().to_vec();
        clauses.extend(self.added.iter().map(|(_, c)| c.clone()));
        clauses.extend(
            self.assumptions
                .iter()
                .map(|&a| Clause::new([a]).expect("a unit clause is never tautological")),
        );
        Qbf::new(
            self.qbf.prefix().clone(),
            Matrix::from_clauses(self.qbf.num_vars(), clauses),
        )
        .expect("added clauses were validated against the same prefix")
    }

    /// Solves the current frame-restricted formula under the queued
    /// assumptions (consumed by this call). Statistics are per-query;
    /// `None` means the configured budget ran out (the session stays
    /// usable).
    pub fn solve(&mut self) -> Outcome {
        let level = self.level;
        let assumptions = std::mem::take(&mut self.assumptions);
        self.with_view(|s| Self::run_query(s, level, &assumptions))
    }

    /// Like [`IncrementalSolver::solve`] with a live [`SearchObserver`]
    /// attached for this query only. The observer rides on the engine's
    /// generic observer slot (dynamically dispatched through the `&mut
    /// dyn` forwarding impl), so `solve()` keeps its statically no-op —
    /// and therefore zero-cost — default path.
    pub fn solve_observed(&mut self, observer: &mut dyn SearchObserver) -> Outcome {
        let level = self.level;
        let assumptions = std::mem::take(&mut self.assumptions);
        let session = self
            .session
            .take()
            .expect("the session is always present between calls");
        let mut solver = Solver::from_session_observed(&self.qbf, session, observer);
        let out = Self::run_query(&mut solver, level, &assumptions);
        self.session = Some(solver.into_session());
        out
    }

    /// One query against a re-attached view: inject the assumptions,
    /// solve, then retract them and everything learned from them.
    fn run_query<O: SearchObserver>(
        s: &mut Solver<'_, O>,
        level: u32,
        assumptions: &[Lit],
    ) -> Outcome {
        s.reset_search();
        for &a in assumptions {
            // One frame above the user stack: auto-popped below, and
            // any learned clause that used an assumption inherits a
            // mark > level, so it is tombstoned with it.
            s.add_original_clause(vec![a], level + 1);
        }
        s.reset_stats();
        let out = s.solve_mut();
        s.reset_search();
        s.invalidate_frames_above(level);
        s.maybe_compact_between_queries();
        out
    }

    /// Like [`IncrementalSolver::solve`], additionally producing a
    /// standalone `qrp 1` certificate for the query's frame-restricted
    /// formula (fingerprinted per query, so `qbfcheck` verifies it
    /// against [`IncrementalSolver::equivalent_qbf`] dumped at the same
    /// point). The certificate comes from a cold proof-logging run over
    /// the equivalent formula — learned constraints reused from earlier
    /// queries have no derivation inside this query, so the incremental
    /// search itself cannot emit a self-contained chain. `None` if the
    /// certificate run exhausted the budget.
    pub fn solve_with_proof(&mut self) -> (Outcome, Option<String>) {
        let equivalent = self.equivalent_qbf();
        let out = self.solve();
        let mut log = ProofLog::new();
        let cold = Solver::with_proof(&equivalent, self.config.clone(), &mut log).solve();
        if let (Some(inc), Some(cert)) = (out.value(), cold.value()) {
            assert_eq!(
                inc, cert,
                "incremental verdict disagrees with the certificate run"
            );
        }
        let proof = (cold.value().is_some() && log.is_concluded())
            .then(|| log.as_text().to_string());
        (out, proof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::semantics;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn repeated_solves_are_stable() {
        let qbf = samples::paper_example();
        let expected = semantics::eval(&qbf);
        let mut inc = IncrementalSolver::new(qbf, SolverConfig::partial_order());
        for _ in 0..3 {
            assert_eq!(inc.solve().value(), Some(expected));
        }
    }

    #[test]
    fn push_add_pop_restores_the_formula() {
        let qbf = samples::two_independent_games();
        let expected = semantics::eval(&qbf);
        let mut inc = IncrementalSolver::new(qbf, SolverConfig::partial_order());
        assert_eq!(inc.solve().value(), Some(expected));
        inc.push();
        // The empty clause makes any frame false.
        inc.add_clause(&[]).unwrap();
        assert_eq!(inc.solve().value(), Some(false));
        inc.pop().unwrap();
        assert_eq!(inc.solve().value(), Some(expected));
    }

    #[test]
    fn assumptions_are_retracted_after_the_query() {
        let qbf = samples::sat_instance();
        let mut inc = IncrementalSolver::new(qbf, SolverConfig::total_order());
        let base = inc.solve().value();
        // Assume both polarities of an existential: contradictory, so the
        // query is false — and the next plain query is back to base.
        inc.assume(lit(1)).unwrap();
        inc.assume(lit(-1)).unwrap();
        let equivalent = inc.equivalent_qbf();
        assert_eq!(inc.solve().value(), Some(false));
        assert!(!semantics::eval(&equivalent));
        assert_eq!(inc.solve().value(), base);
        assert!(inc.assumptions().is_empty());
    }

    #[test]
    fn equivalent_qbf_tracks_the_frame_stack() {
        let qbf = samples::paper_example();
        let n = qbf.matrix().len();
        let mut inc = IncrementalSolver::new(qbf, SolverConfig::partial_order());
        inc.push();
        inc.add_clause(&[lit(1), lit(2)]).unwrap();
        assert_eq!(inc.equivalent_qbf().matrix().len(), n + 1);
        assert_eq!(inc.num_clauses(), n + 1);
        inc.pop().unwrap();
        assert_eq!(inc.equivalent_qbf().matrix().len(), n);
    }

    #[test]
    fn errors_are_structured() {
        let qbf = samples::forall_exists_xor(); // ∀x1 ∃x2 …
        let mut inc = IncrementalSolver::new(qbf, SolverConfig::partial_order());
        assert_eq!(inc.pop(), Err(IncrementalError::PopBottom));
        assert_eq!(
            inc.add_clause(&[lit(1), lit(-1)]),
            Err(IncrementalError::Tautology(Var::new(0)))
        );
        assert_eq!(
            inc.add_clause(&[lit(99)]),
            Err(IncrementalError::UnboundVar(Var::new(98)))
        );
        assert!(matches!(
            inc.assume(lit(1)),
            Err(IncrementalError::UniversalAssumption(_))
        ));
        // A rejected operation leaves the session solvable.
        let expected = semantics::eval(inc.qbf());
        assert_eq!(inc.solve().value(), Some(expected));
    }

    #[test]
    fn proof_query_verdicts_agree() {
        let qbf = samples::unsat_instance();
        let mut inc = IncrementalSolver::new(qbf, SolverConfig::total_order());
        let (out, proof) = inc.solve_with_proof();
        assert_eq!(out.value(), Some(false));
        let text = proof.expect("no budget set, so the certificate run concludes");
        assert!(text.starts_with("p qrp 1 "));
    }
}
